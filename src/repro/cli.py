"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show every registered access method.
``profile``
    Measure one method's RUM profile under a named workload mix.
``triangle``
    Measure every method and render the RUM triangle (live Figure 1).
``wizard``
    Rank access methods for a workload and hardware target.
``reproduce``
    Run the compact paper reproduction and print the report.
``record`` / ``replay``
    Save a workload trace to a file / replay it against any method.
``trace``
    Run a workload with structured I/O tracing on: dump every device /
    buffer-pool event (read, write, alloc, free, evict, write-back) as
    JSONL and print the per-op-type cost breakdown table.
``stats``
    Run a workload collecting per-op-type histograms only (no event
    stream): blocks touched and simulated time per point query, insert,
    range scan, ...
``explain``
    Run a workload with hierarchical spans on and attribute the measured
    RO/UO/MO to each internal phase (descent, split, flush, per-level
    compaction, bloom probe, ...).  The per-span fractions sum *exactly*
    to the aggregate profile — an audit certifies it, and any violation
    is printed and exits non-zero.  ``--json`` emits the machine-readable
    profile that ``tools/bench_gate.py`` diffs.
``flame``
    Same spanned run, emitted as folded stacks (``a;b;c weight`` lines)
    for Brendan Gregg's ``flamegraph.pl``.  ``--weight`` selects bytes
    moved (default), event count, or simulated time.
``sweep``
    Measure a grid of methods under one workload through the parallel
    sweep engine: ``--jobs N`` fans cells over a persistent worker
    pool, and a content-addressed cache under ``.repro-cache/`` makes
    re-running an unchanged grid near-instant (``--no-cache`` to
    bypass, ``--clear-cache`` to drop stale entries).  ``--profile``
    prints the scheduler's view — per-cell wall time, predicted cost,
    longest-first dispatch order, executed/cached status — so sweep
    regressions are diagnosable from the CLI.
``audit``
    Run structural invariant audits (``AccessMethod.audit``) against a
    workload with a dict oracle in lockstep — optionally under a seeded
    fault-injection plan (``--fail-write-at``, ``--fault-rate``,
    ``--torn``, ...).  Clean runs gate correctness (non-zero exit on any
    violation); fault-injected runs are informational.
``hierarchy``
    Drive a skewed block workload through a chained memory hierarchy
    (Figure 2's substrate) and print the per-level RO/UO/MO table —
    traffic reaching each level, traffic passed down, hit rate, and
    bytes replicated — plus the backing-device row.  Runs the
    hierarchy's conservation/coherence audit; non-zero exit on any
    violation.
``top``
    Stream one workload through the live observability substrate and
    render each simulated-time window as a frame: op mix, per-window
    RO/UO/MO, top I/O phases, and the drift detector's state.  Windowed
    integers sum *exactly* to the whole-run totals (the conservation
    contract; non-zero exit on violation), and ``--json`` output is
    byte-identical at any ``--jobs`` because the frames come out of the
    sweep engine's deterministic cell runner.
``serve``
    Run the transactional serving tier (sessions, snapshot-isolation
    OCC transactions, write-ahead log) over one method with a scripted
    multi-client session, verified against an oracle and the method's
    structural audit.  ``--crash-write-at N`` injects a crash at the
    Nth device write (``--torn`` tears the WAL write it lands on), then
    restarts and recovers from the WAL — the printed recovery report
    shows what was replayed.
``bench-serve``
    Benchmark N concurrent zipfian clients over the serving tier with a
    deterministic interleaving: per-client p50/p99 commit latency plus
    the method's RUM triple, all reproducible under a fixed seed.

``serve`` and ``bench-serve`` accept ``--live-window T`` to stream the
tier's own per-window metrics (commit latency p50/p99, abort counts,
group-commit occupancy, WAL bytes) over simulated-time windows of
width ``T``.

Exit codes (all subcommands): 0 = clean, 1 = a check failed (audit
violation, oracle divergence, span-attribution mismatch), 2 = usage
error (unknown command, method, or malformed arguments).

Examples::

    python -m repro list
    python -m repro profile btree --workload balanced --records 8000
    python -m repro triangle --workload write-heavy
    python -m repro wizard --workload read-mostly --hardware flash --analytic
    python -m repro reproduce --output report.txt --jobs 4
    python -m repro record --workload write-heavy --output w.trace
    python -m repro replay w.trace --method lsm
    python -m repro trace --method lsm --workload balanced --output events.jsonl
    python -m repro stats --method btree --workload write-heavy
    python -m repro explain lsm --workload write-heavy
    python -m repro explain btree --json --output profile.json
    python -m repro flame --method lsm --weight time --output lsm.folded
    python -m repro sweep --workload balanced --jobs 4
    python -m repro sweep --methods btree,lsm,hash-index --no-cache
    python -m repro sweep --workload balanced --jobs 4 --profile
    python -m repro audit --workload balanced --ops 600
    python -m repro audit --methods lsm --fail-write-at 7 --torn
    python -m repro hierarchy --capacities 8,64 --device disk
    python -m repro hierarchy --capacities 4,16,64 --write-policy write-through
    python -m repro top --method lsm --workload write-heavy --window 100
    python -m repro top --method btree --json --jobs 4 --output frames.json
    python -m repro serve --method btree --clients 4 --txns 25
    python -m repro serve --live-window 50
    python -m repro serve --crash-write-at 12 --torn
    python -m repro bench-serve --clients 8 --txns 40 --seed 1234
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.analysis.triangle import render_triangle
from repro.core.registry import available_methods, create_method
from repro.core.space import project_field
from repro.core.wizard import HardwarePriorities, recommend, recommend_analytic
from repro.exec.cache import DEFAULT_CACHE_DIR
from repro.obs.live import DEFAULT_RUM_RING_SIZE
from repro.storage.device import CostModel
from repro.workloads.runner import run_workload
from repro.workloads.spec import MIXES

_HARDWARE = {
    "neutral": HardwarePriorities,
    "flash": HardwarePriorities.flash,
    "disk": HardwarePriorities.disk,
    "memory": HardwarePriorities.memory_constrained,
}

_COST_MODELS = {
    "dram": CostModel.dram,
    "flash": CostModel.flash,
    "disk": CostModel.disk,
    "shingled-disk": CostModel.shingled_disk,
}


class UsageError(RuntimeError):
    """Bad usage detected after argparse (unknown method, bad value).

    :func:`main` maps it to exit code 2 — the same code argparse uses —
    so the CLI's contract is uniform: 0 clean, 1 check failure, 2 usage.
    """


def _checked_method(name: str, **kwargs):
    """``create_method`` with unknown names mapped to :class:`UsageError`."""
    try:
        return create_method(name, **kwargs)
    except KeyError as error:
        raise UsageError(error.args[0]) from None


def _checked_method_names(raw: str) -> List[str]:
    """Parse a ``--methods`` list, rejecting unknown names as usage errors."""
    names = [name.strip() for name in raw.split(",") if name.strip()]
    known = set(available_methods())
    unknown = sorted(set(names) - known)
    if unknown:
        raise UsageError(f"unknown access method(s): {', '.join(unknown)}")
    return names


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RUM Conjecture access-method toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered access methods")

    profile = sub.add_parser("profile", help="measure one method's RUM profile")
    profile.add_argument("method", help="registered method name")
    _workload_arguments(profile)

    triangle = sub.add_parser("triangle", help="render the RUM triangle")
    _workload_arguments(triangle)

    wizard = sub.add_parser("wizard", help="rank methods for a workload")
    _workload_arguments(wizard)
    wizard.add_argument(
        "--hardware",
        choices=sorted(_HARDWARE),
        default="neutral",
        help="hardware priority preset",
    )
    wizard.add_argument(
        "--analytic",
        action="store_true",
        help="use the classification study instead of measuring",
    )
    wizard.add_argument("--top", type=int, default=5, help="entries to show")

    reproduce = sub.add_parser(
        "reproduce",
        help="run the compact paper reproduction and print the report",
    )
    reproduce.add_argument(
        "--output", default=None, help="also write the report to this file"
    )
    reproduce.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the profile sweep (same report at any count)",
    )

    record = sub.add_parser("record", help="save a workload trace to a file")
    _workload_arguments(record)
    record.add_argument("--output", required=True, help="trace file to write")

    replay = sub.add_parser(
        "replay", help="replay a recorded trace against an access method"
    )
    replay.add_argument("trace", help="trace file written by `record`")
    replay.add_argument("--method", default="btree", help="method to replay against")

    trace = sub.add_parser(
        "trace",
        help="run a workload with I/O tracing on; dump JSONL events",
    )
    trace.add_argument("--method", default="btree", help="method to trace")
    _workload_arguments(trace)
    trace.add_argument("--output", required=True, help="JSONL event file to write")

    stats = sub.add_parser(
        "stats", help="per-op-type cost breakdown of a workload run"
    )
    stats.add_argument("--method", default="btree", help="method to measure")
    _workload_arguments(stats)

    explain = sub.add_parser(
        "explain",
        help="attribute measured RO/UO/MO to internal phases via spans",
    )
    explain.add_argument("method", help="registered method name")
    _workload_arguments(explain)
    explain.add_argument(
        "--block-bytes", type=int, default=4096, help="device block size"
    )
    explain.add_argument(
        "--device",
        choices=sorted(_COST_MODELS),
        default="flash",
        help="device cost-model preset",
    )
    explain.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable profile (tools/bench_gate.py input)",
    )
    explain.add_argument(
        "--output", default=None, help="also write the output to this file"
    )

    flame = sub.add_parser(
        "flame",
        help="emit a spanned run as folded stacks for flamegraph.pl",
    )
    flame.add_argument("--method", default="btree", help="method to profile")
    _workload_arguments(flame)
    flame.add_argument(
        "--block-bytes", type=int, default=4096, help="device block size"
    )
    flame.add_argument(
        "--device",
        choices=sorted(_COST_MODELS),
        default="flash",
        help="device cost-model preset",
    )
    flame.add_argument(
        "--weight",
        choices=["bytes", "events", "time"],
        default="bytes",
        help="folded-stack weight: bytes moved, event count, or sim time",
    )
    flame.add_argument(
        "--output", default=None, help="write folded stacks to this file"
    )

    audit = sub.add_parser(
        "audit",
        help="run structural invariant audits, optionally under faults",
    )
    _workload_arguments(audit)
    audit.add_argument(
        "--methods",
        default=None,
        help=(
            "comma-separated method names "
            "(default: every method except bitmap)"
        ),
    )
    audit.add_argument(
        "--block-bytes", type=int, default=4096, help="device block size"
    )
    audit.add_argument(
        "--audit-every",
        type=int,
        default=16,
        help="audit after every N operations (0 = only at the end)",
    )
    audit.add_argument(
        "--fail-read-at",
        type=int,
        default=None,
        help="inject a fault on the Nth eligible read",
    )
    audit.add_argument(
        "--fail-write-at",
        type=int,
        default=None,
        help="inject a fault on the Nth eligible write",
    )
    audit.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="per-access fault probability, applied to reads and writes",
    )
    audit.add_argument(
        "--fault-kinds",
        default=None,
        help="only fault blocks of these comma-separated kinds",
    )
    audit.add_argument(
        "--torn",
        action="store_true",
        help="faulted writes apply half their payload before raising",
    )
    audit.add_argument(
        "--fault-seed", type=int, default=1234, help="fault-plan RNG seed"
    )
    audit.add_argument(
        "--max-faults",
        type=int,
        default=None,
        help="stop injecting after this many faults",
    )

    hierarchy = sub.add_parser(
        "hierarchy",
        help="run a chained memory hierarchy; print the per-level table",
    )
    hierarchy.add_argument(
        "--capacities",
        default="8,64",
        help="comma-separated level capacities in blocks, top (fastest) first",
    )
    hierarchy.add_argument(
        "--blocks", type=int, default=256, help="dataset size in blocks"
    )
    hierarchy.add_argument(
        "--accesses", type=int, default=4000, help="block accesses to run"
    )
    hierarchy.add_argument(
        "--write-ratio",
        type=float,
        default=0.25,
        help="fraction of accesses that are writes",
    )
    hierarchy.add_argument(
        "--write-policy",
        choices=["write-back", "write-through"],
        default="write-back",
        help="write policy applied at every level",
    )
    hierarchy.add_argument(
        "--inclusion",
        choices=["inclusive", "exclusive"],
        default="inclusive",
        help="inclusion mode applied below the top level",
    )
    hierarchy.add_argument(
        "--device",
        choices=sorted(_COST_MODELS),
        default="flash",
        help="backing-device cost-model preset",
    )
    hierarchy.add_argument(
        "--block-bytes", type=int, default=4096, help="device block size"
    )
    hierarchy.add_argument(
        "--seed", type=int, default=71, help="access-pattern RNG seed"
    )

    sweep = sub.add_parser(
        "sweep",
        help="measure a method grid through the parallel sweep engine",
    )
    _workload_arguments(sweep)
    sweep.add_argument(
        "--methods",
        default=None,
        help=(
            "comma-separated method names "
            "(default: every method except bitmap)"
        ),
    )
    sweep.add_argument(
        "--jobs", type=int, default=1, help="worker processes for the grid"
    )
    sweep.add_argument(
        "--block-bytes", type=int, default=4096, help="device block size"
    )
    sweep.add_argument(
        "--device",
        choices=sorted(_COST_MODELS),
        default="flash",
        help="device cost-model preset",
    )
    sweep.add_argument(
        "--no-cache",
        action="store_true",
        help="execute every cell even if a cached result exists",
    )
    sweep.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help="result cache directory",
    )
    sweep.add_argument(
        "--clear-cache",
        action="store_true",
        help="drop every cached result before running",
    )
    sweep.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print the scheduler's view: per-cell wall time, predicted "
            "cost, dispatch order, executed/cached status"
        ),
    )

    top = sub.add_parser(
        "top",
        help="stream per-window RO/UO/MO frames: op mix, phases, drift",
    )
    top.add_argument("--method", default="btree", help="method to watch")
    _workload_arguments(top)
    top.add_argument(
        "--window",
        type=float,
        default=50.0,
        help="window width in simulated-time units",
    )
    top.add_argument(
        "--ring",
        type=int,
        default=DEFAULT_RUM_RING_SIZE,
        help=(
            "closed windows retained before the oldest folds into the "
            "evicted totals (conservation still holds exactly)"
        ),
    )
    top.add_argument(
        "--hysteresis",
        type=int,
        default=2,
        help="consecutive windows before the drift detector switches state",
    )
    top.add_argument(
        "--block-bytes", type=int, default=4096, help="device block size"
    )
    top.add_argument(
        "--device",
        choices=sorted(_COST_MODELS),
        default="flash",
        help="device cost-model preset",
    )
    top.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="sweep-engine worker processes (same frames at any count)",
    )
    top.add_argument(
        "--phases", type=int, default=2, help="top I/O phases shown per window"
    )
    top.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable frame stream (canonical, sorted keys)",
    )
    top.add_argument(
        "--output", default=None, help="also write the output to this file"
    )

    serve = sub.add_parser(
        "serve",
        help="run the transactional serving tier; optional crash + recovery",
    )
    _serve_arguments(serve, default_clients=4, default_txns=25)
    serve.add_argument(
        "--crash-write-at",
        type=int,
        default=None,
        help=(
            "inject a crash at the Nth device write after load, then "
            "restart and recover from the WAL"
        ),
    )
    serve.add_argument(
        "--torn",
        action="store_true",
        help="the injected crash tears the WAL write it lands on",
    )

    bench_serve = sub.add_parser(
        "bench-serve",
        help="benchmark N concurrent zipfian clients: p50/p99 + RUM",
    )
    _serve_arguments(bench_serve, default_clients=8, default_txns=40)
    bench_serve.add_argument(
        "--device",
        choices=sorted(_COST_MODELS),
        default="flash",
        help="device cost-model preset",
    )
    bench_serve.add_argument(
        "--distribution",
        default="zipfian",
        help="client key distribution (zipfian, uniform, latest, ...)",
    )
    return parser


def _serve_arguments(
    parser: argparse.ArgumentParser, default_clients: int, default_txns: int
) -> None:
    parser.add_argument(
        "--method", default="btree", help="registered method name"
    )
    parser.add_argument(
        "--clients", type=int, default=default_clients,
        help="concurrent client sessions",
    )
    parser.add_argument(
        "--txns", type=int, default=default_txns,
        help="transactions per client",
    )
    parser.add_argument(
        "--ops-per-txn", type=int, default=4,
        help="operations per transaction",
    )
    parser.add_argument(
        "--records", type=int, default=256, help="initial dataset size"
    )
    parser.add_argument(
        "--seed", type=int, default=1234, help="scheduler/client RNG seed"
    )
    parser.add_argument(
        "--block-bytes", type=int, default=4096, help="device block size"
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=32,
        help="commits between WAL checkpoints (0 disables)",
    )
    parser.add_argument(
        "--group-commit", type=int, default=1, metavar="N",
        help=(
            "group commit: park validated commits and sync the WAL once "
            "per N of them (1 = per-commit sync)"
        ),
    )
    parser.add_argument(
        "--sync-deadline", type=float, default=None, metavar="T",
        help=(
            "also sync when the oldest parked commit has waited T "
            "simulated-time units (group-commit timer)"
        ),
    )
    parser.add_argument(
        "--live-window", type=float, default=None, metavar="T",
        help=(
            "stream the tier's per-window metrics (commit latency, "
            "aborts, group occupancy, WAL bytes) over simulated-time "
            "windows of width T"
        ),
    )
    parser.add_argument(
        "--hierarchy", default=None, metavar="CAPS",
        help=(
            "mount the method and its WAL behind a chained write-back "
            "hierarchy with these comma-separated level capacities in "
            "blocks, top first (e.g. 8,64); the WAL's sync forces its "
            "blocks through every level"
        ),
    )


def _workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workload",
        choices=sorted(MIXES),
        default="balanced",
        help="named operation mix",
    )
    parser.add_argument(
        "--records", type=int, default=4000, help="initial dataset size"
    )
    parser.add_argument(
        "--ops", type=int, default=1200, help="operations to run"
    )


def _spec(args):
    return MIXES[args.workload].scaled(
        initial_records=args.records, operations=args.ops
    )


def _command_list() -> int:
    for name in available_methods():
        print(name)
    return 0


def _command_profile(args) -> int:
    result = run_workload(_checked_method(args.method), _spec(args))
    profile = result.profile
    print(format_table(
        ["method", "workload", "RO", "UO", "MO", "simulated time"],
        [[
            args.method,
            args.workload,
            profile.read_overhead,
            profile.update_overhead,
            profile.memory_overhead,
            profile.simulated_time,
        ]],
    ))
    return 0


def _command_triangle(args) -> int:
    profiles = {}
    for name in available_methods():
        if name == "bitmap":
            continue  # value-predicate query model
        profiles[name] = run_workload(create_method(name), _spec(args)).profile
    rows = [
        [name, p.read_overhead, p.update_overhead, p.memory_overhead]
        for name, p in sorted(profiles.items())
    ]
    print(format_table(["method", "RO", "UO", "MO"], rows,
                       title=f"RUM profiles under {args.workload!r}"))
    print()
    points = project_field(profiles)
    print(render_triangle([points[name] for name in sorted(points)]))
    return 0


def _command_wizard(args) -> int:
    priorities = _HARDWARE[args.hardware]()
    spec = _spec(args)
    if args.analytic:
        recommendations = recommend_analytic(spec, priorities)
    else:
        recommendations = recommend(spec, priorities)
    rows = [
        [index + 1, rec.method, rec.score, rec.rationale]
        for index, rec in enumerate(recommendations[: args.top])
    ]
    print(format_table(
        ["rank", "method", "score", "rationale"],
        rows,
        title=(
            f"{'analytic' if args.analytic else 'measured'} recommendations "
            f"for {args.workload!r} on {args.hardware}"
        ),
    ))
    return 0


def _command_record(args) -> int:
    from repro.workloads.generator import generate_operations
    from repro.workloads.trace import save_trace

    data, operations = generate_operations(_spec(args))
    save_trace(args.output, data, operations)
    print(
        f"recorded {len(data)} records and {len(operations)} operations "
        f"({args.workload!r}) to {args.output}"
    )
    return 0


def _command_replay(args) -> int:
    from repro.core.rum import measure_workload
    from repro.workloads.trace import load_trace

    data, operations = load_trace(args.trace)
    method = _checked_method(args.method)
    method.bulk_load(data)
    profile = measure_workload(method, operations)
    print(format_table(
        ["method", "trace", "operations", "RO", "UO", "MO"],
        [[
            args.method,
            args.trace,
            len(operations),
            profile.read_overhead,
            profile.update_overhead,
            profile.memory_overhead,
        ]],
    ))
    return 0


def _breakdown_table(args, metrics, profile) -> str:
    """Render the per-op-type histogram table plus the profile footer."""
    from repro.obs.metrics import WorkloadMetrics

    table = format_table(
        WorkloadMetrics.HEADERS,
        metrics.rows(),
        title=f"{args.method} under {args.workload!r}: per-op-type cost breakdown",
    )
    footer = (
        f"RO={profile.read_overhead:.2f} UO={profile.update_overhead:.2f} "
        f"MO={profile.memory_overhead:.2f} simulated_time={profile.simulated_time:.2f}"
    )
    return f"{table}\n{footer}"


def _command_trace(args) -> int:
    from repro.check.audit import AuditError
    from repro.check.faults import DeviceFault
    from repro.obs.metrics import WorkloadMetrics
    from repro.obs.sinks import JsonlSink
    from repro.obs.tracer import RecordingTracer

    method = _checked_method(args.method)
    metrics = WorkloadMetrics()
    failure: Optional[BaseException] = None
    # The sink's lifetime brackets the workload: even when the run dies
    # mid-workload (an injected DeviceFault, an AuditError from a
    # structure check), the context manager closes and flushes the file,
    # so the JSONL trace on disk is complete and parseable up to the
    # failing operation — usually exactly the evidence needed.
    with JsonlSink(args.output) as sink:
        method.device.set_tracer(RecordingTracer(sink))
        try:
            result = run_workload(method, _spec(args), metrics=metrics)
        except (AuditError, DeviceFault) as error:
            failure = error
        events = sink.events_written
    if failure is not None:
        print(f"workload aborted: {failure}", file=sys.stderr)
        print(
            f"wrote {events} events to {args.output} "
            f"(complete up to the failure)"
        )
        return 1
    print(_breakdown_table(args, metrics, result.profile))
    print(f"wrote {events} events to {args.output}")
    return 0


def _command_stats(args) -> int:
    from repro.obs.metrics import WorkloadMetrics

    method = _checked_method(args.method)
    metrics = WorkloadMetrics()
    result = run_workload(method, _spec(args), metrics=metrics)
    print(_breakdown_table(args, metrics, result.profile))
    return 0


def _span_profile_run(args):
    """Run ``args``'s workload with spans on; return the span profile.

    Shared by ``explain`` and ``flame``: builds a traced device, runs the
    workload inside :func:`~repro.obs.spans.span_collection`, and folds
    the span-stamped event stream into a
    :class:`~repro.obs.spans.SpanProfile`.
    """
    import time

    from repro.core.rum import RUMAccumulator
    from repro.obs.sinks import ListSink
    from repro.obs.spans import SpanProfile, span_collection
    from repro.obs.tracer import RecordingTracer
    from repro.storage.device import SimulatedDevice

    sink = ListSink()
    device = SimulatedDevice(
        block_bytes=args.block_bytes,
        cost_model=_COST_MODELS[args.device](),
        name=args.device,
    )
    device.set_tracer(RecordingTracer(sink))
    method = _checked_method(args.method, device=device)
    accumulator = RUMAccumulator()
    started = time.perf_counter()
    with span_collection():
        result = run_workload(method, _spec(args), accumulator=accumulator)
    elapsed = time.perf_counter() - started
    profile = SpanProfile.from_events(sink.events)
    return method, device, result, accumulator, profile, elapsed


def _command_explain(args) -> int:
    import json

    from repro.obs.spans import rum_attribution

    method, device, result, accumulator, profile, elapsed = _span_profile_run(
        args
    )
    attribution = rum_attribution(
        profile,
        accumulator,
        base_bytes=method.base_bytes(),
        space_bytes=method.space_bytes(),
        allocated_bytes=device.allocated_bytes,
        memory_overhead=result.profile.memory_overhead,
    )
    # Throughput over operations the measurement loop actually accounted
    # — not the requested count: a degenerate spec (or a tolerant per-op
    # loop skipping invalid operations) can execute fewer, and dividing
    # by the request would overstate the rate.
    executed = result.operations_executed
    ops_per_sec = executed / elapsed if elapsed > 0 else 0.0
    if args.json:
        payload = {
            "method": args.method,
            "workload": args.workload,
            "operations": args.ops,
            "operations_executed": executed,
            "records": args.records,
            "block_bytes": args.block_bytes,
            "device": args.device,
            "elapsed_seconds": elapsed,
            "ops_per_sec": ops_per_sec,
            "totals": {
                "read_overhead": attribution.read_overhead,
                "update_overhead": attribution.update_overhead,
                "memory_overhead": attribution.memory_overhead,
                "simulated_time": result.profile.simulated_time,
            },
            "spans": [row.to_dict() for row in attribution.rows],
            "audit": list(attribution.audit),
        }
        text = json.dumps(payload, indent=2, sort_keys=True)
    else:
        labels = [
            "  " * row.depth + row.path.rsplit("/", 1)[-1]
            for row in attribution.rows
        ]
        # Pad to a common width so the table's right-alignment cannot
        # swallow the tree indentation.
        label_width = max((len(label) for label in labels), default=0)
        rows = []
        for label, row in zip(labels, attribution.rows):
            rows.append([
                label.ljust(label_width),
                row.read_bytes,
                row.write_bytes,
                f"{row.ro:.3f}",
                f"{row.uo:.3f}",
                f"{row.mo:.3f}",
                f"{row.simulated_time:.1f}",
            ])
        table = format_table(
            ["span", "read B", "write B", "RO", "UO", "MO", "sim time"],
            rows,
            title=(
                f"{args.method} under {args.workload!r}: "
                f"RO/UO/MO by internal phase"
            ),
        )
        footer = (
            f"totals: RO={attribution.read_overhead:.3f} "
            f"UO={attribution.update_overhead:.3f} "
            f"MO={attribution.memory_overhead:.3f} "
            f"ops/sec={ops_per_sec:,.0f} (over {executed} executed)"
        )
        if attribution.audit:
            status = "\n".join(
                f"AUDIT: {line}" for line in attribution.audit
            )
        else:
            status = (
                "audit: span attribution sums exactly to the "
                "aggregate profile"
            )
        text = f"{table}\n{footer}\n{status}"
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    print(text)
    return 1 if attribution.audit else 0


def _command_flame(args) -> int:
    _method, _device, _result, _acc, profile, _elapsed = _span_profile_run(
        args
    )
    lines = profile.folded_lines(weight=args.weight)
    text = "\n".join(lines)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {len(lines)} folded stacks to {args.output}")
    else:
        print(text)
    return 0


def _command_reproduce(args) -> int:
    from repro.analysis.reproduce import reproduce

    report = reproduce(jobs=args.jobs)
    # Persist before printing, so a closed stdout pipe cannot lose it.
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report + "\n")
    print(report)
    return 0


def _command_audit(args) -> int:
    from repro.check import FaultPlan, build_audited_method, run_audit_session

    if args.methods:
        names = _checked_method_names(args.methods)
    else:
        # bitmap speaks the value-predicate query model, not key lookups.
        names = [name for name in available_methods() if name != "bitmap"]
    plan = None
    kinds = tuple(
        kind.strip() for kind in (args.fault_kinds or "").split(",") if kind.strip()
    )
    if (
        args.fail_read_at is not None
        or args.fail_write_at is not None
        or args.fault_rate > 0.0
    ):
        plan = FaultPlan(
            fail_read_at=args.fail_read_at,
            fail_write_at=args.fail_write_at,
            kinds=kinds,
            read_failure_rate=args.fault_rate,
            write_failure_rate=args.fault_rate,
            torn_writes=args.torn,
            seed=args.fault_seed,
            max_faults=args.max_faults,
        )
    spec = _spec(args)
    rows = []
    clean_failures = 0
    for name in names:
        method = build_audited_method(name, args.block_bytes, plan=plan)
        report = run_audit_session(
            method, spec, plan=plan, audit_every=args.audit_every
        )
        if not report.ok and plan is None:
            clean_failures += 1
        rows.append([
            name,
            "ok" if report.ok else "FAIL",
            report.completed,
            report.faults,
            report.rejected,
            len(report.violations),
            report.oracle_divergences,
        ])
        for violation in report.violations[:3]:
            rows.append(["", "", "", "", "", "", violation])
    mode = "clean" if plan is None else "fault-injected"
    print(format_table(
        ["method", "status", "completed", "faults", "rejected",
         "violations", "divergences"],
        rows,
        title=(
            f"{mode} audit of {len(names)} method(s) under "
            f"{args.workload!r} ({args.ops} ops)"
        ),
    ))
    if plan is not None:
        print(
            "fault-injected runs are informational: violations show what "
            "the audits caught, not regressions"
        )
        return 0
    return 1 if clean_failures else 0


def _command_hierarchy(args) -> int:
    import random

    from repro.storage.device import SimulatedDevice
    from repro.storage.hierarchy import LevelSpec, MemoryHierarchy

    try:
        capacities = [
            int(item) for item in args.capacities.split(",") if item.strip()
        ]
    except ValueError:
        raise UsageError(
            f"--capacities must be comma-separated integers, "
            f"got {args.capacities!r}"
        )
    if not capacities:
        raise UsageError("--capacities must name at least one level")
    backing = SimulatedDevice(
        block_bytes=args.block_bytes,
        cost_model=_COST_MODELS[args.device](),
        name=args.device,
    )
    blocks = []
    for index in range(args.blocks):
        block = backing.allocate()
        backing.write(block, f"page-{index}", used_bytes=args.block_bytes // 2)
        blocks.append(block)
    # Fast levels are cheap, slow levels pricier: 100x per step down,
    # ending well under the backing device's own cost model.
    specs = [
        LevelSpec(
            name=f"L{index}",
            capacity_blocks=capacity,
            access_cost=0.01 * (100 ** index) / (100 ** (len(capacities) - 1)),
            write_policy=args.write_policy,
            inclusion="inclusive" if index == 0 else args.inclusion,
        )
        for index, capacity in enumerate(capacities)
    ]
    hierarchy = MemoryHierarchy(backing, specs)
    rng = random.Random(args.seed)
    hot = max(args.blocks // 8, 1)
    for _ in range(args.accesses):
        index = min(int(rng.expovariate(1.0 / hot)), args.blocks - 1)
        if rng.random() < args.write_ratio:
            hierarchy.write(
                blocks[index],
                f"updated-{index}",
                used_bytes=args.block_bytes // 2,
            )
        else:
            hierarchy.read(blocks[index])
    hierarchy.flush()
    rows = []
    for level in hierarchy.levels:
        counters = level.counters
        rows.append([
            level.name,
            level.spec.capacity_blocks,
            counters.reads_reaching,
            counters.reads_served,
            counters.reads_passed_down,
            counters.writes_reaching,
            counters.writes_passed_down,
            f"{level.hit_rate():.1%}",
            level.space_bytes,
        ])
    rows.append([
        backing.name,
        backing.allocated_blocks,
        hierarchy.backing_reads,
        hierarchy.backing_reads,
        0,
        hierarchy.backing_writes,
        0,
        "",
        backing.allocated_bytes,
    ])
    print(format_table(
        ["level", "capacity", "RO_n: reads in", "reads served",
         "reads down", "UO_n: writes in", "writes down", "hit rate",
         "MO_n: bytes"],
        rows,
        title=(
            f"chained hierarchy {args.capacities} over {args.device} "
            f"({args.write_policy}, {args.inclusion}): per-level traffic"
        ),
    ))
    print(f"hierarchy simulated_time: {hierarchy.simulated_time:,.2f}")
    violations = hierarchy.audit()
    for violation in violations:
        print(f"AUDIT: {violation}")
    if violations:
        return 1
    print("audit: conservation and clean-frame coherence hold")
    return 0


def _command_sweep(args) -> int:
    from repro.exec import ResultCache, SweepCell, SweepEngine

    if args.methods:
        names = _checked_method_names(args.methods)
    else:
        # bitmap speaks the value-predicate query model, not key lookups.
        names = [name for name in available_methods() if name != "bitmap"]
    cache = None if args.no_cache else ResultCache(root=args.cache_dir)
    if args.clear_cache and cache is not None:
        removed = cache.clear()
        print(f"cleared {removed} cached result(s) from {cache.root}")
    spec = _spec(args)
    cost_model = _COST_MODELS[args.device]()
    cells = [
        SweepCell.make(
            name, spec, block_bytes=args.block_bytes, cost_model=cost_model
        )
        for name in names
    ]
    with SweepEngine(jobs=args.jobs, cache=cache) as engine:
        outcome = engine.run(cells)
    rows = [
        [
            cell.display_label,
            result.profile.read_overhead,
            result.profile.update_overhead,
            result.profile.memory_overhead,
            result.profile.simulated_time,
        ]
        for cell, result in zip(outcome.cells, outcome.results)
    ]
    print(format_table(
        ["method", "RO", "UO", "MO", "simulated time"],
        rows,
        title=(
            f"sweep of {len(cells)} cells under {args.workload!r} "
            f"on {args.device} (jobs={args.jobs})"
        ),
    ))
    if args.profile:
        print()
        print(_sweep_profile_table(outcome))
    print(
        f"executed {outcome.executed_cells} cell(s), "
        f"{outcome.cached_cells} from cache"
        + ("" if cache is None else f" ({cache.root})")
    )
    return 0


def _sweep_profile_table(outcome) -> str:
    """The scheduler's view of one sweep, for ``sweep --profile``.

    One row per cell in cell order: executed/cached status, the cost
    model's prediction, the measured wall time, and where in the
    longest-first dispatch sequence the cell was handed out — enough to
    diagnose a sweep regression (a mispredicted slow cell, a cache that
    stopped hitting) straight from the CLI.
    """
    ranks = {
        index: rank for rank, index in enumerate(outcome.dispatch_order)
    }
    rows = []
    for index, cell in enumerate(outcome.cells):
        wall = outcome.cell_seconds[index]
        predicted = outcome.predicted_seconds[index]
        rows.append([
            cell.display_label,
            "executed" if wall is not None else "cached",
            "-" if index not in ranks else ranks[index] + 1,
            f"{predicted * 1e3:.1f}" if predicted else "-",
            f"{wall * 1e3:.1f}" if wall is not None else "-",
        ])
    return format_table(
        ["cell", "status", "dispatch#", "predicted ms", "wall ms"],
        rows,
        title=(
            f"scheduler profile: {outcome.executed_cells} executed, "
            f"{outcome.cached_cells} cached (dispatch is longest-first)"
        ),
    )


def _command_top(args) -> int:
    """Render the live frame stream of one workload run.

    The run goes through the sweep engine with the
    ``repro.obs.live:run_live_cell`` runner: the engine seeds the cell
    deterministically and ships the runner's JSON-pure dict back
    unmodified, so ``--jobs 1`` and ``--jobs N`` produce byte-identical
    ``--json`` output.  Exit is non-zero when the conservation contract
    is violated (window sums diverging from the whole-run totals).
    """
    import json

    from repro.exec import SweepCell, SweepEngine

    if args.window <= 0:
        raise UsageError("--window must be > 0")
    if args.ring < 1:
        raise UsageError("--ring must be >= 1")
    if args.hysteresis < 1:
        raise UsageError("--hysteresis must be >= 1")
    if args.method not in available_methods():
        raise UsageError(f"unknown access method: {args.method!r}")
    cell = SweepCell.make(
        args.method,
        _spec(args),
        block_bytes=args.block_bytes,
        cost_model=_COST_MODELS[args.device](),
        params={
            "window": args.window,
            "ring": args.ring,
            "hysteresis": args.hysteresis,
        },
        runner="repro.obs.live:run_live_cell",
    )
    # No result cache: the frame stream is the product of this run, not
    # an intermediate worth persisting under .repro-cache/.
    with SweepEngine(jobs=args.jobs) as engine:
        outcome = engine.run([cell])
    result = outcome.results[0]
    if args.json:
        text = json.dumps(result, indent=2, sort_keys=True)
    else:
        text = _top_frames_table(args, result)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    print(text)
    return 0 if result["conserved"] else 1


def _top_frames_table(args, result) -> str:
    """One row per window: op mix, RO/UO/MO, drift state, top phases."""
    rows = []
    for frame in result["frames"]:
        phases = sorted(
            frame["phases"].items(), key=lambda item: (-item[1], item[0])
        )[: max(args.phases, 0)]
        rows.append([
            frame["window"],
            f"{frame['start']:.0f}",
            frame["read_ops"],
            frame["update_ops"],
            f"{frame['ro']:.2f}",
            f"{frame['uo']:.2f}",
            f"{frame['mo']:.2f}",
            frame["drift"],
            " ".join(f"{path}:{nbytes}" for path, nbytes in phases),
        ])
    table = format_table(
        ["win", "start", "reads", "updates", "RO", "UO", "MO", "drift",
         "top phases (bytes)"],
        rows,
        title=(
            f"{args.method} under {args.workload!r}: "
            f"{len(result['frames'])} window(s) of width {args.window:g}"
        ),
    )
    profile = result["profile"]
    footer = (
        f"whole-run RO={profile['ro']:.2f} UO={profile['uo']:.2f} "
        f"MO={profile['mo']:.2f} simulated_time={profile['simulated_time']:.2f}"
    )
    transitions = "; ".join(
        f"window {item['window']}: {item['from']} -> {item['to']}"
        for item in result["drift_transitions"]
    ) or "none"
    status = (
        "conservation: window sums match the whole-run totals exactly"
        if result["conserved"]
        else (
            f"CONSERVATION VIOLATION: window sums {result['totals']} != "
            f"whole-run totals {result['run_totals']}"
        )
    )
    return (
        f"{table}\n{footer}\n"
        f"drift transitions: {transitions}\n"
        f"evicted windows: {result['evicted_windows']}\n{status}"
    )


def _serve_sync_policy(args):
    """Validate the group-commit flags into a :class:`SyncPolicy`."""
    from repro.serve import SyncPolicy

    if args.group_commit < 1:
        raise UsageError("--group-commit must be >= 1")
    if args.sync_deadline is not None and args.sync_deadline < 0:
        raise UsageError("--sync-deadline must be >= 0")
    return SyncPolicy(
        group_size=args.group_commit, deadline=args.sync_deadline
    )


def _serve_live_window(args) -> Optional[float]:
    """Validate ``--live-window`` (None = live metrics off)."""
    if args.live_window is not None and args.live_window <= 0:
        raise UsageError("--live-window must be > 0")
    return args.live_window


def _serve_capacities(text: str) -> List[int]:
    try:
        capacities = [int(item) for item in text.split(",") if item.strip()]
    except ValueError:
        raise UsageError(
            f"--hierarchy must be comma-separated level capacities "
            f"in blocks, got {text!r}"
        )
    if not capacities or any(capacity < 1 for capacity in capacities):
        raise UsageError(
            "--hierarchy needs at least one positive level capacity"
        )
    return capacities


def _serve_device(args, backing):
    """Mount ``backing`` behind the chained write-back stack when asked.

    The facade's kind-aware durability keeps the serving tier's crash
    contract intact: data pages are forced through on write, and only
    the WAL's blocks ride write-back until its sync forces them down.
    """
    if not args.hierarchy:
        return backing
    from repro.storage.hierarchy import (
        HierarchicalDevice,
        LevelSpec,
        MemoryHierarchy,
    )

    capacities = _serve_capacities(args.hierarchy)
    specs = [
        LevelSpec(
            name=f"L{index}",
            capacity_blocks=capacity,
            access_cost=0.01 * (100 ** index) / (100 ** (len(capacities) - 1)),
            write_policy="write-back",
            inclusion="inclusive",
        )
        for index, capacity in enumerate(capacities)
    ]
    return HierarchicalDevice(MemoryHierarchy(backing, specs))


def _command_serve(args) -> int:
    """Run the serving tier; optionally crash it and recover from the WAL.

    Without ``--crash-write-at`` this is a correctness walkthrough: the
    bench harness drives ``--clients`` concurrent sessions through OCC
    transactions and the run is checked against the oracle and the
    structure audit.  With it, the run crashes at the Nth device write
    (``--torn`` tears the WAL write it lands on), a fresh server
    recovers over the same device, and the recovered state is verified.
    """
    import random

    from repro.check import FaultPlan
    from repro.check.faults import DeviceFault, FaultyDevice
    from repro.serve import Server, ServerCrashed, run_bench
    from repro.storage.device import SimulatedDevice

    policy = _serve_sync_policy(args)
    if args.crash_write_at is None:
        device = _serve_device(
            args, SimulatedDevice(block_bytes=args.block_bytes)
        )
        method = _checked_method(args.method, device=device)
        report = run_bench(
            method,
            clients=args.clients,
            txns_per_client=args.txns,
            ops_per_txn=args.ops_per_txn,
            records=args.records,
            seed=args.seed,
            checkpoint_every=args.checkpoint_every,
            sync_policy=policy,
            live_window=_serve_live_window(args),
        )
        _print_serve_report(args, report)
        return 0 if report.clean else 1

    # Crash + recovery demo.  Bulk-load cleanly, arm the fault plan,
    # serve until the injected crash, then recover and verify.  The
    # fault lives on the *backing* device: under --hierarchy it fires
    # only when traffic actually reaches durable storage through the
    # chain, which is exactly the pool-write/write-back gap the WAL's
    # sync_through contract must survive.
    kinds = ("wal",) if args.torn else ()
    plan = FaultPlan(
        fail_write_at=args.crash_write_at,
        torn_writes=args.torn,
        kinds=kinds,
        max_faults=1,
    )
    faulty = FaultyDevice(SimulatedDevice(block_bytes=args.block_bytes))
    method = _checked_method(
        args.method, device=_serve_device(args, faulty)
    )
    method.bulk_load([(key, key * 1000 + 1) for key in range(args.records)])
    if args.hierarchy:
        # Push the load's dirty frames down so the armed run starts
        # with the backing device authoritative.
        method.device.flush()
    faulty.arm(plan)
    server = Server(
        method, checkpoint_every=args.checkpoint_every, sync_policy=policy
    )
    session = server.connect()
    rng = random.Random(args.seed)
    acked = {}
    #: Parked (version, writes) not yet acked, in version order.
    parked: List = []
    inflight = {}
    crashed_at = None

    def fold_acked() -> None:
        while parked and parked[0][0].acked:
            acked.update(parked.pop(0)[1])

    for txn_index in range(args.txns * max(1, args.clients)):
        try:
            server.poll_group()  # the group-commit timer tick
            fold_acked()
            txn = session.begin()
            writes = {}
            for _ in range(args.ops_per_txn):
                key = rng.randrange(args.records)
                value = txn_index * 1_000 + key
                session.put(key, value)
                writes[key] = value
            inflight = writes
            session.commit()
            inflight = {}
            # Append first, fold after: when this commit triggered the
            # group sync its whole group acked at once, and the fold
            # must apply those write sets in version order (this
            # commit's version is the group's highest).
            parked.append((session.last_ticket, writes))
            fold_acked()
        except (DeviceFault, ServerCrashed) as error:
            crashed_at = (txn_index, error)
            break
    if crashed_at is None:
        # Drain any still-parked group; the forced sync can be the
        # very write the plan was waiting for.
        try:
            server.poll_group(force=True)
            fold_acked()
        except (DeviceFault, ServerCrashed) as error:
            crashed_at = (txn_index, error)
    if crashed_at is None:
        print(
            f"no crash: the write trigger (#{args.crash_write_at}) never "
            f"fired in {args.txns * max(1, args.clients)} transactions"
        )
        return 1
    txn_index, error = crashed_at
    # Commits the group sync acked before the crash landed are durable
    # promises even if the crash interrupted the apply that followed.
    fold_acked()
    print(f"crashed during transaction {txn_index}: {error}")
    faulty.disarm()
    if args.hierarchy:
        # The process (and every cache level with it) died; restart
        # mounts a fresh, cold hierarchy over the surviving backing.
        method.device = _serve_device(args, faulty)
    restarted = Server(
        method, checkpoint_every=args.checkpoint_every, sync_policy=policy
    )
    report = restarted.recover()
    print(
        f"recovered: scanned {report.records_scanned} WAL record(s)"
        f"{' (torn tail truncated)' if report.truncated else ''}, "
        f"replayed {report.transactions_replayed} committed txn(s) "
        f"after checkpoint v{report.checkpoint_version}, "
        f"resumed at version {report.resumed_version}, "
        f"freed {report.blocks_freed} log block(s)"
    )
    failures = method.audit()
    if failures:
        for failure in failures:
            print(f"audit violation: {failure}", file=sys.stderr)
        return 1
    # Atomicity + durability: every acked commit must survive, each
    # pending (parked or in-flight) transaction is all-or-nothing, and
    # the survivors form a version-order prefix — the WAL appends in
    # version order, so a torn sync can only keep a prefix durable.
    pending_writes = [writes for _, writes in parked]
    if inflight:
        pending_writes.append(inflight)
    keys = sorted(
        set(acked) | {key for writes in pending_writes for key in writes}
    )
    session = restarted.connect()
    session.begin()
    state = {key: session.get(key) for key in keys}
    session.abort()
    # Keys the crash left untouched keep their bulk-load values.
    base = {
        key: acked.get(key, key * 1000 + 1 if key < args.records else None)
        for key in keys
    }
    candidates = [dict(base)]
    for writes in pending_writes:
        nxt = dict(candidates[-1])
        nxt.update(writes)
        candidates.append(nxt)
    matched = next(
        (i for i, cand in enumerate(candidates) if state == cand), None
    )
    if matched is None:
        diff = {
            key: (state[key], [cand[key] for cand in candidates])
            for key in keys
            if all(state[key] != cand[key] for cand in candidates)
        }
        print(
            f"durability violation: recovered state matches neither the "
            f"acked history nor any version-order prefix of the "
            f"{len(pending_writes)} pending txn(s); diff "
            f"(actual, candidates): {diff}",
            file=sys.stderr,
        )
        return 1
    print(
        f"all {len(acked)} acknowledged key(s) survived "
        f"(plus {matched} of {len(pending_writes)} pending txn(s)); "
        f"audit clean"
    )
    return 0


def _print_serve_report(args, report) -> None:
    rows = [
        [
            stats.client_id,
            stats.committed,
            stats.conflicts,
            stats.abandoned,
            f"{stats.p50:.2f}",
            f"{stats.p99:.2f}",
        ]
        for stats in report.clients
    ]
    print(format_table(
        ["client", "commits", "conflicts", "abandoned", "p50", "p99"],
        rows,
        title=(
            f"{args.method}: {len(report.clients)} client(s) x "
            f"{args.txns} txn(s), seed {args.seed}"
        ),
    ))
    profile = report.profile
    print(
        f"RO={profile.read_overhead:.2f} UO={profile.update_overhead:.2f} "
        f"MO={profile.memory_overhead:.2f} "
        f"simulated_time={report.simulated_time:.2f}"
    )
    print(
        f"overall p50={report.overall_p50:.2f} p99={report.overall_p99:.2f}  "
        f"commits={report.total_commits} conflicts={report.total_conflicts}  "
        f"wal_syncs={report.wal_syncs} checkpoints={report.checkpoints}"
    )
    print(
        f"sync_policy={report.sync_policy}  "
        f"group_syncs={report.group_syncs}  "
        f"wal_blocks_written={report.wal_blocks_written}"
    )
    if report.live_frames is not None:
        print()
        print(_serve_live_table(args, report.live_frames))
    if not report.clean:
        if report.oracle_divergences:
            print(
                f"oracle divergences: {report.oracle_divergences} "
                f"record(s) differ from the commit-order oracle",
                file=sys.stderr,
            )
        for violation in report.audit_violations[:5]:
            print(f"audit violation: {violation}", file=sys.stderr)


def _serve_live_table(args, frames) -> str:
    """Per-window serving-tier metrics, one row per simulated-time window."""
    rows = []
    for frame in frames:
        counters = frame["counters"]
        latency = frame["histograms"].get("txn-latency", {})
        occupancy = frame["histograms"].get("group-occupancy", {})
        rows.append([
            frame["window"],
            counters.get("txn-begin", 0),
            counters.get("txn-commit", 0),
            counters.get("txn-abort", 0),
            counters.get("wal-sync", 0),
            counters.get("wal-bytes", 0),
            f"{latency.get('p50', 0.0):.2f}",
            f"{latency.get('p99', 0.0):.2f}",
            occupancy.get("max", 0),
        ])
    return format_table(
        ["win", "begins", "commits", "aborts", "syncs", "WAL B",
         "lat p50", "lat p99", "grp max"],
        rows,
        title=(
            f"live serving-tier windows (width {args.live_window:g} "
            f"simulated-time units)"
        ),
    )


def _command_bench_serve(args) -> int:
    from repro.serve import run_bench
    from repro.storage.device import SimulatedDevice
    from repro.workloads.distributions import distribution_names

    if args.distribution not in distribution_names():
        raise UsageError(
            f"unknown distribution {args.distribution!r}; "
            f"known: {', '.join(distribution_names())}"
        )
    policy = _serve_sync_policy(args)
    device = _serve_device(args, SimulatedDevice(
        block_bytes=args.block_bytes,
        cost_model=_COST_MODELS[args.device](),
        name=args.device,
    ))
    method = _checked_method(args.method, device=device)
    report = run_bench(
        method,
        clients=args.clients,
        txns_per_client=args.txns,
        ops_per_txn=args.ops_per_txn,
        records=args.records,
        seed=args.seed,
        distribution=args.distribution,
        checkpoint_every=args.checkpoint_every,
        sync_policy=policy,
        live_window=_serve_live_window(args),
    )
    _print_serve_report(args, report)
    return 0 if report.clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments and dispatch to the chosen subcommand.

    Exit codes: 0 = clean, 1 = a check failed (audit violation, oracle
    divergence, lost durability), 2 = usage error (argparse rejections
    and post-parse validation alike).
    """
    try:
        args = _build_parser().parse_args(argv)
    except SystemExit as exit_:  # argparse exits; keep the contract: 2
        code = exit_.code
        if code in (None, 0):
            return 0
        return code if isinstance(code, int) else 2
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "profile":
            return _command_profile(args)
        if args.command == "triangle":
            return _command_triangle(args)
        if args.command == "wizard":
            return _command_wizard(args)
        if args.command == "reproduce":
            return _command_reproduce(args)
        if args.command == "record":
            return _command_record(args)
        if args.command == "replay":
            return _command_replay(args)
        if args.command == "trace":
            return _command_trace(args)
        if args.command == "stats":
            return _command_stats(args)
        if args.command == "explain":
            return _command_explain(args)
        if args.command == "flame":
            return _command_flame(args)
        if args.command == "audit":
            return _command_audit(args)
        if args.command == "hierarchy":
            return _command_hierarchy(args)
        if args.command == "sweep":
            return _command_sweep(args)
        if args.command == "top":
            return _command_top(args)
        if args.command == "serve":
            return _command_serve(args)
        if args.command == "bench-serve":
            return _command_bench_serve(args)
    except UsageError as error:
        print(f"usage error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # output piped into head & friends
        import os

        # Detach stdout so the interpreter's exit flush cannot raise again.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
