"""The ``BlockStore`` protocol: anything a buffer pool can sit on.

The memory-hierarchy simulator (Figure 2) composes storage components
vertically: a :class:`~repro.storage.pager.BufferPool` over a
:class:`~repro.storage.device.SimulatedDevice`, a pool over another
pool, a pool over a fault-injecting proxy.  For that composition to be
*genuinely chained* — misses, write-backs and flushes cascading level by
level instead of teleporting to the backing device — every layer must
speak the same small interface.  This module names it.

A :class:`BlockStore` is the read/write surface of one storage layer:

``read(block_id)``
    Return a block's payload, charging whatever that layer charges.
``write(block_id, payload, used_bytes=0)``
    Replace a block's payload, declaring its logical occupancy.
``peek(block_id)``
    The current payload without I/O, stats or policy effects —
    the layer's *newest* copy (a dirty cached frame beats the copy
    below it).  Debugging/audit surface only.
``used_bytes_of(block_id)``
    The block's declared logical occupancy, without charging I/O,
    preferring an unflushed dirty frame's value where one exists.
``block_bytes`` / ``name``
    The block granularity and a label for traces and reports.

:class:`~repro.storage.device.SimulatedDevice` satisfies it natively,
:class:`~repro.storage.pager.BufferPool` satisfies it so pools stack,
and the device wrappers (:class:`~repro.storage.cached.CachedDevice`,
:class:`~repro.check.faults.FaultyDevice`) satisfy it by inheritance —
so a hierarchy level can sit on any of them interchangeably.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.storage.block import BlockId


@runtime_checkable
class BlockStore(Protocol):
    """Structural interface of one storage layer (see module docstring)."""

    @property
    def block_bytes(self) -> int:
        """Block granularity of this store, in bytes."""
        ...  # pragma: no cover - protocol

    @property
    def name(self) -> str:
        """Label used in traces and reports."""
        ...  # pragma: no cover - protocol

    def read(self, block_id: BlockId) -> object:
        """Read a block's payload through this layer."""
        ...  # pragma: no cover - protocol

    def write(self, block_id: BlockId, payload: object, used_bytes: int = 0) -> None:
        """Write a block's payload through this layer."""
        ...  # pragma: no cover - protocol

    def peek(self, block_id: BlockId) -> object:
        """The layer's newest copy of a block, without charging I/O."""
        ...  # pragma: no cover - protocol

    def used_bytes_of(self, block_id: BlockId) -> int:
        """Declared logical occupancy of a block, without charging I/O."""
        ...  # pragma: no cover - protocol
