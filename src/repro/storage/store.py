"""The ``BlockStore`` protocol: anything a buffer pool can sit on.

The memory-hierarchy simulator (Figure 2) composes storage components
vertically: a :class:`~repro.storage.pager.BufferPool` over a
:class:`~repro.storage.device.SimulatedDevice`, a pool over another
pool, a pool over a fault-injecting proxy.  For that composition to be
*genuinely chained* — misses, write-backs and flushes cascading level by
level instead of teleporting to the backing device — every layer must
speak the same small interface.  This module names it.

A :class:`BlockStore` is the read/write surface of one storage layer:

``read(block_id)``
    Return a block's payload, charging whatever that layer charges.
``write(block_id, payload, used_bytes=0)``
    Replace a block's payload, declaring its logical occupancy.
``peek(block_id)``
    The current payload without I/O, stats or policy effects —
    the layer's *newest* copy (a dirty cached frame beats the copy
    below it).  Debugging/audit surface only.
``used_bytes_of(block_id)``
    The block's declared logical occupancy, without charging I/O,
    preferring an unflushed dirty frame's value where one exists.
``sync_through(block_ids)``
    Force the named blocks' dirty frames down *through every level* to
    the ultimate backing device — the modeled ``fsync``.  Each layer
    writes back its own dirty frames for those blocks (charging the
    level below normally) and then recurses into the store it sits on,
    so the push can never skip an intermediate level.  On a device,
    writes are already durable and this is a no-op.
``block_bytes`` / ``name``
    The block granularity and a label for traces and reports.

:class:`~repro.storage.device.SimulatedDevice` satisfies it natively,
:class:`~repro.storage.pager.BufferPool` satisfies it so pools stack,
and the device wrappers (:class:`~repro.storage.cached.CachedDevice`,
:class:`~repro.check.faults.FaultyDevice`) satisfy it by inheritance —
so a hierarchy level can sit on any of them interchangeably.
"""

from __future__ import annotations

from typing import Iterable, Protocol, runtime_checkable

from repro.storage.block import BlockId


@runtime_checkable
class BlockStore(Protocol):
    """Structural interface of one storage layer (see module docstring)."""

    @property
    def block_bytes(self) -> int:
        """Block granularity of this store, in bytes."""
        ...  # pragma: no cover - protocol

    @property
    def name(self) -> str:
        """Label used in traces and reports."""
        ...  # pragma: no cover - protocol

    def read(self, block_id: BlockId) -> object:
        """Read a block's payload through this layer."""
        ...  # pragma: no cover - protocol

    def write(self, block_id: BlockId, payload: object, used_bytes: int = 0) -> None:
        """Write a block's payload through this layer."""
        ...  # pragma: no cover - protocol

    def peek(self, block_id: BlockId) -> object:
        """The layer's newest copy of a block, without charging I/O."""
        ...  # pragma: no cover - protocol

    def used_bytes_of(self, block_id: BlockId) -> int:
        """Declared logical occupancy of a block, without charging I/O."""
        ...  # pragma: no cover - protocol

    def sync_through(self, block_ids: Iterable[BlockId]) -> int:
        """Force the named blocks through every level to durable storage.

        Returns the number of dirty frames written back along the way
        (0 on a bare device, where every write is already durable).
        """
        ...  # pragma: no cover - protocol


@runtime_checkable
class LogStore(BlockStore, Protocol):
    """A :class:`BlockStore` that also owns block allocation.

    The surface :class:`~repro.serve.wal.WriteAheadLog` needs: the data
    path of ``BlockStore`` plus the allocator/catalog calls a log uses
    to create, retire and rediscover its blocks.  Satisfied by
    :class:`~repro.storage.device.SimulatedDevice` and its wrappers
    (:class:`~repro.storage.cached.CachedDevice`,
    :class:`~repro.storage.hierarchy.HierarchicalDevice`,
    :class:`~repro.check.faults.FaultyDevice`).
    """

    def allocate(self, kind: str = "data") -> BlockId:
        """Allocate a fresh block tagged ``kind``."""
        ...  # pragma: no cover - protocol

    def free(self, block_id: BlockId) -> None:
        """Release a block (and drop any cached frames for it)."""
        ...  # pragma: no cover - protocol

    def kind_of(self, block_id: BlockId) -> str:
        """A block's allocation ``kind`` tag, without charging I/O."""
        ...  # pragma: no cover - protocol

    def iter_block_ids(self) -> Iterable[BlockId]:
        """Iterate over currently allocated block ids (no I/O)."""
        ...  # pragma: no cover - protocol
