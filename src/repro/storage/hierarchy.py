"""Memory-hierarchy simulator (substrate of the paper's Figure 2).

The paper argues the RUM tradeoffs hold *per level* of the memory
hierarchy and also *vertically*: the read overhead RO_n and update
overhead UO_n at level ``n`` can be reduced by caching more data at the
faster level ``n-1``, which raises the memory overhead MO_{n-1} there.

:class:`MemoryHierarchy` models a stack of levels, each a
:class:`~repro.storage.pager.BufferPool` over the level below; the bottom
level is the backing :class:`~repro.storage.device.SimulatedDevice`.
Every level tracks the accesses that *reach it* (its misses are the
accesses that reach the next level down), so RO_n / UO_n / MO_{n-1} can be
read off directly, reproducing Figure 2's interaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.storage.block import BlockId
from repro.storage.device import CostModel, SimulatedDevice
from repro.storage.pager import BufferPool, EvictionPolicy, LRUPolicy


@dataclass(frozen=True)
class LevelSpec:
    """Configuration of one hierarchy level.

    ``capacity_blocks`` is the level's cache capacity; the bottom level's
    capacity is ignored (it holds everything).  ``access_cost`` is the
    abstract cost of one block access served *at* this level.
    """

    name: str
    capacity_blocks: int
    access_cost: float = 1.0


@dataclass
class LevelCounters:
    """Traffic observed at one level of the hierarchy."""

    reads_served: int = 0
    writes_served: int = 0
    reads_passed_down: int = 0
    writes_passed_down: int = 0

    @property
    def reads_reaching(self) -> int:
        """Read requests that reached this level at all."""
        return self.reads_served + self.reads_passed_down

    @property
    def writes_reaching(self) -> int:
        return self.writes_served + self.writes_passed_down


class HierarchyLevel:
    """One cache level: a buffer pool plus traffic counters."""

    def __init__(
        self,
        spec: LevelSpec,
        device: SimulatedDevice,
        policy: Optional[EvictionPolicy] = None,
    ) -> None:
        self.spec = spec
        self.pool = BufferPool(device, spec.capacity_blocks, policy or LRUPolicy())
        self.counters = LevelCounters()

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def space_bytes(self) -> int:
        """Bytes of data replicated at this level (drives MO here)."""
        return self.pool.cached_bytes

    def hit_rate(self) -> float:
        """Fraction of accesses this level served itself."""
        return self.pool.stats.hit_rate


class MemoryHierarchy:
    """A stack of cache levels over one backing device.

    ``levels`` are ordered fast-to-slow (e.g. ``[cache, dram]`` over a
    flash backing device).  Reads and writes enter at the top; each level
    serves hits and passes misses down.  The backing device's own counters
    record the traffic that reached the bottom.

    Notes
    -----
    Caching is *inclusive*: a block cached at level ``n-1`` is typically
    also present at ``n``, as in most real hierarchies.  Eviction is
    per-level and independent.
    """

    def __init__(
        self,
        backing: SimulatedDevice,
        levels: Sequence[LevelSpec],
        policy_factory=LRUPolicy,
    ) -> None:
        self.backing = backing
        self.levels: List[HierarchyLevel] = []
        # Build bottom-up: each level's pool reads through to the composite
        # below it.  We implement the chain by letting each level's pool
        # target the backing device, but routing traffic level by level in
        # read()/write() so per-level counters stay exact.
        for spec in levels:
            self.levels.append(HierarchyLevel(spec, backing, policy_factory()))

    # ------------------------------------------------------------------
    def read(self, block_id: BlockId) -> object:
        """Read a block through the hierarchy, top level first."""
        missed: List[HierarchyLevel] = []
        for level in self.levels:
            frame = level.pool._frames.get(block_id)
            if frame is not None:
                level.counters.reads_served += 1
                level.pool.stats.hits += 1
                level.pool.policy.on_access(block_id)
                payload = frame.payload
                self._fill_upwards(missed, block_id, payload)
                return payload
            level.counters.reads_passed_down += 1
            level.pool.stats.misses += 1
            missed.append(level)
        payload = self.backing.read(block_id)
        self._fill_upwards(missed, block_id, payload)
        return payload

    def write(self, block_id: BlockId, payload: object, used_bytes: int = 0) -> None:
        """Write a block at the top level (write-back down the stack).

        The write is absorbed by the first level with capacity; lower
        levels see it only on eviction or flush.  A hierarchy with no
        levels writes straight to the backing device.
        """
        for level in self.levels:
            if level.spec.capacity_blocks > 0:
                level.counters.writes_served += 1
                self._pool_write(level, block_id, payload, used_bytes)
                return
            level.counters.writes_passed_down += 1
        self.backing.write(block_id, payload, used_bytes)

    def flush(self) -> None:
        """Flush every level's dirty frames down to the backing device."""
        for level in self.levels:
            level.pool.flush()

    # ------------------------------------------------------------------
    def level(self, name: str) -> HierarchyLevel:
        """Look a level up by its configured name."""
        for level in self.levels:
            if level.name == name:
                return level
        raise KeyError(f"no hierarchy level named {name!r}")

    def space_by_level(self) -> List[tuple]:
        """(name, bytes cached) per level, top to bottom, plus backing."""
        rows = [(level.name, level.space_bytes) for level in self.levels]
        rows.append((self.backing.name, self.backing.allocated_bytes))
        return rows

    # ------------------------------------------------------------------
    def _fill_upwards(
        self, missed: List[HierarchyLevel], block_id: BlockId, payload: object
    ) -> None:
        """Install a block into every level that missed on the way down."""
        for level in missed:
            if level.spec.capacity_blocks > 0:
                level.pool._admit(block_id, payload, used_bytes=0, dirty=False)

    @staticmethod
    def _pool_write(
        level: HierarchyLevel, block_id: BlockId, payload: object, used_bytes: int
    ) -> None:
        pool = level.pool
        frame = pool._frames.get(block_id)
        if frame is not None:
            pool.stats.hits += 1
            frame.payload = payload
            frame.used_bytes = used_bytes
            frame.dirty = True
            pool.policy.on_access(block_id)
        else:
            pool.stats.misses += 1
            pool._admit(block_id, payload, used_bytes=used_bytes, dirty=True)
