"""Memory-hierarchy simulator (substrate of the paper's Figure 2).

The paper argues the RUM tradeoffs hold *per level* of the memory
hierarchy and also *vertically*: the read overhead RO_n and update
overhead UO_n at level ``n`` can be reduced by caching more data at the
faster level ``n-1``, which raises the memory overhead MO_{n-1} there.

That claim is about traffic that flows *level by level*, so the
simulator is built as a genuinely chained stack:
:class:`HierarchyLevel` satisfies the
:class:`~repro.storage.store.BlockStore` protocol and each level's
:class:`~repro.storage.pager.BufferPool` targets the level **below**
it — the bottom level's pool targets the backing device (through a thin
traffic meter).  A read miss at level 0 therefore cascades 0 → 1 → … →
backing one level at a time, and a dirty eviction from level ``n``
lands in level ``n+1``'s pool, never teleporting past it.  (The
previous design pointed every pool at the backing device, so a dirty
eviction from level 0 bypassed level 1, which could then serve a stale
clean copy — the exact layering bug :meth:`MemoryHierarchy.audit` now
rejects.)

Every level counts the traffic reaching it and the traffic it passes
down, so RO_n / UO_n / MO_{n-1} can be read off directly and the audit
can check *conservation*: traffic passed down at level ``n`` equals
traffic reaching level ``n+1``, exactly, with the two sides counted by
independent code paths.

Per level the :class:`LevelSpec` also selects a write policy
(write-back / write-through), an inclusion mode (inclusive /
exclusive victim-fill) and a :class:`~repro.storage.device.CostModel`
whose read/write prices aggregate into one hierarchy-wide
``simulated_time``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.obs.tracer import Tracer
from repro.storage.block import BlockId
from repro.storage.device import CostModel, DeviceCounters, SimulatedDevice
from repro.storage.pager import BufferPool, EvictionPolicy, LRUPolicy
from repro.storage.store import BlockStore

#: Write policies a level can adopt (see :class:`LevelSpec`).
WRITE_BACK = "write-back"
WRITE_THROUGH = "write-through"

#: Inclusion modes a level can adopt (see :class:`LevelSpec`).
INCLUSIVE = "inclusive"
EXCLUSIVE = "exclusive"


@dataclass(frozen=True)
class LevelSpec:
    """Configuration of one hierarchy level.

    ``capacity_blocks`` is the level's cache capacity; 0 degenerates to
    a pass-through level.  ``access_cost`` is the abstract cost of one
    block access arriving at this level; ``cost_model`` overrides it
    with distinct read/write prices (reads are charged the model's
    ``random_read``, writes its ``random_write`` — per-level seek
    classification is deliberately not modelled).

    ``write_policy`` is :data:`WRITE_BACK` (writes dirty a frame, the
    level below sees them on eviction/flush) or :data:`WRITE_THROUGH`
    (writes propagate down immediately, frames stay clean).

    ``inclusion`` is :data:`INCLUSIVE` (read misses install the fetched
    block at this level, so upper-level content is typically replicated
    here) or :data:`EXCLUSIVE` (victim-fill: demand reads pass through
    uncached and this level holds only what the level above pushes
    down — dirty write-backs and clean evicted victims).
    """

    name: str
    capacity_blocks: int
    access_cost: float = 1.0
    cost_model: Optional[CostModel] = None
    write_policy: str = WRITE_BACK
    inclusion: str = INCLUSIVE

    def __post_init__(self) -> None:
        if self.write_policy not in (WRITE_BACK, WRITE_THROUGH):
            raise ValueError(f"unknown write policy {self.write_policy!r}")
        if self.inclusion not in (INCLUSIVE, EXCLUSIVE):
            raise ValueError(f"unknown inclusion mode {self.inclusion!r}")

    @property
    def effective_cost_model(self) -> CostModel:
        """The cost model priced into ``simulated_time`` for this level."""
        if self.cost_model is not None:
            return self.cost_model
        cost = self.access_cost
        return CostModel(cost, cost, cost, cost)


@dataclass(frozen=True)
class LevelCounters:
    """Traffic observed at one level of the hierarchy.

    ``reads_in`` / ``writes_in`` count requests arriving at the level
    (from the application at the top level, from the level above
    otherwise).  ``reads_down`` counts demand reads the level issued to
    the level below (one per read miss); ``writes_down`` counts writes
    it issued below from any cause — dirty-eviction write-backs, flush
    write-backs, write-through propagation, capacity-0 pass-through.
    ``victims_accepted`` counts clean victim-fills received from the
    level above (data movement, not backed writes — excluded from write
    conservation).
    """

    reads_in: int = 0
    writes_in: int = 0
    reads_down: int = 0
    writes_down: int = 0
    writes_absorbed: int = 0
    victims_accepted: int = 0

    # Compatibility views, matching how Figure 2 reads the counters.
    @property
    def reads_served(self) -> int:
        """Read requests this level answered from its own frames."""
        return self.reads_in - self.reads_down

    @property
    def writes_served(self) -> int:
        """Write requests absorbed into this level's frames."""
        return self.writes_absorbed

    @property
    def reads_passed_down(self) -> int:
        return self.reads_down

    @property
    def writes_passed_down(self) -> int:
        return self.writes_down

    @property
    def reads_reaching(self) -> int:
        """Read requests that reached this level at all."""
        return self.reads_in

    @property
    def writes_reaching(self) -> int:
        return self.writes_in


class _BackingMeter:
    """Thin :class:`BlockStore` counting the traffic that reaches backing.

    Sits between the bottom level's pool and the backing device so the
    hierarchy owns an incoming-traffic count that is independent of the
    device's own counters (which callers may ``reset_counters`` at
    will).  Also prices that traffic with the backing device's cost
    model — tracking sequential runs the way the device does — so
    :attr:`MemoryHierarchy.simulated_time` composes per-level costs with
    the backing level's without touching device state.
    """

    def __init__(self, backing: SimulatedDevice) -> None:
        self.backing = backing
        self.reads_in = 0
        self.writes_in = 0
        self.simulated_time = 0.0
        self._seq_read_id: BlockId = -1
        self._seq_write_id: BlockId = -1

    @property
    def name(self) -> str:
        return self.backing.name

    @property
    def block_bytes(self) -> int:
        return self.backing.block_bytes

    def read(self, block_id: BlockId) -> object:
        self.reads_in += 1
        model = self.backing.cost_model
        self.simulated_time += (
            model.sequential_read
            if block_id == self._seq_read_id
            else model.random_read
        )
        self._seq_read_id = block_id + 1
        return self.backing.read(block_id)

    def write(self, block_id: BlockId, payload: object, used_bytes: int = 0) -> None:
        self.writes_in += 1
        model = self.backing.cost_model
        self.simulated_time += (
            model.sequential_write
            if block_id == self._seq_write_id
            else model.random_write
        )
        self._seq_write_id = block_id + 1
        self.backing.write(block_id, payload, used_bytes)

    def peek(self, block_id: BlockId) -> object:
        return self.backing.peek(block_id)

    def used_bytes_of(self, block_id: BlockId) -> int:
        return self.backing.used_bytes_of(block_id)

    def sync_through(self, block_ids: Iterable[BlockId]) -> int:
        """End of the chain: the backing device's writes are durable."""
        return self.backing.sync_through(block_ids)


class HierarchyLevel:
    """One cache level: a buffer pool over the level below, plus counters.

    Satisfies :class:`~repro.storage.store.BlockStore`, so the level
    above can stack its pool directly on this one — that chaining is
    what makes misses, write-backs and flushes cascade level by level.
    """

    def __init__(
        self,
        spec: LevelSpec,
        below: BlockStore,
        policy: Optional[EvictionPolicy] = None,
    ) -> None:
        self.spec = spec
        self.below = below
        self.pool = BufferPool(
            below,
            spec.capacity_blocks,
            policy or LRUPolicy(),
            write_through=spec.write_policy == WRITE_THROUGH,
            admit_on_read=spec.inclusion == INCLUSIVE,
        )
        # Trace events from this level's pool carry the level's name.
        self.pool.name = f"pool({spec.name})"
        self._reads_in = 0
        self._writes_in = 0
        self._writes_absorbed = 0
        self._victims_accepted = 0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def block_bytes(self) -> int:
        return self.pool.block_bytes

    # ------------------------------------------------------------------
    # BlockStore surface: the level above (or the hierarchy) calls these.
    # ------------------------------------------------------------------
    def read(self, block_id: BlockId) -> object:
        """Read arriving at this level; misses cascade to the level below."""
        self._reads_in += 1
        return self.pool.read(block_id)

    def write(self, block_id: BlockId, payload: object, used_bytes: int = 0) -> None:
        """Write arriving at this level, handled per the level's policy."""
        self._writes_in += 1
        if self.spec.capacity_blocks > 0:
            self._writes_absorbed += 1
        self.pool.write(block_id, payload, used_bytes)

    def peek(self, block_id: BlockId) -> object:
        """Newest copy at or below this level, without charging I/O."""
        return self.pool.peek(block_id)

    def used_bytes_of(self, block_id: BlockId) -> int:
        """Declared occupancy at or below this level, without charging I/O."""
        return self.pool.used_bytes_of(block_id)

    def sync_through(self, block_ids: Iterable[BlockId]) -> int:
        """Push the named blocks' dirty frames down through this level.

        The pool writes back its own dirty frames for those blocks (its
        write-backs arrive at the level below as ordinary writes, so
        conservation holds) and then cascades, so the push reaches the
        backing device no matter which level held the newest copy.
        """
        return self.pool.sync_through(block_ids)

    def accept_victim(
        self, block_id: BlockId, payload: object, used_bytes: int
    ) -> None:
        """Receive a clean victim evicted by the level above (exclusive
        victim-fill).  Data movement, not a backed write — conservation
        counts it separately."""
        self._victims_accepted += 1
        self.pool.fill_clean(block_id, payload, used_bytes)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def counters(self) -> LevelCounters:
        """Snapshot of this level's traffic counters."""
        stats = self.pool.stats
        return LevelCounters(
            reads_in=self._reads_in,
            writes_in=self._writes_in,
            reads_down=stats.demand_reads,
            writes_down=stats.downstream_writes,
            writes_absorbed=self._writes_absorbed,
            victims_accepted=self._victims_accepted,
        )

    @property
    def space_bytes(self) -> int:
        """Bytes of data replicated at this level (drives MO here)."""
        return self.pool.cached_bytes

    @property
    def simulated_time(self) -> float:
        """Latency accrued at this level: every arriving access pays the
        level's price (AMAT-style), reads and writes separately."""
        model = self.spec.effective_cost_model
        return (
            self._reads_in * model.random_read
            + self._writes_in * model.random_write
        )

    def hit_rate(self) -> float:
        """Fraction of accesses this level served itself."""
        return self.pool.stats.hit_rate


class MemoryHierarchy:
    """A chained stack of cache levels over one backing device.

    ``levels`` are ordered fast-to-slow (e.g. ``[cache, dram]`` over a
    flash backing device).  Reads and writes enter at the top; each
    level serves hits and passes misses to the level *below it* — the
    chain is structural (each pool targets the next level), so dirty
    evictions and flushes land in the next level down and nothing can
    bypass an intermediate level.

    :meth:`audit` checks the two invariants the chain promises:
    per-level counter conservation, and that no level holds a clean
    frame differing from the authoritative copy below it.
    """

    def __init__(
        self,
        backing: SimulatedDevice,
        levels: Sequence[LevelSpec],
        policy_factory=LRUPolicy,
    ) -> None:
        self.backing = backing
        self.meter = _BackingMeter(backing)
        below: BlockStore = self.meter
        built: List[HierarchyLevel] = []
        for spec in reversed(list(levels)):
            level = HierarchyLevel(spec, below, policy_factory())
            built.append(level)
            below = level
        self.levels = list(reversed(built))
        # Exclusive levels receive the clean victims of the level above.
        for upper, lower in zip(self.levels, self.levels[1:]):
            if lower.spec.inclusion == EXCLUSIVE:
                upper.pool.victim_store = lower

    # ------------------------------------------------------------------
    def read(self, block_id: BlockId) -> object:
        """Read a block through the hierarchy, top level first."""
        top: BlockStore = self.levels[0] if self.levels else self.meter
        return top.read(block_id)

    def write(self, block_id: BlockId, payload: object, used_bytes: int = 0) -> None:
        """Write a block at the top level.

        Under write-back the write is absorbed by the top level with
        capacity; lower levels see it only on eviction or flush.  A
        hierarchy with no levels writes straight to the backing device.
        """
        top: BlockStore = self.levels[0] if self.levels else self.meter
        top.write(block_id, payload, used_bytes)

    def peek(self, block_id: BlockId) -> object:
        """The hierarchy's newest copy of a block, without charging I/O."""
        top: BlockStore = self.levels[0] if self.levels else self.meter
        return top.peek(block_id)

    def flush(self) -> None:
        """Flush dirty frames down the stack, top level first.

        The ordering matters: flushing level 0 pushes its dirty frames
        into level 1's pool, whose own flush then carries everything to
        level 2, and so on until the backing device is authoritative.
        """
        for level in self.levels:
            level.pool.flush()

    def used_bytes_of(self, block_id: BlockId) -> int:
        """Declared occupancy of a block's newest copy, without I/O."""
        top: BlockStore = self.levels[0] if self.levels else self.meter
        return top.used_bytes_of(block_id)

    def sync_through(self, block_ids: Iterable[BlockId]) -> int:
        """Force the named blocks through every level to the backing
        device — the modeled fsync (see :class:`BlockStore`).  Starts at
        the top so each level's newest copy lands below before that
        level below is in turn forced."""
        top: BlockStore = self.levels[0] if self.levels else self.meter
        return top.sync_through(block_ids)

    def invalidate(self, block_id: BlockId) -> None:
        """Drop every level's cached frame for a block (it was freed).

        Without this, a freed block could leave a stale frame whose
        coherence check would ``peek`` an unallocated backing block.
        """
        for level in self.levels:
            level.pool.invalidate(block_id)

    # ------------------------------------------------------------------
    def level(self, name: str) -> HierarchyLevel:
        """Look a level up by its configured name."""
        for level in self.levels:
            if level.name == name:
                return level
        raise KeyError(f"no hierarchy level named {name!r}")

    def space_by_level(self) -> List[tuple]:
        """(name, bytes cached) per level, top to bottom, plus backing."""
        rows = [(level.name, level.space_bytes) for level in self.levels]
        rows.append((self.backing.name, self.backing.allocated_bytes))
        return rows

    @property
    def backing_reads(self) -> int:
        """Reads that reached the backing device through the chain."""
        return self.meter.reads_in

    @property
    def backing_writes(self) -> int:
        """Writes that reached the backing device through the chain."""
        return self.meter.writes_in

    @property
    def simulated_time(self) -> float:
        """Hierarchy-wide latency: per-level cost models aggregated with
        the backing device's pricing of the traffic that reached it."""
        return sum(level.simulated_time for level in self.levels) + (
            self.meter.simulated_time
        )

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach one tracer to every level's pool and the backing device.

        A single ordered stream then shows the whole vertical slice:
        per-level evictions and write-backs (source ``pool(<level>)``)
        interleaved with the physical traffic reaching backing.
        """
        for level in self.levels:
            level.pool.set_tracer(tracer)
        self.backing.set_tracer(tracer)

    # ------------------------------------------------------------------
    def audit(self) -> List[str]:
        """Structural invariants of the chain; one string per violation.

        * **Conservation** — the traffic level ``n`` counted as passed
          down equals the traffic level ``n+1`` (or the backing meter)
          counted as arriving; the two sides increment on independent
          code paths, so any bypass or double-count shows up here.
        * **Clean-frame coherence** — no level may hold a clean frame
          whose payload (or declared occupancy) differs from the
          authoritative copy below it; a violation means a read could
          serve stale data, the layering bug the chained design exists
          to prevent.
        """
        violations: List[str] = []
        for index, level in enumerate(self.levels):
            below_counts: Tuple[int, int]
            if index + 1 < len(self.levels):
                lower = self.levels[index + 1].counters
                below_name = self.levels[index + 1].name
                below_counts = (lower.reads_in, lower.writes_in)
            else:
                below_name = self.meter.name
                below_counts = (self.meter.reads_in, self.meter.writes_in)
            counters = level.counters
            if counters.reads_down != below_counts[0]:
                violations.append(
                    f"conservation: {level.name} passed down "
                    f"{counters.reads_down} reads but {below_name} "
                    f"received {below_counts[0]}"
                )
            if counters.writes_down != below_counts[1]:
                violations.append(
                    f"conservation: {level.name} passed down "
                    f"{counters.writes_down} writes but {below_name} "
                    f"received {below_counts[1]}"
                )
        for level in self.levels:
            name, below = level.name, level.below
            for frame in level.pool.iter_frames():
                if frame.dirty:
                    continue
                authoritative = below.peek(frame.block_id)
                if frame.payload != authoritative:
                    violations.append(
                        f"coherence: {name} holds clean block "
                        f"{frame.block_id} = {frame.payload!r} but the "
                        f"level below says {authoritative!r}"
                    )
                below_used = below.used_bytes_of(frame.block_id)
                if frame.used_bytes != below_used:
                    violations.append(
                        f"coherence: {name} clean block {frame.block_id} "
                        f"declares used_bytes={frame.used_bytes} but the "
                        f"level below says {below_used}"
                    )
        return violations


class HierarchicalDevice(SimulatedDevice):
    """The whole chained hierarchy masquerading as one device.

    The mount point of the serving tier's hierarchy mode: an access
    method (and its :class:`~repro.serve.wal.WriteAheadLog`) is built
    over this facade unchanged, and every read and write flows through
    the chain — level hits, cascaded misses, write-back absorption —
    while allocation and the block catalog stay on the backing device.
    The pattern mirrors :class:`~repro.storage.cached.CachedDevice`,
    with a :class:`MemoryHierarchy` in place of the single pool.

    Durability is kind-aware.  Writes to blocks whose kind is in
    ``write_back_kinds`` (by default the WAL's ``"wal"`` blocks — the
    one stream whose protocol already separates *written* from
    *synced*) are absorbed by the top level's pool and reach the
    backing device only when :meth:`sync_through` forces them down, the
    modeled fsync.  Every other write is forced through immediately
    after landing in the caches: the serving tier's redo log is
    *logical*, so recovery needs the structure's durable image to be
    consistent — this is a force-policy buffer manager for data pages,
    while the log rides write-back and pays one ``sync_through`` per
    group commit.  Reads of both kinds are cached normally.

    ``counters`` on this facade tally the logical traffic the method
    issued, but price it with the hierarchy's own clock (per-level AMAT
    plus the backing meter) rather than a flat facade cost model — the
    latency a serve bench measures through this device is the chain's.
    """

    __slots__ = ("hierarchy", "backing", "write_back_kinds")

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        write_back_kinds: Tuple[str, ...] = ("wal",),
    ) -> None:
        backing = hierarchy.backing
        super().__init__(
            block_bytes=backing.block_bytes,
            cost_model=CostModel.dram(),
            name=f"hier({backing.name})",
        )
        self.hierarchy = hierarchy
        self.backing = backing
        self.write_back_kinds = frozenset(write_back_kinds)

    def set_tracer(self, tracer: Tracer) -> None:
        """One tracer for the facade, every level's pool, and backing."""
        super().set_tracer(tracer)
        self.hierarchy.set_tracer(tracer)

    # ------------------------------------------------------------------
    # Allocation delegates to the backing device.
    # ------------------------------------------------------------------
    def allocate(self, kind: str = "data") -> BlockId:
        self._allocations += 1
        return self.backing.allocate(kind)

    def free(self, block_id: BlockId) -> None:
        self._frees += 1
        self.hierarchy.invalidate(block_id)
        self.backing.free(block_id)

    def is_allocated(self, block_id: BlockId) -> bool:
        """Whether ``block_id`` is live on the backing device."""
        return self.backing.is_allocated(block_id)

    # ------------------------------------------------------------------
    # I/O goes through the chain.
    # ------------------------------------------------------------------
    def read(self, block_id: BlockId) -> object:
        sequential = block_id == self._seq_read_id
        if sequential:
            self._seq_reads += 1
        else:
            self._rand_reads += 1
        self._seq_read_id = block_id + 1
        payload = self.hierarchy.read(block_id)
        if self._trace_enabled:
            self.tracer.emit(
                source=self.name,
                op="read",
                block_id=block_id,
                kind=self.backing.kind_of(block_id),
                sequential=sequential,
                nbytes=self.block_bytes,
            )
        return payload

    def write(self, block_id: BlockId, payload: object, used_bytes: int = 0) -> None:
        if not 0 <= used_bytes <= self.block_bytes:
            raise ValueError(
                f"used_bytes {used_bytes} outside block capacity {self.block_bytes}"
            )
        sequential = block_id == self._seq_write_id
        if sequential:
            self._seq_writes += 1
        else:
            self._rand_writes += 1
        self._seq_write_id = block_id + 1
        kind = self.backing.kind_of(block_id)
        self.hierarchy.write(block_id, payload, used_bytes)
        if kind not in self.write_back_kinds:
            # Force policy for data pages: the write stays cached at
            # every level but is pushed through to backing immediately,
            # so the durable structure is never a torn-in-time mix the
            # logical redo log could not replay over.
            self.hierarchy.sync_through((block_id,))
        if self._trace_enabled:
            self.tracer.emit(
                source=self.name,
                op="write",
                block_id=block_id,
                kind=kind,
                sequential=sequential,
                nbytes=self.block_bytes,
            )

    def sync_through(self, block_ids: Iterable[BlockId]) -> int:
        """The modeled fsync: force the named blocks through the chain."""
        return self.hierarchy.sync_through(block_ids)

    def flush(self) -> None:
        """Flush every level's dirty frames down to the backing device."""
        self.hierarchy.flush()

    def peek(self, block_id: BlockId) -> object:
        """Newest copy anywhere in the chain, without charging I/O."""
        return self.hierarchy.peek(block_id)

    def kind_of(self, block_id: BlockId) -> str:
        return self.backing.kind_of(block_id)

    def used_bytes_of(self, block_id: BlockId) -> int:
        """Declared occupancy, preferring the newest unflushed frame's."""
        return self.hierarchy.used_bytes_of(block_id)

    # ------------------------------------------------------------------
    # Space accounting delegates to the backing store (dirty-aware).
    # ------------------------------------------------------------------
    @property
    def allocated_blocks(self) -> int:
        return self.backing.allocated_blocks

    @property
    def allocated_bytes(self) -> int:
        return self.backing.allocated_bytes

    def used_bytes(self) -> int:
        """Logical occupancy including unflushed dirty frames.

        Each block's correction uses its *topmost* dirty frame — the
        newest copy; a block dirty at two levels must not be corrected
        twice.
        """
        total = self.backing.used_bytes()
        corrected = set()
        for level in self.hierarchy.levels:
            for block_id, frame_used in level.pool.iter_dirty():
                if block_id in corrected:
                    continue
                corrected.add(block_id)
                total += frame_used - self.backing.used_bytes_of(block_id)
        return total

    def fill_factor(self) -> float:
        allocated = self.backing.allocated_bytes
        if not allocated:
            return 0.0
        return self.used_bytes() / allocated

    def blocks_by_kind(self):
        return self.backing.blocks_by_kind()

    def iter_block_ids(self):
        return self.backing.iter_block_ids()

    def cache_bytes(self) -> int:
        """Total footprint of every level's pool (the chain's MO)."""
        return sum(level.space_bytes for level in self.hierarchy.levels)

    @property
    def counters(self) -> DeviceCounters:
        """Logical traffic tallies, priced with the hierarchy's clock.

        ``simulated_time`` is :attr:`MemoryHierarchy.simulated_time` —
        per-level AMAT plus the backing meter's priced traffic — so
        latency measured through this facade reflects where accesses
        were actually served, not a flat per-access cost.
        """
        seq_reads = self._seq_reads
        rand_reads = self._rand_reads
        seq_writes = self._seq_writes
        rand_writes = self._rand_writes
        reads = seq_reads + rand_reads
        writes = seq_writes + rand_writes
        block_bytes = self.block_bytes
        return DeviceCounters(
            reads,
            writes,
            reads * block_bytes,
            writes * block_bytes,
            self._allocations,
            self._frees,
            self.hierarchy.simulated_time,
        )
