"""Record layout shared by every access method.

The paper's base-data model (Section 2) is "an array of integers ...
consisting of N fixed-sized elements" organized in blocks.  We generalize
slightly to fixed-size key/value records so that update operations have a
well-defined logical size, but keep the layout deliberately simple: every
record occupies :data:`RECORD_BYTES` bytes regardless of the Python-level
representation, and every pointer (block id or in-block slot reference)
occupies :data:`POINTER_BYTES` bytes.

Access methods use these constants to declare how many *logical* bytes a
block payload occupies, which is what the device's space accounting (and
hence the memory overhead, MO) is based on.
"""

from __future__ import annotations

#: Size of a key in bytes (a 64-bit integer).
KEY_BYTES = 8

#: Size of a value payload in bytes (a 64-bit integer).
VALUE_BYTES = 8

#: Size of one full record (key + value).
RECORD_BYTES = KEY_BYTES + VALUE_BYTES

#: Size of a block pointer / child reference in bytes.
POINTER_BYTES = 8

#: Default block size used across the library (bytes).
DEFAULT_BLOCK_BYTES = 4096


def records_per_block(block_bytes: int) -> int:
    """Number of full records that fit in one block of ``block_bytes``.

    >>> records_per_block(4096)
    256
    """
    if block_bytes < RECORD_BYTES:
        raise ValueError(
            f"block of {block_bytes} bytes cannot hold a {RECORD_BYTES}-byte record"
        )
    return block_bytes // RECORD_BYTES


def keys_per_block(block_bytes: int) -> int:
    """Number of bare keys (no values) that fit in one block."""
    if block_bytes < KEY_BYTES:
        raise ValueError(f"block of {block_bytes} bytes cannot hold a {KEY_BYTES}-byte key")
    return block_bytes // KEY_BYTES


def pointers_per_block(block_bytes: int) -> int:
    """Number of bare pointers that fit in one block."""
    return block_bytes // POINTER_BYTES


def fanout_for_block(block_bytes: int) -> int:
    """Maximum fanout of an internal tree node stored in one block.

    An internal node with fanout ``f`` stores ``f - 1`` separator keys and
    ``f`` child pointers, so ``f`` is the largest integer with
    ``(f - 1) * KEY_BYTES + f * POINTER_BYTES <= block_bytes``.
    """
    fanout = (block_bytes + KEY_BYTES) // (KEY_BYTES + POINTER_BYTES)
    return max(2, fanout)


def blocks_for_records(n_records: int, block_bytes: int) -> int:
    """Number of blocks needed to store ``n_records`` densely packed."""
    per_block = records_per_block(block_bytes)
    return (n_records + per_block - 1) // per_block if n_records else 0


def record_bytes(n_records: int) -> int:
    """Logical size of ``n_records`` records in bytes."""
    return n_records * RECORD_BYTES
