"""Block objects for the simulated device.

A block is the unit of I/O and of space allocation.  Its ``payload`` is an
arbitrary Python object chosen by the owning access method (a list of
records, a node struct, a bitmap chunk, ...); what matters for RUM
accounting is that *reading or writing a block always costs one block of
I/O* and that *an allocated block always occupies one block of space*,
exactly as on a real device with a minimum access granularity (the paper's
"fundamental assumption that data has a minimum access granularity").
"""

from __future__ import annotations

from typing import Any

#: Block identifiers are plain integers handed out by the device.
BlockId = int


class Block:
    """One allocated block on a :class:`~repro.storage.device.SimulatedDevice`.

    A ``__slots__`` class rather than a dataclass: devices hold one
    instance per allocated block and touch its attributes on every
    simulated I/O, so the slot layout (no per-instance ``__dict__``)
    measurably shrinks and speeds the simulator hot path
    (``tools/bench_hotpath.py`` records the effect).

    Attributes
    ----------
    block_id:
        Device-assigned identifier.
    payload:
        The structure-specific contents.  ``None`` until first written.
    used_bytes:
        Logical bytes in use inside the block, declared by the owner on
        each write.  Used for fill-factor statistics; space accounting
        always charges the full block.
    kind:
        Free-form tag ("leaf", "run", "bucket", ...) used by statistics
        and debugging output.
    """

    __slots__ = ("block_id", "payload", "used_bytes", "kind")

    def __init__(
        self,
        block_id: BlockId,
        payload: Any = None,
        used_bytes: int = 0,
        kind: str = "data",
    ) -> None:
        self.block_id = block_id
        self.payload = payload
        self.used_bytes = used_bytes
        self.kind = kind

    def fill_factor(self, block_bytes: int) -> float:
        """Fraction of the block's capacity that is logically in use."""
        if block_bytes <= 0:
            return 0.0
        return min(1.0, self.used_bytes / block_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block(block_id={self.block_id!r}, payload={self.payload!r}, "
            f"used_bytes={self.used_bytes!r}, kind={self.kind!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Block):
            return NotImplemented
        return (
            self.block_id == other.block_id
            and self.payload == other.payload
            and self.used_bytes == other.used_bytes
            and self.kind == other.kind
        )
