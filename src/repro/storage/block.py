"""Block objects for the simulated device.

A block is the unit of I/O and of space allocation.  Its ``payload`` is an
arbitrary Python object chosen by the owning access method (a list of
records, a node struct, a bitmap chunk, ...); what matters for RUM
accounting is that *reading or writing a block always costs one block of
I/O* and that *an allocated block always occupies one block of space*,
exactly as on a real device with a minimum access granularity (the paper's
"fundamental assumption that data has a minimum access granularity").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Block identifiers are plain integers handed out by the device.
BlockId = int


@dataclass
class Block:
    """One allocated block on a :class:`~repro.storage.device.SimulatedDevice`.

    Attributes
    ----------
    block_id:
        Device-assigned identifier.
    payload:
        The structure-specific contents.  ``None`` until first written.
    used_bytes:
        Logical bytes in use inside the block, declared by the owner on
        each write.  Used for fill-factor statistics; space accounting
        always charges the full block.
    kind:
        Free-form tag ("leaf", "run", "bucket", ...) used by statistics
        and debugging output.
    """

    block_id: BlockId
    payload: Any = None
    used_bytes: int = 0
    kind: str = "data"
    writes: int = field(default=0, repr=False)
    reads: int = field(default=0, repr=False)

    def fill_factor(self, block_bytes: int) -> float:
        """Fraction of the block's capacity that is logically in use."""
        if block_bytes <= 0:
            return 0.0
        return min(1.0, self.used_bytes / block_bytes)
