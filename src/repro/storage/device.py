"""The instrumented block device.

:class:`SimulatedDevice` is the substrate under every access method in
this library.  It stores blocks in memory and counts every operation:

* ``reads`` / ``read_bytes`` — block reads and the bytes they move,
* ``writes`` / ``write_bytes`` — block writes and the bytes they move,
* ``allocations`` / ``frees`` — space churn,
* simulated time, charged through a :class:`CostModel` that distinguishes
  sequential from random access (the classic disk/flash asymmetry the
  paper discusses in Section 4).

The paper defines the three RUM overheads as ratios of data accessed,
written and stored (Section 2).  Counting simulated block traffic measures
exactly those quantities, free of the noise a real device would add —
this is the substitution recorded in DESIGN.md for the paper's hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, Optional

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.storage.block import Block, BlockId
from repro.storage.layout import DEFAULT_BLOCK_BYTES


@dataclass(frozen=True)
class CostModel:
    """Simulated access costs, in abstract time units per block.

    The defaults model a flash-like device: random reads cost the same as
    sequential reads, but writes are ~10x more expensive than reads.
    Presets for other points in the hierarchy are provided as
    classmethods; the hierarchy simulator (Figure 2) composes them.
    """

    sequential_read: float = 1.0
    random_read: float = 1.0
    sequential_write: float = 10.0
    random_write: float = 10.0

    @classmethod
    def dram(cls) -> "CostModel":
        """Symmetric, cheap accesses: main memory."""
        return cls(0.01, 0.01, 0.01, 0.01)

    @classmethod
    def flash(cls) -> "CostModel":
        """Read/write asymmetry, no seek penalty: an SSD."""
        return cls(1.0, 1.0, 10.0, 10.0)

    @classmethod
    def disk(cls) -> "CostModel":
        """Heavy penalty for random access: a rotational disk."""
        return cls(1.0, 100.0, 1.0, 100.0)

    @classmethod
    def shingled_disk(cls) -> "CostModel":
        """Rotational seek costs plus a write penalty: an SMR disk."""
        return cls(1.0, 100.0, 10.0, 1000.0)


@dataclass
class DeviceCounters:
    """Monotonic operation counters maintained by a device."""

    reads: int = 0
    writes: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    allocations: int = 0
    frees: int = 0
    simulated_time: float = 0.0

    def copy(self) -> "DeviceCounters":
        """An independent snapshot of the current counter values."""
        return replace(self)

    def delta(self, earlier: "DeviceCounters") -> "IOStats":
        """Difference between this snapshot and an ``earlier`` one."""
        return IOStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            read_bytes=self.read_bytes - earlier.read_bytes,
            write_bytes=self.write_bytes - earlier.write_bytes,
            allocations=self.allocations - earlier.allocations,
            frees=self.frees - earlier.frees,
            simulated_time=self.simulated_time - earlier.simulated_time,
        )


@dataclass(frozen=True)
class IOStats:
    """Immutable delta of device counters over some window of operations."""

    reads: int = 0
    writes: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    allocations: int = 0
    frees: int = 0
    simulated_time: float = 0.0

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            read_bytes=self.read_bytes + other.read_bytes,
            write_bytes=self.write_bytes + other.write_bytes,
            allocations=self.allocations + other.allocations,
            frees=self.frees + other.frees,
            simulated_time=self.simulated_time + other.simulated_time,
        )


class SimulatedDevice:
    """An in-memory block store with full I/O instrumentation.

    Parameters
    ----------
    block_bytes:
        Size of every block, in bytes.  The unit of both I/O accounting
        and space accounting.
    cost_model:
        Latency model used to accrue ``simulated_time``.
    name:
        Label used in reports ("flash", "disk", "L2", ...).

    Notes
    -----
    Sequential vs random classification: an access is *sequential* when it
    targets the block id immediately following the previously accessed
    block id, mirroring how a real device amortizes seeks.
    """

    def __init__(
        self,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
        cost_model: Optional[CostModel] = None,
        name: str = "device",
    ) -> None:
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        self.block_bytes = block_bytes
        self.cost_model = cost_model or CostModel.flash()
        self.name = name
        self.counters = DeviceCounters()
        self.tracer: Tracer = NULL_TRACER
        self._blocks: Dict[BlockId, Block] = {}
        self._next_id: BlockId = 0
        self._last_read_id: Optional[BlockId] = None
        self._last_write_id: Optional[BlockId] = None

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer; every subsequent operation emits an event.

        Pass :data:`~repro.obs.tracer.NULL_TRACER` to disable again.
        """
        self.tracer = tracer

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, kind: str = "data") -> BlockId:
        """Allocate a fresh, empty block and return its id."""
        block_id = self._next_id
        self._next_id += 1
        self._blocks[block_id] = Block(block_id=block_id, kind=kind)
        self.counters.allocations += 1
        if self.tracer.enabled:
            self.tracer.emit(source=self.name, op="alloc", block_id=block_id, kind=kind)
        return block_id

    def free(self, block_id: BlockId) -> None:
        """Release a block.  Freed space no longer counts toward MO."""
        block = self._blocks.get(block_id)
        if block is None:
            raise KeyError(f"free of unallocated block {block_id}")
        del self._blocks[block_id]
        self.counters.frees += 1
        if self.tracer.enabled:
            self.tracer.emit(
                source=self.name, op="free", block_id=block_id, kind=block.kind
            )

    def is_allocated(self, block_id: BlockId) -> bool:
        """Whether ``block_id`` is currently allocated."""
        return block_id in self._blocks

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def read(self, block_id: BlockId) -> object:
        """Read a block's payload, charging one block of read I/O."""
        block = self._blocks.get(block_id)
        if block is None:
            raise KeyError(f"read of unallocated block {block_id}")
        sequential = (
            self._last_read_id is not None and block_id == self._last_read_id + 1
        )
        self._last_read_id = block_id
        block.reads += 1
        self.counters.reads += 1
        self.counters.read_bytes += self.block_bytes
        cost = (
            self.cost_model.sequential_read if sequential else self.cost_model.random_read
        )
        self.counters.simulated_time += cost
        if self.tracer.enabled:
            self.tracer.emit(
                source=self.name,
                op="read",
                block_id=block_id,
                kind=block.kind,
                sequential=sequential,
                cost=cost,
                nbytes=self.block_bytes,
            )
        return block.payload

    def write(self, block_id: BlockId, payload: object, used_bytes: int = 0) -> None:
        """Write a block's payload, charging one block of write I/O.

        ``used_bytes`` declares the logical occupancy for fill-factor
        statistics; the full block is charged regardless (minimum access
        granularity).
        """
        block = self._blocks.get(block_id)
        if block is None:
            raise KeyError(f"write of unallocated block {block_id}")
        if used_bytes < 0 or used_bytes > self.block_bytes:
            raise ValueError(
                f"used_bytes {used_bytes} outside block capacity {self.block_bytes}"
            )
        sequential = (
            self._last_write_id is not None and block_id == self._last_write_id + 1
        )
        self._last_write_id = block_id
        block.payload = payload
        block.used_bytes = used_bytes
        block.writes += 1
        self.counters.writes += 1
        self.counters.write_bytes += self.block_bytes
        cost = (
            self.cost_model.sequential_write
            if sequential
            else self.cost_model.random_write
        )
        self.counters.simulated_time += cost
        if self.tracer.enabled:
            self.tracer.emit(
                source=self.name,
                op="write",
                block_id=block_id,
                kind=block.kind,
                sequential=sequential,
                cost=cost,
                nbytes=self.block_bytes,
            )
        return None

    def peek(self, block_id: BlockId) -> object:
        """Read a payload *without* charging I/O.

        Only for assertions and debugging; access methods must never use
        this on their hot paths.
        """
        block = self._blocks.get(block_id)
        if block is None:
            raise KeyError(f"peek of unallocated block {block_id}")
        return block.payload

    def kind_of(self, block_id: BlockId) -> str:
        """A block's allocation ``kind`` tag, without charging I/O."""
        block = self._blocks.get(block_id)
        if block is None:
            raise KeyError(f"kind_of unallocated block {block_id}")
        return block.kind

    def used_bytes_of(self, block_id: BlockId) -> int:
        """A block's declared logical occupancy, without charging I/O."""
        block = self._blocks.get(block_id)
        if block is None:
            raise KeyError(f"used_bytes_of unallocated block {block_id}")
        return block.used_bytes

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    @property
    def allocated_blocks(self) -> int:
        """Number of currently allocated blocks."""
        return len(self._blocks)

    @property
    def allocated_bytes(self) -> int:
        """Total space currently occupied, in bytes (blocks x block size)."""
        return len(self._blocks) * self.block_bytes

    def used_bytes(self) -> int:
        """Sum of declared logical occupancy across all blocks."""
        return sum(block.used_bytes for block in self._blocks.values())

    def fill_factor(self) -> float:
        """Average logical occupancy across allocated blocks (0..1)."""
        if not self._blocks:
            return 0.0
        return self.used_bytes() / self.allocated_bytes

    def blocks_by_kind(self) -> Dict[str, int]:
        """Histogram of allocated block counts keyed by their ``kind`` tag."""
        histogram: Dict[str, int] = {}
        for block in self._blocks.values():
            histogram[block.kind] = histogram.get(block.kind, 0) + 1
        return histogram

    def iter_block_ids(self) -> Iterator[BlockId]:
        """Iterate over currently allocated block ids (no I/O charged)."""
        return iter(list(self._blocks.keys()))

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> DeviceCounters:
        """Capture the current counter values (for later ``delta``)."""
        return self.counters.copy()

    def stats_since(self, snapshot: DeviceCounters) -> IOStats:
        """I/O performed since ``snapshot`` was taken."""
        return self.counters.delta(snapshot)

    def reset_counters(self) -> None:
        """Zero the operation counters (allocation state is untouched)."""
        self.counters = DeviceCounters()
        self._last_read_id = None
        self._last_write_id = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedDevice(name={self.name!r}, block_bytes={self.block_bytes}, "
            f"blocks={self.allocated_blocks}, reads={self.counters.reads}, "
            f"writes={self.counters.writes})"
        )
