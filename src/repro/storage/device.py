"""The instrumented block device.

:class:`SimulatedDevice` is the substrate under every access method in
this library.  It stores blocks in memory and counts every operation:

* ``reads`` / ``read_bytes`` — block reads and the bytes they move,
* ``writes`` / ``write_bytes`` — block writes and the bytes they move,
* ``allocations`` / ``frees`` — space churn,
* simulated time, charged through a :class:`CostModel` that distinguishes
  sequential from random access (the classic disk/flash asymmetry the
  paper discusses in Section 4).

The paper defines the three RUM overheads as ratios of data accessed,
written and stored (Section 2).  Counting simulated block traffic measures
exactly those quantities, free of the noise a real device would add —
this is the substitution recorded in DESIGN.md for the paper's hardware.

``read``/``write`` are the innermost loop of every experiment (~20 access
methods funnel every probe through them), so the device is written for
speed: ``__slots__`` layouts, counters kept as plain integer attributes
on the device (``counters`` materializes the same :class:`DeviceCounters`
view on demand), per-cost-model floats cached at assignment, a
sentinel-based sequential check and an O(1) running occupancy total.
``tools/bench_hotpath.py`` measures the effect against a replica of the
pre-optimization hot path.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.storage.block import Block, BlockId
from repro.storage.layout import DEFAULT_BLOCK_BYTES

try:  # optional accelerator for large write batches; pure-python otherwise
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is present in CI images
    _np = None

#: Below this batch size the per-item python loop beats the vectorized
#: write path (two array conversions dominate); above it numpy wins.
_VECTOR_MIN_BATCH = 512

#: Sentinel for the "block id that would count as sequential" trackers:
#: no allocated block ever has a negative id, so -1 never matches and a
#: fresh (or reset) device classifies its first access as random without
#: a separate ``is None`` test on the hot path.
_NO_SEQUENTIAL: BlockId = -1


@dataclass(frozen=True)
class CostModel:
    """Simulated access costs, in abstract time units per block.

    The defaults model a flash-like device: random reads cost the same as
    sequential reads, but writes are ~10x more expensive than reads.
    Presets for other points in the hierarchy are provided as
    classmethods; the hierarchy simulator (Figure 2) composes them.
    """

    sequential_read: float = 1.0
    random_read: float = 1.0
    sequential_write: float = 10.0
    random_write: float = 10.0

    @classmethod
    def dram(cls) -> "CostModel":
        """Symmetric, cheap accesses: main memory."""
        return cls(0.01, 0.01, 0.01, 0.01)

    @classmethod
    def flash(cls) -> "CostModel":
        """Read/write asymmetry, no seek penalty: an SSD."""
        return cls(1.0, 1.0, 10.0, 10.0)

    @classmethod
    def disk(cls) -> "CostModel":
        """Heavy penalty for random access: a rotational disk."""
        return cls(1.0, 100.0, 1.0, 100.0)

    @classmethod
    def shingled_disk(cls) -> "CostModel":
        """Rotational seek costs plus a write penalty: an SMR disk."""
        return cls(1.0, 100.0, 10.0, 1000.0)


class DeviceCounters:
    """Monotonic operation counters observed on a device.

    A plain ``__slots__`` class, not a dataclass — it is constructed for
    every :meth:`SimulatedDevice.snapshot`, which measured workloads take
    around each operation.  The interface (field names, :meth:`copy`,
    :meth:`delta`, equality) matches the previous dataclass; the *live*
    counts now live as integer attributes directly on the device, and
    ``device.counters`` materializes this view of them.
    """

    __slots__ = (
        "reads",
        "writes",
        "read_bytes",
        "write_bytes",
        "allocations",
        "frees",
        "simulated_time",
    )

    #: Field names, in :meth:`as_tuple` order.
    FIELDS = __slots__

    def __init__(
        self,
        reads: int = 0,
        writes: int = 0,
        read_bytes: int = 0,
        write_bytes: int = 0,
        allocations: int = 0,
        frees: int = 0,
        simulated_time: float = 0.0,
    ) -> None:
        self.reads = reads
        self.writes = writes
        self.read_bytes = read_bytes
        self.write_bytes = write_bytes
        self.allocations = allocations
        self.frees = frees
        self.simulated_time = simulated_time

    def as_tuple(self) -> Tuple[float, ...]:
        """Field values in :data:`FIELDS` order (monotonicity checks)."""
        return (
            self.reads,
            self.writes,
            self.read_bytes,
            self.write_bytes,
            self.allocations,
            self.frees,
            self.simulated_time,
        )

    def copy(self) -> "DeviceCounters":
        """An independent snapshot of the current counter values."""
        return DeviceCounters(*self.as_tuple())

    def delta(self, earlier: "DeviceCounters") -> "IOStats":
        """Difference between this snapshot and an ``earlier`` one."""
        return IOStats(
            reads=self.reads - earlier.reads,
            writes=self.writes - earlier.writes,
            read_bytes=self.read_bytes - earlier.read_bytes,
            write_bytes=self.write_bytes - earlier.write_bytes,
            allocations=self.allocations - earlier.allocations,
            frees=self.frees - earlier.frees,
            simulated_time=self.simulated_time - earlier.simulated_time,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DeviceCounters):
            return NotImplemented
        return self.as_tuple() == other.as_tuple()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(
            f"{name}={value!r}" for name, value in zip(self.FIELDS, self.as_tuple())
        )
        return f"DeviceCounters({fields})"


@dataclass(frozen=True)
class IOStats:
    """Immutable delta of device counters over some window of operations."""

    reads: int = 0
    writes: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    allocations: int = 0
    frees: int = 0
    simulated_time: float = 0.0

    def __add__(self, other: "IOStats") -> "IOStats":
        return IOStats(
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            read_bytes=self.read_bytes + other.read_bytes,
            write_bytes=self.write_bytes + other.write_bytes,
            allocations=self.allocations + other.allocations,
            frees=self.frees + other.frees,
            simulated_time=self.simulated_time + other.simulated_time,
        )


class SimulatedDevice:
    """An in-memory block store with full I/O instrumentation.

    Parameters
    ----------
    block_bytes:
        Size of every block, in bytes.  The unit of both I/O accounting
        and space accounting.
    cost_model:
        Latency model used to accrue ``simulated_time``.
    name:
        Label used in reports ("flash", "disk", "L2", ...).

    Notes
    -----
    Sequential vs random classification: an access is *sequential* when it
    targets the block id immediately following the previously accessed
    block id, mirroring how a real device amortizes seeks.

    The hot path maintains four plain integer attributes — sequential
    and random access counts for reads and for writes — and everything
    else (totals, byte counts, simulated time) is derived from them on
    demand; :attr:`counters` materializes the :class:`DeviceCounters`
    view, so the public accounting interface is unchanged.
    """

    __slots__ = (
        "block_bytes",
        "name",
        "tracer",
        "_trace_enabled",
        "_blocks",
        "_next_id",
        "_used_total",
        "_seq_read_id",
        "_seq_write_id",
        "_cost_model",
        "_cost_seq_read",
        "_cost_rand_read",
        "_cost_seq_write",
        "_cost_rand_write",
        "_seq_reads",
        "_rand_reads",
        "_seq_writes",
        "_rand_writes",
        "_allocations",
        "_frees",
        "_time_base",
    )

    def __init__(
        self,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
        cost_model: Optional[CostModel] = None,
        name: str = "device",
    ) -> None:
        if block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        self.block_bytes = block_bytes
        self.cost_model = cost_model or CostModel.flash()
        self.name = name
        self.tracer = NULL_TRACER
        self._trace_enabled = False
        self._blocks: Dict[BlockId, Block] = {}
        self._next_id: BlockId = 0
        self._used_total = 0
        self._seq_read_id = _NO_SEQUENTIAL
        self._seq_write_id = _NO_SEQUENTIAL
        self._seq_reads = 0
        self._rand_reads = 0
        self._seq_writes = 0
        self._rand_writes = 0
        self._allocations = 0
        self._frees = 0
        self._time_base = 0.0

    @property
    def cost_model(self) -> CostModel:
        """The latency model.  Assigning a new one refreshes the cached
        per-operation costs the hot path reads."""
        return self._cost_model

    @cost_model.setter
    def cost_model(self, model: CostModel) -> None:
        old = getattr(self, "_cost_model", None)
        if old is not None:
            # Simulated time is derived as base + per-category counts x
            # current costs; re-base so time already accrued keeps its
            # old-cost valuation and only future accesses pay new costs.
            self._time_base += (
                self._seq_reads * (old.sequential_read - model.sequential_read)
                + self._rand_reads * (old.random_read - model.random_read)
                + self._seq_writes * (old.sequential_write - model.sequential_write)
                + self._rand_writes * (old.random_write - model.random_write)
            )
        self._cost_model = model
        self._cost_seq_read = model.sequential_read
        self._cost_rand_read = model.random_read
        self._cost_seq_write = model.sequential_write
        self._cost_rand_write = model.random_write

    @property
    def counters(self) -> DeviceCounters:
        """Current counter values as a :class:`DeviceCounters` snapshot.

        The hot path maintains only four per-category access counts
        (sequential/random x read/write); everything else is derived
        here.  ``read_bytes == reads * block_bytes`` because every access
        moves exactly one block, and ``simulated_time`` is the counts
        priced at the current cost model (plus the re-basing term kept by
        the ``cost_model`` setter).
        """
        seq_reads = self._seq_reads
        rand_reads = self._rand_reads
        seq_writes = self._seq_writes
        rand_writes = self._rand_writes
        reads = seq_reads + rand_reads
        writes = seq_writes + rand_writes
        block_bytes = self.block_bytes
        return DeviceCounters(
            reads,
            writes,
            reads * block_bytes,
            writes * block_bytes,
            self._allocations,
            self._frees,
            self._time_base
            + seq_reads * self._cost_seq_read
            + rand_reads * self._cost_rand_read
            + seq_writes * self._cost_seq_write
            + rand_writes * self._cost_rand_write,
        )

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer; every subsequent operation emits an event.

        Pass :data:`~repro.obs.tracer.NULL_TRACER` to disable again.
        """
        self.tracer = tracer
        self._trace_enabled = tracer.enabled

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, kind: str = "data") -> BlockId:
        """Allocate a fresh, empty block and return its id."""
        block_id = self._next_id
        self._next_id = block_id + 1
        self._blocks[block_id] = Block(block_id=block_id, kind=kind)
        self._allocations += 1
        if self._trace_enabled:
            self.tracer.emit(source=self.name, op="alloc", block_id=block_id, kind=kind)
        return block_id

    def free(self, block_id: BlockId) -> None:
        """Release a block.  Freed space no longer counts toward MO."""
        block = self._blocks.get(block_id)
        if block is None:
            raise KeyError(f"free of unallocated block {block_id}")
        del self._blocks[block_id]
        self._used_total -= block.used_bytes
        self._frees += 1
        if self._trace_enabled:
            self.tracer.emit(
                source=self.name, op="free", block_id=block_id, kind=block.kind
            )

    def is_allocated(self, block_id: BlockId) -> bool:
        """Whether ``block_id`` is currently allocated."""
        return block_id in self._blocks

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def read(self, block_id: BlockId) -> object:
        """Read a block's payload, charging one block of read I/O."""
        try:
            block = self._blocks[block_id]
        except KeyError:
            raise KeyError(f"read of unallocated block {block_id}") from None
        sequential = block_id == self._seq_read_id
        if sequential:
            self._seq_reads += 1
        else:
            self._rand_reads += 1
        self._seq_read_id = block_id + 1
        if self._trace_enabled:
            self.tracer.emit(
                source=self.name,
                op="read",
                block_id=block_id,
                kind=block.kind,
                sequential=sequential,
                cost=self._cost_seq_read if sequential else self._cost_rand_read,
                nbytes=self.block_bytes,
            )
        return block.payload

    def write(self, block_id: BlockId, payload: object, used_bytes: int = 0) -> None:
        """Write a block's payload, charging one block of write I/O.

        ``used_bytes`` declares the logical occupancy for fill-factor
        statistics; the full block is charged regardless (minimum access
        granularity).
        """
        try:
            block = self._blocks[block_id]
        except KeyError:
            raise KeyError(f"write of unallocated block {block_id}") from None
        if not 0 <= used_bytes <= self.block_bytes:
            raise ValueError(
                f"used_bytes {used_bytes} outside block capacity {self.block_bytes}"
            )
        sequential = block_id == self._seq_write_id
        if sequential:
            self._seq_writes += 1
        else:
            self._rand_writes += 1
        self._seq_write_id = block_id + 1
        old_used = block.used_bytes
        if used_bytes != old_used:
            self._used_total += used_bytes - old_used
            block.used_bytes = used_bytes
        block.payload = payload
        if self._trace_enabled:
            self.tracer.emit(
                source=self.name,
                op="write",
                block_id=block_id,
                kind=block.kind,
                sequential=sequential,
                cost=self._cost_seq_write if sequential else self._cost_rand_write,
                nbytes=self.block_bytes,
            )

    def read_many(self, block_ids: Iterable[BlockId]) -> List[object]:
        """Read a sequence of blocks, committing bookkeeping once.

        Byte-identical to calling :meth:`read` per id — same sequential /
        random classification (each access is compared against the id
        following its predecessor), same counter totals, same trace
        events, and on a read of an unallocated block the same
        ``KeyError`` with every *preceding* read already counted.  The
        batched path exists purely to amortize python dispatch: counters
        are locals inside the loop and committed once at the end.
        """
        if self._trace_enabled:
            # The tracer observes individual accesses; delegate so the
            # event stream is identical to the per-op path.
            read = self.read
            return [read(block_id) for block_id in block_ids]
        blocks = self._blocks
        expected = self._seq_read_id
        seq = 0
        out: List[object] = []
        append = out.append
        block_id = _NO_SEQUENTIAL
        try:
            for block_id in block_ids:
                block = blocks[block_id]
                if block_id == expected:
                    seq += 1
                expected = block_id + 1
                append(block.payload)
        except KeyError:
            raise KeyError(f"read of unallocated block {block_id}") from None
        finally:
            # Runs on both exits: the failed access raised before
            # touching the locals, so this commits exactly the
            # successfully-read prefix.
            self._seq_reads += seq
            self._rand_reads += len(out) - seq
            self._seq_read_id = expected
        return out

    def write_many(
        self,
        block_ids: Sequence[BlockId],
        payloads: Sequence[object],
        used_bytes: Sequence[int],
    ) -> None:
        """Write a sequence of blocks, committing bookkeeping once.

        Byte-identical to calling :meth:`write` per position — same
        sequential / random classification, same occupancy total, same
        trace events, and on an invalid position (unallocated block,
        out-of-range ``used_bytes``) the same exception with every
        preceding write already applied and counted.

        Large batches take a vectorized path (when numpy is available)
        that classifies sequentiality in C and applies only each block's
        *final* state — legitimate because no read can interleave within
        a batch, so intermediate payloads are unobservable and the
        occupancy deltas telescope.  The path only engages after
        validating the whole batch; anything suspect falls back to the
        loop below, which is the semantics reference.
        """
        n = len(block_ids)
        if len(payloads) != n or len(used_bytes) != n:
            raise ValueError(
                "write_many requires equal-length id/payload/used sequences"
            )
        if n == 0:
            return
        if self._trace_enabled:
            write = self.write
            for block_id, payload, used in zip(block_ids, payloads, used_bytes):
                write(block_id, payload, used)
            return
        if (
            _np is not None
            and n >= _VECTOR_MIN_BATCH
            and self._write_many_vectorized(block_ids, payloads, used_bytes, n)
        ):
            return
        blocks = self._blocks
        capacity = self.block_bytes
        expected = self._seq_write_id
        seq = 0
        done = 0
        delta = 0
        try:
            for block_id, payload, used in zip(block_ids, payloads, used_bytes):
                try:
                    block = blocks[block_id]
                except KeyError:
                    raise KeyError(
                        f"write of unallocated block {block_id}"
                    ) from None
                if not 0 <= used <= capacity:
                    raise ValueError(
                        f"used_bytes {used} outside block capacity {capacity}"
                    )
                if block_id == expected:
                    seq += 1
                expected = block_id + 1
                delta += used - block.used_bytes
                block.used_bytes = used
                block.payload = payload
                done += 1
        finally:
            # Commits the successfully-written prefix on error, the whole
            # batch on success.
            self._seq_writes += seq
            self._rand_writes += done - seq
            self._seq_write_id = expected
            self._used_total += delta

    def _write_many_vectorized(
        self,
        block_ids: Sequence[BlockId],
        payloads: Sequence[object],
        used_bytes: Sequence[int],
        n: int,
    ) -> bool:
        """Validate-then-commit fast path for large write batches.

        Returns ``False`` without touching any state when the batch is
        not provably valid (so the caller's reference loop replays it and
        raises at the exact failing position); returns ``True`` after
        committing the whole batch.  ``BlockId`` is ``int`` by contract —
        the int64 conversion here is exact for every in-contract id.
        """
        try:
            ids = _np.fromiter(block_ids, _np.int64, n)
            used = _np.fromiter(used_bytes, _np.float64, n)
        except (TypeError, ValueError, OverflowError):
            return False
        if float(used.min()) < 0 or float(used.max()) > self.block_bytes:
            return False
        if int(ids.min()) < 0:
            return False
        blocks = self._blocks
        high = int(ids.max())
        if high < max(4 * n, 1 << 16):
            # Dense ids: last-occurrence per block via fancy assignment
            # (later positions overwrite earlier ones).
            lastpos = _np.full(high + 1, -1, _np.int64)
            lastpos[ids] = _np.arange(n)
            touched = _np.flatnonzero(lastpos >= 0)
            distinct = touched.tolist()
            final = list(zip(distinct, lastpos[touched].tolist()))
        else:
            # Sparse ids: a dict pass keyed by the original ids.
            lastidx = dict(zip(block_ids, range(n)))
            distinct = list(lastidx)
            final = list(lastidx.items())
        if not all(map(blocks.__contains__, distinct)):
            return False
        delta = 0
        for block_id, position in final:
            block = blocks[block_id]
            value = used_bytes[position]
            delta += value - block.used_bytes
            block.used_bytes = value
            block.payload = payloads[position]
        seq = int((ids[1:] == ids[:-1] + 1).sum())
        if block_ids[0] == self._seq_write_id:
            seq += 1
        self._seq_writes += seq
        self._rand_writes += n - seq
        self._seq_write_id = block_ids[-1] + 1
        self._used_total += delta
        return True

    def peek(self, block_id: BlockId) -> object:
        """Read a payload *without* charging I/O.

        Only for assertions and debugging; access methods must never use
        this on their hot paths.
        """
        block = self._blocks.get(block_id)
        if block is None:
            raise KeyError(f"peek of unallocated block {block_id}")
        return block.payload

    def kind_of(self, block_id: BlockId) -> str:
        """A block's allocation ``kind`` tag, without charging I/O."""
        block = self._blocks.get(block_id)
        if block is None:
            raise KeyError(f"kind_of unallocated block {block_id}")
        return block.kind

    def used_bytes_of(self, block_id: BlockId) -> int:
        """A block's declared logical occupancy, without charging I/O."""
        block = self._blocks.get(block_id)
        if block is None:
            raise KeyError(f"used_bytes_of unallocated block {block_id}")
        return block.used_bytes

    def sync_through(self, block_ids: Iterable[BlockId]) -> int:
        """No-op on a bare device: every completed write is durable."""
        return 0

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    @property
    def allocated_blocks(self) -> int:
        """Number of currently allocated blocks."""
        return len(self._blocks)

    @property
    def allocated_bytes(self) -> int:
        """Total space currently occupied, in bytes (blocks x block size)."""
        return len(self._blocks) * self.block_bytes

    def used_bytes(self) -> int:
        """Sum of declared logical occupancy across all blocks.

        O(1): a running total maintained on every write and free, rather
        than a sum over the block table — space sampling happens inside
        measured workloads (``RUMAccumulator.sample_space``), so it must
        not scale with the dataset.
        """
        return self._used_total

    def fill_factor(self) -> float:
        """Average logical occupancy across allocated blocks (0..1)."""
        if not self._blocks:
            return 0.0
        return self._used_total / self.allocated_bytes

    def blocks_by_kind(self) -> Dict[str, int]:
        """Histogram of allocated block counts keyed by their ``kind`` tag."""
        return dict(Counter(block.kind for block in self._blocks.values()))

    def iter_block_ids(self) -> Iterator[BlockId]:
        """Iterate over currently allocated block ids (no I/O charged)."""
        return iter(list(self._blocks.keys()))

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> DeviceCounters:
        """Capture the current counter values (for later ``delta``)."""
        return self.counters

    def stats_since(self, snapshot: DeviceCounters) -> IOStats:
        """I/O performed since ``snapshot`` was taken."""
        return self.counters.delta(snapshot)

    def reset_counters(self) -> None:
        """Zero the operation counters (allocation state is untouched)."""
        self._seq_reads = 0
        self._rand_reads = 0
        self._seq_writes = 0
        self._rand_writes = 0
        self._allocations = 0
        self._frees = 0
        self._time_base = 0.0
        self._seq_read_id = _NO_SEQUENTIAL
        self._seq_write_id = _NO_SEQUENTIAL

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulatedDevice(name={self.name!r}, block_bytes={self.block_bytes}, "
            f"blocks={self.allocated_blocks}, "
            f"reads={self._seq_reads + self._rand_reads}, "
            f"writes={self._seq_writes + self._rand_writes})"
        )
