"""A device wrapper that interposes a buffer pool.

:class:`CachedDevice` presents the :class:`SimulatedDevice` interface
while serving reads and writes through a
:class:`~repro.storage.pager.BufferPool` over a backing device.  Any
access method can be constructed on top of it unchanged, which is how
the Figure-2 benchmark runs a *real structure* (not raw block traffic)
against a memory hierarchy: the method sees cheap cached accesses, the
backing device's counters show the traffic that actually reached the
slow level, and the pool's footprint is the memory overhead paid for
the difference.
"""

from __future__ import annotations

from typing import Optional

from repro.storage.block import BlockId
from repro.storage.device import CostModel, DeviceCounters, IOStats, SimulatedDevice
from repro.storage.pager import BufferPool, EvictionPolicy


class CachedDevice(SimulatedDevice):
    """A buffer pool masquerading as a device.

    Parameters
    ----------
    backing:
        The slow device that owns the blocks.
    capacity_blocks:
        Pool capacity at the fast level; 0 degenerates to pass-through.
    policy:
        Eviction policy (default LRU).

    Notes
    -----
    * ``counters`` on *this* object record the traffic the access method
      issued (the logical I/O); ``backing.counters`` record what reached
      the slow level (the physical I/O).
    * Space accounting (``allocated_bytes`` etc.) delegates to the
      backing device; :meth:`cache_bytes` reports the fast level's
      footprint.
    """

    def __init__(
        self,
        backing: SimulatedDevice,
        capacity_blocks: int,
        policy: Optional[EvictionPolicy] = None,
    ) -> None:
        super().__init__(
            block_bytes=backing.block_bytes,
            cost_model=CostModel.dram(),
            name=f"cached({backing.name})",
        )
        self.backing = backing
        self.pool = BufferPool(backing, capacity_blocks, policy)

    # ------------------------------------------------------------------
    # Allocation delegates to the backing device.
    # ------------------------------------------------------------------
    def allocate(self, kind: str = "data") -> BlockId:
        self.counters.allocations += 1
        return self.backing.allocate(kind)

    def free(self, block_id: BlockId) -> None:
        self.counters.frees += 1
        self.pool.invalidate(block_id)
        self.backing.free(block_id)

    def is_allocated(self, block_id: BlockId) -> bool:
        """Whether ``block_id`` is live on the backing device."""
        return self.backing.is_allocated(block_id)

    # ------------------------------------------------------------------
    # I/O goes through the pool.
    # ------------------------------------------------------------------
    def read(self, block_id: BlockId) -> object:
        self.counters.reads += 1
        self.counters.read_bytes += self.block_bytes
        self.counters.simulated_time += self.cost_model.random_read
        return self.pool.read(block_id)

    def write(self, block_id: BlockId, payload: object, used_bytes: int = 0) -> None:
        self.counters.writes += 1
        self.counters.write_bytes += self.block_bytes
        self.counters.simulated_time += self.cost_model.random_write
        self.pool.write(block_id, payload, used_bytes)

    def peek(self, block_id: BlockId) -> object:
        frame = self.pool._frames.get(block_id)
        if frame is not None:
            return frame.payload
        return self.backing.peek(block_id)

    def flush(self) -> None:
        """Write every dirty cached frame down to the backing device."""
        self.pool.flush()

    # ------------------------------------------------------------------
    # Space accounting delegates to the backing store.
    # ------------------------------------------------------------------
    @property
    def allocated_blocks(self) -> int:
        return self.backing.allocated_blocks

    @property
    def allocated_bytes(self) -> int:
        return self.backing.allocated_bytes

    def used_bytes(self) -> int:
        return self.backing.used_bytes()

    def blocks_by_kind(self):
        return self.backing.blocks_by_kind()

    def iter_block_ids(self):
        return self.backing.iter_block_ids()

    def cache_bytes(self) -> int:
        """Fast-level footprint: the MO_{n-1} of Figure 2."""
        return self.pool.cached_bytes

    def hit_rate(self) -> float:
        """Fraction of pool accesses served without backing I/O."""
        return self.pool.stats.hit_rate
