"""A device wrapper that interposes a buffer pool.

:class:`CachedDevice` presents the :class:`SimulatedDevice` interface
while serving reads and writes through a
:class:`~repro.storage.pager.BufferPool` over a backing device.  Any
access method can be constructed on top of it unchanged, which is how
the Figure-2 benchmark runs a *real structure* (not raw block traffic)
against a memory hierarchy: the method sees cheap cached accesses, the
backing device's counters show the traffic that actually reached the
slow level, and the pool's footprint is the memory overhead paid for
the difference.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.obs.tracer import Tracer
from repro.storage.block import BlockId
from repro.storage.device import CostModel, DeviceCounters, IOStats, SimulatedDevice
from repro.storage.pager import BufferPool, EvictionPolicy


class CachedDevice(SimulatedDevice):
    """A buffer pool masquerading as a device.

    Parameters
    ----------
    backing:
        The slow device that owns the blocks.
    capacity_blocks:
        Pool capacity at the fast level; 0 degenerates to pass-through.
    policy:
        Eviction policy (default LRU).

    Notes
    -----
    * ``counters`` on *this* object record the traffic the access method
      issued (the logical I/O); ``backing.counters`` record what reached
      the slow level (the physical I/O).
    * Space accounting (``allocated_bytes`` etc.) delegates to the
      backing device; :meth:`cache_bytes` reports the fast level's
      footprint.
    """

    __slots__ = ("backing", "pool")

    def __init__(
        self,
        backing: SimulatedDevice,
        capacity_blocks: int,
        policy: Optional[EvictionPolicy] = None,
    ) -> None:
        super().__init__(
            block_bytes=backing.block_bytes,
            cost_model=CostModel.dram(),
            name=f"cached({backing.name})",
        )
        self.backing = backing
        self.pool = BufferPool(backing, capacity_blocks, policy)

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer to this device, its pool and the backing device.

        One tracer sees the whole vertical slice: logical traffic from
        this device, evictions/write-backs from the pool, and physical
        traffic from the backing device, all in one ordered stream.
        """
        super().set_tracer(tracer)
        self.pool.set_tracer(tracer)
        self.backing.set_tracer(tracer)

    # ------------------------------------------------------------------
    # Allocation delegates to the backing device.
    # ------------------------------------------------------------------
    def allocate(self, kind: str = "data") -> BlockId:
        self._allocations += 1
        return self.backing.allocate(kind)

    def free(self, block_id: BlockId) -> None:
        self._frees += 1
        self.pool.invalidate(block_id)
        self.backing.free(block_id)

    def is_allocated(self, block_id: BlockId) -> bool:
        """Whether ``block_id`` is live on the backing device."""
        return self.backing.is_allocated(block_id)

    # ------------------------------------------------------------------
    # I/O goes through the pool.
    # ------------------------------------------------------------------
    def read(self, block_id: BlockId) -> object:
        """Read through the pool, with the base class's seek classification.

        A logically sequential scan is sequential *at this level* no
        matter which frames hit: the classification follows the request
        stream, as on the base device.
        """
        sequential = block_id == self._seq_read_id
        if sequential:
            self._seq_reads += 1
        else:
            self._rand_reads += 1
        self._seq_read_id = block_id + 1
        payload = self.pool.read(block_id)
        if self._trace_enabled:
            self.tracer.emit(
                source=self.name,
                op="read",
                block_id=block_id,
                kind=self.backing.kind_of(block_id),
                sequential=sequential,
                cost=self._cost_seq_read if sequential else self._cost_rand_read,
                nbytes=self.block_bytes,
            )
        return payload

    def write(self, block_id: BlockId, payload: object, used_bytes: int = 0) -> None:
        """Write through the pool, validating occupancy at the call site.

        ``used_bytes`` is checked against the block capacity here, like
        the base class does — an out-of-range value must fail on the
        write that produced it, not later when the pool evicts or
        flushes the frame.
        """
        if not 0 <= used_bytes <= self.block_bytes:
            raise ValueError(
                f"used_bytes {used_bytes} outside block capacity {self.block_bytes}"
            )
        sequential = block_id == self._seq_write_id
        if sequential:
            self._seq_writes += 1
        else:
            self._rand_writes += 1
        self._seq_write_id = block_id + 1
        self.pool.write(block_id, payload, used_bytes)
        if self._trace_enabled:
            self.tracer.emit(
                source=self.name,
                op="write",
                block_id=block_id,
                kind=self.backing.kind_of(block_id),
                sequential=sequential,
                cost=self._cost_seq_write if sequential else self._cost_rand_write,
                nbytes=self.block_bytes,
            )

    def peek(self, block_id: BlockId) -> object:
        """Current payload (cached frame first), without charging I/O."""
        return self.pool.peek(block_id)

    def kind_of(self, block_id: BlockId) -> str:
        """The backing block's ``kind`` tag, without charging I/O."""
        return self.backing.kind_of(block_id)

    def used_bytes_of(self, block_id: BlockId) -> int:
        """Declared occupancy, preferring an unflushed frame's.

        Mirrors :meth:`used_bytes`: while a dirty frame sits in the
        pool the backing block's occupancy is stale, and audits compare
        per-block occupancies against the dirty-aware total.
        """
        return self.pool.used_bytes_of(block_id)

    def flush(self) -> None:
        """Write every dirty cached frame down to the backing device."""
        self.pool.flush()

    def sync_through(self, block_ids: Iterable[BlockId]) -> int:
        """Force the named blocks through the pool to the backing device."""
        return self.pool.sync_through(block_ids)

    # ------------------------------------------------------------------
    # Space accounting delegates to the backing store.
    # ------------------------------------------------------------------
    @property
    def allocated_blocks(self) -> int:
        return self.backing.allocated_blocks

    @property
    def allocated_bytes(self) -> int:
        return self.backing.allocated_bytes

    def used_bytes(self) -> int:
        """Logical occupancy including unflushed dirty frames.

        The backing device's per-block occupancy is stale while a dirty
        frame sits in the pool, so mid-run MO reads would be too: each
        dirty frame's declared occupancy replaces the backing block's.
        """
        total = self.backing.used_bytes()
        for block_id, frame_used in self.pool.iter_dirty():
            total += frame_used - self.backing.used_bytes_of(block_id)
        return total

    def fill_factor(self) -> float:
        """Average logical occupancy (0..1), dirty frames included."""
        allocated = self.backing.allocated_bytes
        if not allocated:
            return 0.0
        return self.used_bytes() / allocated

    def blocks_by_kind(self):
        return self.backing.blocks_by_kind()

    def iter_block_ids(self):
        return self.backing.iter_block_ids()

    def cache_bytes(self) -> int:
        """Fast-level footprint: the MO_{n-1} of Figure 2."""
        return self.pool.cached_bytes

    def hit_rate(self) -> float:
        """Fraction of pool accesses served without backing I/O."""
        return self.pool.stats.hit_rate
