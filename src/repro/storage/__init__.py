"""Simulated storage substrate.

Every access method in :mod:`repro.methods` is built on top of a
:class:`~repro.storage.device.SimulatedDevice`: an in-memory block store
that counts every block read, write and allocation.  The RUM overheads of
the paper (read/write/space amplification) are *measured* as ratios of
these counters, exactly following the definitions in Section 2 of the
paper.

Modules
-------
``block``
    Block objects and block-size arithmetic.
``device``
    The instrumented block device and its I/O counters / cost model.
``layout``
    Record sizing shared by every access method (fixed-size integer
    key/value records, as in the paper's base-data model).
``pager``
    A buffer pool (LRU / Clock eviction) layered over a device.
``hierarchy``
    A multi-level memory-hierarchy simulator (Figure 2 substrate).
"""

from repro.storage.block import Block, BlockId
from repro.storage.cached import CachedDevice
from repro.storage.device import CostModel, DeviceCounters, IOStats, SimulatedDevice
from repro.storage.hierarchy import HierarchyLevel, LevelSpec, MemoryHierarchy
from repro.storage.layout import (
    KEY_BYTES,
    POINTER_BYTES,
    RECORD_BYTES,
    VALUE_BYTES,
    records_per_block,
)
from repro.storage.pager import BufferPool, ClockPolicy, EvictionPolicy, LRUPolicy

__all__ = [
    "Block",
    "BlockId",
    "BufferPool",
    "CachedDevice",
    "ClockPolicy",
    "CostModel",
    "DeviceCounters",
    "EvictionPolicy",
    "HierarchyLevel",
    "IOStats",
    "KEY_BYTES",
    "LRUPolicy",
    "LRUPolicy",
    "MemoryHierarchy",
    "POINTER_BYTES",
    "RECORD_BYTES",
    "SimulatedDevice",
    "VALUE_BYTES",
    "records_per_block",
]
