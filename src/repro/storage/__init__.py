"""Simulated storage substrate.

Every access method in :mod:`repro.methods` is built on top of a
:class:`~repro.storage.device.SimulatedDevice`: an in-memory block store
that counts every block read, write and allocation.  The RUM overheads of
the paper (read/write/space amplification) are *measured* as ratios of
these counters, exactly following the definitions in Section 2 of the
paper.

Modules
-------
``block``
    Block objects and block-size arithmetic.
``device``
    The instrumented block device and its I/O counters / cost model.
``layout``
    Record sizing shared by every access method (fixed-size integer
    key/value records, as in the paper's base-data model).
``store``
    The :class:`BlockStore` protocol every storage layer satisfies, so
    pools stack on devices, proxies, or other pools interchangeably.
``pager``
    A buffer pool (LRU / Clock eviction) layered over any block store.
``hierarchy``
    A chained multi-level memory-hierarchy simulator (Figure 2
    substrate): each level's pool targets the level below it.
"""

from repro.storage.block import Block, BlockId
from repro.storage.cached import CachedDevice
from repro.storage.device import CostModel, DeviceCounters, IOStats, SimulatedDevice
from repro.storage.hierarchy import (
    EXCLUSIVE,
    INCLUSIVE,
    WRITE_BACK,
    WRITE_THROUGH,
    HierarchyLevel,
    LevelCounters,
    LevelSpec,
    MemoryHierarchy,
)
from repro.storage.store import BlockStore
from repro.storage.layout import (
    KEY_BYTES,
    POINTER_BYTES,
    RECORD_BYTES,
    VALUE_BYTES,
    records_per_block,
)
from repro.storage.pager import BufferPool, ClockPolicy, EvictionPolicy, LRUPolicy

__all__ = [
    "Block",
    "BlockId",
    "BlockStore",
    "BufferPool",
    "CachedDevice",
    "ClockPolicy",
    "CostModel",
    "DeviceCounters",
    "EvictionPolicy",
    "EXCLUSIVE",
    "HierarchyLevel",
    "INCLUSIVE",
    "IOStats",
    "KEY_BYTES",
    "LRUPolicy",
    "LevelCounters",
    "LevelSpec",
    "MemoryHierarchy",
    "POINTER_BYTES",
    "RECORD_BYTES",
    "SimulatedDevice",
    "VALUE_BYTES",
    "WRITE_BACK",
    "WRITE_THROUGH",
    "records_per_block",
]
