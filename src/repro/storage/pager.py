"""Buffer pool over any block store.

The buffer pool is the mechanism through which the *vertical* view of the
RUM tradeoffs (paper, Figure 2) materializes: caching blocks at a faster
level reduces the read/update traffic that reaches the level below, at the
price of memory overhead at the caching level.

The pool targets any :class:`~repro.storage.store.BlockStore` — a
:class:`~repro.storage.device.SimulatedDevice`, a fault-injecting proxy,
or *another pool* — which is what lets
:class:`~repro.storage.hierarchy.MemoryHierarchy` build a genuinely
chained stack: each level's pool sits on the level below it, so misses
read through one level at a time and dirty evictions land in the next
level down rather than teleporting to the backing device.  The pool
itself satisfies :class:`~repro.storage.store.BlockStore`.

Two write policies are supported:

* *write-back* (default): writes dirty a frame; the store below sees
  them only on eviction or flush.
* *write-through*: writes update the frame (kept clean) **and** pass
  down immediately.

and two admission modes:

* *admit on read* (default, inclusive caching): read misses install the
  fetched block.
* *no admit on read* (exclusive victim-fill caching): read misses pass
  through uncached; the pool holds only blocks pushed into it —
  write-backs from above and clean victims offered via
  :meth:`fill_clean`.

Besides hit/miss statistics the pool counts its *outgoing* traffic
(``stats.demand_reads``, ``stats.downstream_writes``), which is what the
hierarchy's conservation audit compares against the next level's
incoming counts.

Two classic eviction policies are provided (LRU and Clock); both are
deterministic so experiments are reproducible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.obs.spans import span, spanned
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.storage.block import BlockId
from repro.storage.store import BlockStore


class EvictionPolicy(ABC):
    """Strategy deciding which cached block to evict when the pool is full."""

    @abstractmethod
    def on_access(self, block_id: BlockId) -> None:
        """Record that ``block_id`` was read or written through the pool."""

    @abstractmethod
    def on_insert(self, block_id: BlockId) -> None:
        """Record that ``block_id`` entered the pool."""

    @abstractmethod
    def on_remove(self, block_id: BlockId) -> None:
        """Record that ``block_id`` left the pool."""

    @abstractmethod
    def choose_victim(self) -> BlockId:
        """Pick the block to evict.  Pool guarantees it is non-empty."""


class LRUPolicy(EvictionPolicy):
    """Evict the least-recently-used block."""

    def __init__(self) -> None:
        self._order: "OrderedDict[BlockId, None]" = OrderedDict()

    def on_access(self, block_id: BlockId) -> None:
        if block_id in self._order:
            self._order.move_to_end(block_id)

    def on_insert(self, block_id: BlockId) -> None:
        self._order[block_id] = None
        self._order.move_to_end(block_id)

    def on_remove(self, block_id: BlockId) -> None:
        self._order.pop(block_id, None)

    def choose_victim(self) -> BlockId:
        return next(iter(self._order))


class ClockPolicy(EvictionPolicy):
    """Second-chance (clock) eviction: cheap approximation of LRU."""

    def __init__(self) -> None:
        self._referenced: "OrderedDict[BlockId, bool]" = OrderedDict()

    def on_access(self, block_id: BlockId) -> None:
        if block_id in self._referenced:
            self._referenced[block_id] = True

    def on_insert(self, block_id: BlockId) -> None:
        self._referenced[block_id] = True

    def on_remove(self, block_id: BlockId) -> None:
        self._referenced.pop(block_id, None)

    def choose_victim(self) -> BlockId:
        while True:
            block_id, referenced = next(iter(self._referenced.items()))
            if referenced:
                # Second chance: clear the bit and move to the back.
                self._referenced[block_id] = False
                self._referenced.move_to_end(block_id)
            else:
                return block_id


@dataclass
class PoolStats:
    """Hit/miss and outgoing-traffic statistics of a buffer pool.

    ``demand_reads`` counts reads the pool issued to the store below
    (one per read miss); ``downstream_writes`` counts writes issued
    below from any cause — dirty-eviction write-backs, flush
    write-backs, write-through propagation and capacity-0 pass-through.
    The hierarchy's conservation audit checks these against the next
    level's incoming traffic.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    write_backs: int = 0
    demand_reads: int = 0
    downstream_writes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class _Frame:
    payload: object
    used_bytes: int
    dirty: bool


@dataclass(frozen=True)
class FrameView:
    """Read-only view of one cached frame, for audits and space reports."""

    block_id: BlockId
    payload: object
    used_bytes: int
    dirty: bool


class BufferPool:
    """Block cache of fixed capacity over any :class:`BlockStore`.

    Reads and writes of cached blocks are served from the pool without
    touching the underlying store; misses read through, and evictions of
    dirty frames write back.  ``capacity_blocks == 0`` degenerates to a
    pass-through (every access reaches the store below), which is the
    "no memory overhead at level n-1" end of Figure 2.

    Parameters
    ----------
    device:
        The store below — a device, a proxy, or another pool.
    capacity_blocks:
        Frame budget; 0 degenerates to pass-through.
    policy:
        Eviction policy (default LRU).
    write_through:
        When true, writes keep their frame clean and propagate down
        immediately instead of waiting for eviction/flush.
    admit_on_read:
        When false (exclusive victim-fill caching), read misses pass
        through without installing a frame; only writes and
        :meth:`fill_clean` populate the pool.
    """

    def __init__(
        self,
        device: BlockStore,
        capacity_blocks: int,
        policy: Optional[EvictionPolicy] = None,
        *,
        write_through: bool = False,
        admit_on_read: bool = True,
    ) -> None:
        if capacity_blocks < 0:
            raise ValueError("capacity_blocks must be non-negative")
        self.device = device
        self.capacity_blocks = capacity_blocks
        self.policy = policy if policy is not None else LRUPolicy()
        self.write_through = write_through
        self.admit_on_read = admit_on_read
        self.stats = PoolStats()
        self.name = f"pool({device.name})"
        self.tracer: Tracer = NULL_TRACER
        #: Optional sink for *clean* victims (exclusive victim-fill
        #: caching): when set, a clean evicted frame is offered to it via
        #: ``accept_victim(block_id, payload, used_bytes)`` instead of
        #: being dropped.  Dirty victims always write back normally.
        self.victim_store = None
        self._frames: Dict[BlockId, _Frame] = {}

    @property
    def block_bytes(self) -> int:
        """Block granularity, inherited from the store below."""
        return self.device.block_bytes

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer; evictions and write-backs emit events."""
        self.tracer = tracer

    # ------------------------------------------------------------------
    def read(self, block_id: BlockId) -> object:
        """Read through the cache."""
        frame = self._frames.get(block_id)
        if frame is not None:
            self.stats.hits += 1
            self.policy.on_access(block_id)
            return frame.payload
        self.stats.misses += 1
        self.stats.demand_reads += 1
        return self._miss_read(block_id)

    @spanned("pool.miss")
    def _miss_read(self, block_id: BlockId) -> object:
        """Serve a read miss: fetch from below and (maybe) admit."""
        payload = self.device.read(block_id)
        if self.admit_on_read:
            # Carry the block's true occupancy so a write-back of a
            # read-admitted-then-evicted frame (and mid-run space
            # statistics) report the real used_bytes, not zero.
            self._admit(
                block_id,
                payload,
                used_bytes=self.device.used_bytes_of(block_id),
                dirty=False,
            )
        return payload

    def write(self, block_id: BlockId, payload: object, used_bytes: int = 0) -> None:
        """Write into the cache.

        Under write-back the store below only sees the write when the
        frame is evicted or the pool is flushed; under write-through the
        write also propagates down immediately and the frame stays clean.
        """
        dirty = not self.write_through
        frame = self._frames.get(block_id)
        if frame is not None:
            self.stats.hits += 1
            frame.payload = payload
            frame.used_bytes = used_bytes
            frame.dirty = dirty
            self.policy.on_access(block_id)
        else:
            self.stats.misses += 1
            if self.capacity_blocks == 0:
                self.stats.downstream_writes += 1
                self.device.write(block_id, payload, used_bytes)
                return
            self._admit(block_id, payload, used_bytes=used_bytes, dirty=dirty)
        if self.write_through:
            self.stats.downstream_writes += 1
            self.device.write(block_id, payload, used_bytes)

    def flush(self) -> None:
        """Write back every dirty frame (frames stay cached, now clean)."""
        with span("pool.write_back"):
            for block_id in sorted(self._frames):
                frame = self._frames[block_id]
                if frame.dirty:
                    self.stats.downstream_writes += 1
                    self.device.write(block_id, frame.payload, frame.used_bytes)
                    self.stats.write_backs += 1
                    frame.dirty = False
                    if self.tracer.enabled:
                        self.tracer.emit(
                            source=self.name,
                            op="write_back",
                            block_id=block_id,
                            nbytes=self.device.block_bytes,
                        )

    def sync_through(self, block_ids: Iterable[BlockId]) -> int:
        """Force the named blocks down through every level (modeled fsync).

        Writes back this pool's dirty frames for ``block_ids`` (frames
        stay cached, now clean — flush-by-id) and then recurses into the
        store below, so a block dirty at *any* depth reaches the backing
        device.  Unlike :meth:`flush` this targets only the named
        blocks: the WAL's fsync must not pay for (or force) unrelated
        dirty data pages.  Returns the number of frames written back
        across all levels.
        """
        ids = list(block_ids)
        written = 0
        with span("pool.write_back"):
            for block_id in ids:
                frame = self._frames.get(block_id)
                if frame is None or not frame.dirty:
                    continue
                self.stats.downstream_writes += 1
                self.device.write(block_id, frame.payload, frame.used_bytes)
                self.stats.write_backs += 1
                frame.dirty = False
                written += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        source=self.name,
                        op="write_back",
                        block_id=block_id,
                        nbytes=self.device.block_bytes,
                    )
        # Cascade unconditionally: a block may be clean (or absent)
        # here yet dirty in a pool further down.
        return written + self.device.sync_through(ids)

    def peek(self, block_id: BlockId) -> object:
        """A block's current payload without I/O, stats or policy updates.

        Serves the cached frame when present (it may be dirty and newer
        than the copy below), otherwise falls through to the store's own
        ``peek``.  Debugging/assertion aid, like
        :meth:`~repro.storage.device.SimulatedDevice.peek`.
        """
        frame = self._frames.get(block_id)
        if frame is not None:
            return frame.payload
        return self.device.peek(block_id)

    def used_bytes_of(self, block_id: BlockId) -> int:
        """Declared occupancy, preferring the cached frame's, no I/O."""
        frame = self._frames.get(block_id)
        if frame is not None:
            return frame.used_bytes
        return self.device.used_bytes_of(block_id)

    def contains(self, block_id: BlockId) -> bool:
        """Whether a frame for ``block_id`` is cached (no side effects)."""
        return block_id in self._frames

    def fill_clean(self, block_id: BlockId, payload: object, used_bytes: int) -> None:
        """Install a *clean* frame without counting a hit or a miss.

        The entry point for exclusive victim-fill caching: the level
        above offers its clean victims here.  Admitting into a full pool
        still evicts (and write-backs charge) normally.  A no-op when the
        block is already cached — the resident copy may be dirty and
        newer than the offered one.
        """
        if self.capacity_blocks == 0 or block_id in self._frames:
            return
        self._admit(block_id, payload, used_bytes=used_bytes, dirty=False)

    def iter_frames(self) -> Iterator[FrameView]:
        """Read-only views of every cached frame, for audits.

        The public replacement for reaching into the frame table;
        ``tools/lint_counters.py`` rejects ``._frames`` access outside
        this module.
        """
        for block_id, frame in self._frames.items():
            yield FrameView(
                block_id=block_id,
                payload=frame.payload,
                used_bytes=frame.used_bytes,
                dirty=frame.dirty,
            )

    def iter_dirty(self) -> Iterator[Tuple[BlockId, int]]:
        """Yield ``(block_id, used_bytes)`` for each dirty frame.

        Lets callers account unflushed occupancy (space statistics mid-run)
        without reaching into the frame table.
        """
        for block_id, frame in self._frames.items():
            if frame.dirty:
                yield block_id, frame.used_bytes

    def invalidate(self, block_id: BlockId) -> None:
        """Drop a block from the cache without writing it back.

        Used when the owner frees the block on the device.
        """
        if block_id in self._frames:
            del self._frames[block_id]
            self.policy.on_remove(block_id)

    @property
    def cached_blocks(self) -> int:
        return len(self._frames)

    @property
    def dirty_blocks(self) -> int:
        """Number of frames holding unflushed writes."""
        return sum(1 for frame in self._frames.values() if frame.dirty)

    @property
    def cached_bytes(self) -> int:
        """Space consumed by the cache, for MO accounting at this level."""
        return len(self._frames) * self.device.block_bytes

    # ------------------------------------------------------------------
    def _admit(
        self, block_id: BlockId, payload: object, used_bytes: int, dirty: bool
    ) -> None:
        if self.capacity_blocks == 0:
            return
        while len(self._frames) >= self.capacity_blocks:
            self._evict_victim()
        self._frames[block_id] = _Frame(payload=payload, used_bytes=used_bytes, dirty=dirty)
        self.policy.on_insert(block_id)

    @spanned("pool.evict")
    def _evict_victim(self) -> None:
        victim = self.policy.choose_victim()
        victim_frame = self._frames.pop(victim)
        self.policy.on_remove(victim)
        self.stats.evictions += 1
        if self.tracer.enabled:
            self.tracer.emit(source=self.name, op="evict", block_id=victim)
        if victim_frame.dirty:
            with span("pool.write_back"):
                self.stats.downstream_writes += 1
                self.device.write(victim, victim_frame.payload, victim_frame.used_bytes)
                self.stats.write_backs += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        source=self.name,
                        op="write_back",
                        block_id=victim,
                        nbytes=self.device.block_bytes,
                    )
        elif self.victim_store is not None:
            self.victim_store.accept_victim(
                victim, victim_frame.payload, victim_frame.used_bytes
            )
