"""Buffer pool over a simulated device.

The buffer pool is the mechanism through which the *vertical* view of the
RUM tradeoffs (paper, Figure 2) materializes: caching blocks at a faster
level reduces the read/update traffic that reaches the level below, at the
price of memory overhead at the caching level.

Two classic eviction policies are provided (LRU and Clock); both are
deterministic so experiments are reproducible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.storage.block import BlockId
from repro.storage.device import SimulatedDevice


class EvictionPolicy(ABC):
    """Strategy deciding which cached block to evict when the pool is full."""

    @abstractmethod
    def on_access(self, block_id: BlockId) -> None:
        """Record that ``block_id`` was read or written through the pool."""

    @abstractmethod
    def on_insert(self, block_id: BlockId) -> None:
        """Record that ``block_id`` entered the pool."""

    @abstractmethod
    def on_remove(self, block_id: BlockId) -> None:
        """Record that ``block_id`` left the pool."""

    @abstractmethod
    def choose_victim(self) -> BlockId:
        """Pick the block to evict.  Pool guarantees it is non-empty."""


class LRUPolicy(EvictionPolicy):
    """Evict the least-recently-used block."""

    def __init__(self) -> None:
        self._order: "OrderedDict[BlockId, None]" = OrderedDict()

    def on_access(self, block_id: BlockId) -> None:
        if block_id in self._order:
            self._order.move_to_end(block_id)

    def on_insert(self, block_id: BlockId) -> None:
        self._order[block_id] = None
        self._order.move_to_end(block_id)

    def on_remove(self, block_id: BlockId) -> None:
        self._order.pop(block_id, None)

    def choose_victim(self) -> BlockId:
        return next(iter(self._order))


class ClockPolicy(EvictionPolicy):
    """Second-chance (clock) eviction: cheap approximation of LRU."""

    def __init__(self) -> None:
        self._referenced: "OrderedDict[BlockId, bool]" = OrderedDict()

    def on_access(self, block_id: BlockId) -> None:
        if block_id in self._referenced:
            self._referenced[block_id] = True

    def on_insert(self, block_id: BlockId) -> None:
        self._referenced[block_id] = True

    def on_remove(self, block_id: BlockId) -> None:
        self._referenced.pop(block_id, None)

    def choose_victim(self) -> BlockId:
        while True:
            block_id, referenced = next(iter(self._referenced.items()))
            if referenced:
                # Second chance: clear the bit and move to the back.
                self._referenced[block_id] = False
                self._referenced.move_to_end(block_id)
            else:
                return block_id


@dataclass
class PoolStats:
    """Hit/miss statistics of a buffer pool."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    write_backs: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclass
class _Frame:
    payload: object
    used_bytes: int
    dirty: bool


class BufferPool:
    """Write-back block cache of fixed capacity over a device.

    Reads and writes of cached blocks are served from the pool without
    touching the underlying device; misses read through, and evictions of
    dirty frames write back.  ``capacity_blocks == 0`` degenerates to a
    pass-through (every access reaches the device), which is the "no
    memory overhead at level n-1" end of Figure 2.
    """

    def __init__(
        self,
        device: SimulatedDevice,
        capacity_blocks: int,
        policy: Optional[EvictionPolicy] = None,
    ) -> None:
        if capacity_blocks < 0:
            raise ValueError("capacity_blocks must be non-negative")
        self.device = device
        self.capacity_blocks = capacity_blocks
        self.policy = policy if policy is not None else LRUPolicy()
        self.stats = PoolStats()
        self.name = f"pool({device.name})"
        self.tracer: Tracer = NULL_TRACER
        self._frames: Dict[BlockId, _Frame] = {}

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer; evictions and write-backs emit events."""
        self.tracer = tracer

    # ------------------------------------------------------------------
    def read(self, block_id: BlockId) -> object:
        """Read through the cache."""
        frame = self._frames.get(block_id)
        if frame is not None:
            self.stats.hits += 1
            self.policy.on_access(block_id)
            return frame.payload
        self.stats.misses += 1
        payload = self.device.read(block_id)
        self._admit(block_id, payload, used_bytes=0, dirty=False)
        return payload

    def write(self, block_id: BlockId, payload: object, used_bytes: int = 0) -> None:
        """Write into the cache (write-back).

        The device only sees the write when the frame is evicted or the
        pool is flushed.
        """
        frame = self._frames.get(block_id)
        if frame is not None:
            self.stats.hits += 1
            frame.payload = payload
            frame.used_bytes = used_bytes
            frame.dirty = True
            self.policy.on_access(block_id)
            return
        self.stats.misses += 1
        if self.capacity_blocks == 0:
            self.device.write(block_id, payload, used_bytes)
            return
        self._admit(block_id, payload, used_bytes=used_bytes, dirty=True)

    def flush(self) -> None:
        """Write back every dirty frame (frames stay cached, now clean)."""
        for block_id in sorted(self._frames):
            frame = self._frames[block_id]
            if frame.dirty:
                self.device.write(block_id, frame.payload, frame.used_bytes)
                self.stats.write_backs += 1
                frame.dirty = False
                if self.tracer.enabled:
                    self.tracer.emit(
                        source=self.name,
                        op="write_back",
                        block_id=block_id,
                        nbytes=self.device.block_bytes,
                    )

    def peek(self, block_id: BlockId) -> object:
        """A block's current payload without I/O, stats or policy updates.

        Serves the cached frame when present (it may be dirty and newer
        than the device copy), otherwise falls through to the device's
        own ``peek``.  Debugging/assertion aid, like
        :meth:`~repro.storage.device.SimulatedDevice.peek`.
        """
        frame = self._frames.get(block_id)
        if frame is not None:
            return frame.payload
        return self.device.peek(block_id)

    def iter_dirty(self) -> Iterator[Tuple[BlockId, int]]:
        """Yield ``(block_id, used_bytes)`` for each dirty frame.

        Lets callers account unflushed occupancy (space statistics mid-run)
        without reaching into the frame table.
        """
        for block_id, frame in self._frames.items():
            if frame.dirty:
                yield block_id, frame.used_bytes

    def invalidate(self, block_id: BlockId) -> None:
        """Drop a block from the cache without writing it back.

        Used when the owner frees the block on the device.
        """
        if block_id in self._frames:
            del self._frames[block_id]
            self.policy.on_remove(block_id)

    @property
    def cached_blocks(self) -> int:
        return len(self._frames)

    @property
    def cached_bytes(self) -> int:
        """Space consumed by the cache, for MO accounting at this level."""
        return len(self._frames) * self.device.block_bytes

    # ------------------------------------------------------------------
    def _admit(
        self, block_id: BlockId, payload: object, used_bytes: int, dirty: bool
    ) -> None:
        if self.capacity_blocks == 0:
            return
        while len(self._frames) >= self.capacity_blocks:
            victim = self.policy.choose_victim()
            victim_frame = self._frames.pop(victim)
            self.policy.on_remove(victim)
            self.stats.evictions += 1
            if self.tracer.enabled:
                self.tracer.emit(source=self.name, op="evict", block_id=victim)
            if victim_frame.dirty:
                self.device.write(victim, victim_frame.payload, victim_frame.used_bytes)
                self.stats.write_backs += 1
                if self.tracer.enabled:
                    self.tracer.emit(
                        source=self.name,
                        op="write_back",
                        block_id=victim,
                        nbytes=self.device.block_bytes,
                    )
        self._frames[block_id] = _Frame(payload=payload, used_bytes=used_bytes, dirty=dirty)
        self.policy.on_insert(block_id)
