"""The unit of parallel execution: one experiment cell.

A :class:`SweepCell` pins down everything a worker process needs to
reproduce one grid point from scratch: the access-method name (resolved
through the registry), the workload spec, the device configuration, the
constructor overrides, and the *runner* — the function that actually
performs the measurement.  Cells are frozen, hashable and canonically
serializable, which is what makes result caching and cross-process
dispatch sound: a cell's serialized form is its identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.storage.device import CostModel
from repro.storage.layout import DEFAULT_BLOCK_BYTES
from repro.workloads.spec import WorkloadSpec

#: The default runner: bulk-load the method and stream the spec's
#: operations through it (``repro.exec.engine.run_workload_cell``).
DEFAULT_RUNNER = "repro.exec.engine:run_workload_cell"

KVTuple = Tuple[Tuple[str, Any], ...]


def _freeze_kwargs(kwargs: Optional[Mapping[str, Any]]) -> KVTuple:
    """Sorted key/value tuple form of a kwargs mapping (hashable)."""
    if not kwargs:
        return ()
    return tuple(sorted(kwargs.items()))


@dataclass(frozen=True)
class SweepCell:
    """One independent grid point of a sweep.

    Parameters
    ----------
    method:
        Registry name of the access method under test.
    spec:
        The workload to run.  Fully determines the operation stream.
    label:
        Display / lookup label for the cell; defaults to ``method``.
        Distinguishes cells that share a method but differ in overrides
        (e.g. the Figure-3 tuning grid).
    block_bytes, cost_model:
        Device configuration the runner builds the device from.
    overrides:
        Constructor keyword arguments for the method, as a sorted
        key/value tuple (use :meth:`make` to pass a plain dict).
    params:
        Runner-specific parameters (same representation) for custom
        runners that measure something other than a workload profile.
    runner:
        ``"module:function"`` reference resolved in the worker process.
        The function receives ``(cell, tracer)`` and returns either a
        :class:`~repro.workloads.runner.WorkloadResult` or a
        JSON-serializable dict.
    """

    method: str
    spec: WorkloadSpec
    label: str = ""
    block_bytes: int = DEFAULT_BLOCK_BYTES
    cost_model: CostModel = field(default_factory=CostModel.flash)
    overrides: KVTuple = ()
    params: KVTuple = ()
    runner: str = DEFAULT_RUNNER

    @classmethod
    def make(
        cls,
        method: str,
        spec: WorkloadSpec,
        label: str = "",
        block_bytes: int = DEFAULT_BLOCK_BYTES,
        cost_model: Optional[CostModel] = None,
        overrides: Optional[Mapping[str, Any]] = None,
        params: Optional[Mapping[str, Any]] = None,
        runner: str = DEFAULT_RUNNER,
    ) -> "SweepCell":
        """Build a cell from plain mappings (frozen into sorted tuples)."""
        return cls(
            method=method,
            spec=spec,
            label=label or method,
            block_bytes=block_bytes,
            cost_model=cost_model or CostModel.flash(),
            overrides=_freeze_kwargs(overrides),
            params=_freeze_kwargs(params),
            runner=runner,
        )

    @property
    def display_label(self) -> str:
        """The label to report results under."""
        return self.label or self.method

    def override_kwargs(self) -> Dict[str, Any]:
        """The constructor overrides as a plain dict."""
        return dict(self.overrides)

    def param_kwargs(self) -> Dict[str, Any]:
        """The runner parameters as a plain dict."""
        return dict(self.params)
