"""Canonical JSON for cells, results and trace events.

This module is the determinism contract of the sweep engine.  Both
execution paths — in-process serial and fanned out over worker
processes — produce results by round-tripping through the *same*
canonical encoding, so a parallel run is byte-identical to a serial run
by construction rather than by accident.  The same canonical cell string
doubles as the cache identity (:mod:`repro.exec.cache` hashes it).

Encoding rules:

* objects become dicts of primitives; ``json.dumps`` with sorted keys
  and fixed separators produces one canonical byte string per value;
* floats rely on ``repr`` round-tripping (exact in Python 3), so decoded
  results compare equal field-for-field to the originals;
* decoded envelopes rebuild the real frozen dataclasses
  (:class:`WorkloadSpec`, :class:`RUMProfile`, :class:`IOStats`,
  :class:`WorkloadResult`) — callers get first-class objects back, never
  raw dicts, unless the cell's runner returned a plain dict on purpose.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Union

from repro.core.rum import RUMProfile
from repro.exec.cells import SweepCell
from repro.obs.tracer import TraceEvent
from repro.storage.device import CostModel, IOStats
from repro.workloads.runner import WorkloadResult
from repro.workloads.spec import WorkloadSpec

#: Fields of WorkloadSpec, in declaration order (all primitives).
_SPEC_FIELDS = (
    "point_queries",
    "range_queries",
    "inserts",
    "updates",
    "deletes",
    "operations",
    "initial_records",
    "range_fraction",
    "distribution",
    "seed",
)

_IOSTATS_FIELDS = (
    "reads",
    "writes",
    "read_bytes",
    "write_bytes",
    "allocations",
    "frees",
    "simulated_time",
)

_PROFILE_FIELDS = (
    "read_overhead",
    "update_overhead",
    "memory_overhead",
    "simulated_time",
    "name",
)


def _canonical(value: Any) -> str:
    """The one canonical JSON byte string for a JSON-compatible value."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
def spec_to_dict(spec: WorkloadSpec) -> Dict[str, Any]:
    """Plain-dict form of a workload spec."""
    return {name: getattr(spec, name) for name in _SPEC_FIELDS}


def spec_from_dict(data: Dict[str, Any]) -> WorkloadSpec:
    """Rebuild a :class:`WorkloadSpec` from its dict form."""
    return WorkloadSpec(**data)


# ----------------------------------------------------------------------
# Cells
# ----------------------------------------------------------------------
def cell_to_dict(cell: SweepCell) -> Dict[str, Any]:
    """Plain-dict form of a sweep cell."""
    model = cell.cost_model
    return {
        "method": cell.method,
        "spec": spec_to_dict(cell.spec),
        "label": cell.label,
        "block_bytes": cell.block_bytes,
        "cost_model": [
            model.sequential_read,
            model.random_read,
            model.sequential_write,
            model.random_write,
        ],
        "overrides": [[key, value] for key, value in cell.overrides],
        "params": [[key, value] for key, value in cell.params],
        "runner": cell.runner,
    }


def cell_from_dict(data: Dict[str, Any]) -> SweepCell:
    """Rebuild a :class:`SweepCell` from its dict form."""
    return SweepCell(
        method=data["method"],
        spec=spec_from_dict(data["spec"]),
        label=data["label"],
        block_bytes=data["block_bytes"],
        cost_model=CostModel(*data["cost_model"]),
        overrides=tuple((key, value) for key, value in data["overrides"]),
        params=tuple((key, value) for key, value in data["params"]),
        runner=data["runner"],
    )


def encode_cell(cell: SweepCell) -> str:
    """Canonical JSON string for a cell — its identity."""
    return _canonical(cell_to_dict(cell))


def decode_cell(payload: str) -> SweepCell:
    """Inverse of :func:`encode_cell`."""
    return cell_from_dict(json.loads(payload))


def cell_seed(cell_payload: str, salt: str) -> int:
    """Deterministic per-cell seed for the worker's global RNG.

    Derived from the canonical cell string, so a cell's seed does not
    depend on where in the grid it sits or which process runs it —
    a requirement for serial/parallel equivalence.
    """
    digest = hashlib.sha256((salt + "\n" + cell_payload).encode()).digest()
    return int.from_bytes(digest[:8], "big")


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def result_to_dict(result: Union[WorkloadResult, Dict[str, Any]]) -> Dict[str, Any]:
    """Tagged dict form of a runner's return value.

    Standard runners return :class:`WorkloadResult`; custom runners may
    return any JSON-compatible dict, which is passed through under the
    ``"json"`` tag.
    """
    if isinstance(result, dict):
        return {"kind": "json", "value": result}
    if not isinstance(result, WorkloadResult):
        raise TypeError(
            f"cell runner must return WorkloadResult or dict, got {type(result)!r}"
        )
    profile = result.profile
    io = result.bulk_load_io
    return {
        "kind": "workload_result",
        "method_name": result.method_name,
        "spec": spec_to_dict(result.spec),
        "profile": {name: getattr(profile, name) for name in _PROFILE_FIELDS},
        "bulk_load_io": {name: getattr(io, name) for name in _IOSTATS_FIELDS},
        "final_records": result.final_records,
        "final_space_bytes": result.final_space_bytes,
        "operations_executed": result.operations_executed,
    }


def result_from_dict(data: Dict[str, Any]) -> Union[WorkloadResult, Dict[str, Any]]:
    """Inverse of :func:`result_to_dict`."""
    if data["kind"] == "json":
        return data["value"]
    return WorkloadResult(
        method_name=data["method_name"],
        spec=spec_from_dict(data["spec"]),
        profile=RUMProfile(**data["profile"]),
        bulk_load_io=IOStats(**data["bulk_load_io"]),
        final_records=data["final_records"],
        final_space_bytes=data["final_space_bytes"],
        operations_executed=data.get("operations_executed", 0),
    )


# ----------------------------------------------------------------------
# Envelopes (what workers return and what the cache stores)
# ----------------------------------------------------------------------
def encode_envelope(
    result: Union[WorkloadResult, Dict[str, Any]],
    events: Optional[List[TraceEvent]],
) -> str:
    """Canonical JSON for one executed cell: result plus optional events."""
    return _canonical(
        {
            "result": result_to_dict(result),
            "events": (
                None if events is None else [event.to_dict() for event in events]
            ),
        }
    )


def decode_envelope(payload: str) -> Dict[str, Any]:
    """Parse an envelope string into ``{"result": ..., "events": ...}``.

    ``result`` is rebuilt into its dataclass form; ``events`` stays a
    list of event dicts (or ``None`` if the cell ran untraced).
    """
    data = json.loads(payload)
    return {
        "result": result_from_dict(data["result"]),
        "events": data["events"],
    }


#: Canonical envelopes sort their keys, so every envelope ever written
#: by :func:`encode_envelope` starts with its ``events`` field — which
#: makes tracedness a prefix check, not a parse.
_UNTRACED_PREFIX = '{"events":null'
_TRACED_PREFIX = '{"events":['


def envelope_is_traced(payload: str) -> bool:
    """Whether an envelope carries trace events (cheap cache-hit check).

    Fast path: canonical envelopes (sorted keys) open with their
    ``events`` field, so a prefix comparison answers without decoding —
    a traced envelope can be megabytes of events, and cache lookups ask
    this for every cell.  Anything that doesn't match either canonical
    prefix (hand-written JSON, foreign whitespace) falls back to a full
    decode, so the answer is always exact.
    """
    if payload.startswith(_UNTRACED_PREFIX):
        return False
    if payload.startswith(_TRACED_PREFIX):
        return True
    return json.loads(payload)["events"] is not None
