"""Content-addressed on-disk cache for sweep results.

A cell's canonical JSON (see :mod:`repro.exec.serialize`) is hashed
together with a *salt* — by default the library version — into the cache
key.  The stored value is the cell's executed envelope, verbatim.  Two
consequences:

* an unchanged grid re-runs from cache with zero workload execution and
  byte-identical results (the envelope bytes are returned as written);
* any change to the cell configuration, or a library version bump,
  changes the key and the stale entry is simply never read again —
  invalidation is structural, not heuristic.

Layout: ``<root>/<key[:2]>/<key>.json``, fanned out over 256 prefix
directories.  Writes are atomic (temp file + ``os.replace``) so a
killed run never leaves a torn entry.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from typing import Optional

import repro

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


class ResultCache:
    """The ``.repro-cache/`` store.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first write).
    salt:
        Version salt mixed into every key.  Defaults to
        ``repro.__version__`` so results never survive a library
        version change.
    """

    def __init__(
        self,
        root: str = DEFAULT_CACHE_DIR,
        salt: Optional[str] = None,
    ) -> None:
        self.root = root
        self.salt = repro.__version__ if salt is None else salt
        self.hits = 0
        self.misses = 0

    def key_for(self, cell_payload: str) -> str:
        """Cache key: SHA-256 of the salt and the canonical cell JSON."""
        return hashlib.sha256(
            (self.salt + "\n" + cell_payload).encode()
        ).hexdigest()

    def _path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def get(self, key: str) -> Optional[str]:
        """The stored envelope string, or ``None`` on a miss."""
        try:
            with open(self._path_for(key), "r") as handle:
                payload = handle.read()
        except OSError:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: str) -> None:
        """Store an envelope atomically (temp file + rename)."""
        path = self._path_for(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def entry_count(self) -> int:
        """Number of cached envelopes currently on disk."""
        count = 0
        if not os.path.isdir(self.root):
            return 0
        for prefix in os.listdir(self.root):
            subdir = os.path.join(self.root, prefix)
            if os.path.isdir(subdir):
                count += sum(
                    1 for name in os.listdir(subdir) if name.endswith(".json")
                )
        return count

    def clear(self) -> int:
        """Delete every cached envelope; returns how many were removed."""
        removed = 0
        if not os.path.isdir(self.root):
            return 0
        for prefix in os.listdir(self.root):
            subdir = os.path.join(self.root, prefix)
            if not os.path.isdir(subdir):
                continue
            for name in os.listdir(subdir):
                if name.endswith(".json"):
                    os.unlink(os.path.join(subdir, name))
                    removed += 1
            try:
                os.rmdir(subdir)
            except OSError:
                pass
        return removed
