"""Content-addressed on-disk cache for sweep results.

A cell's canonical JSON (see :mod:`repro.exec.serialize`) is hashed
together with a *salt* — by default the library version — into the cache
key.  The stored value is the cell's executed envelope, verbatim.  Two
consequences:

* an unchanged grid re-runs from cache with zero workload execution and
  byte-identical results (the envelope bytes are returned as written);
* any change to the cell configuration, or a library version bump,
  changes the key and the stale entry is simply never read again —
  invalidation is structural, not heuristic.

Layout: ``<root>/<key[:2]>/<key>.json``, fanned out over 256 prefix
directories.  Writes are atomic (temp file + ``os.replace``) so a
killed run — or two worker processes racing on the same key — never
leaves a torn entry; the last complete write wins, and because cells
are deterministic every writer produces the same bytes anyway.

Next to each envelope an optional *metadata sidecar*
(``<key>.meta.json``) records cheap facts about the entry that lookups
want without decoding the envelope: whether the entry carries trace
events (``traced``) and how long the cell took to execute
(``wall_seconds``, which feeds the scheduler's cost model).  Entries
written before sidecars existed simply have no sidecar — every reader
falls back to sniffing the envelope itself.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from typing import Any, Dict, Optional

import repro

#: Default cache directory, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

_META_SUFFIX = ".meta.json"
_TMP_SUFFIX = ".tmp"

#: Age before an orphaned ``.tmp`` file is swept on open.  A writer that
#: crashed between ``mkstemp`` and ``os.replace`` leaves its temp file
#: forever; a *live* writer's temp file exists for milliseconds.  The
#: guard keeps a worker pool opening the shared cache concurrently from
#: deleting a sibling's in-flight write.
ORPHAN_TMP_AGE_SECONDS = 60.0


class ResultCache:
    """The ``.repro-cache/`` store.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first write).
    salt:
        Version salt mixed into every key.  Defaults to
        ``repro.__version__`` so results never survive a library
        version change.
    """

    def __init__(
        self,
        root: str = DEFAULT_CACHE_DIR,
        salt: Optional[str] = None,
    ) -> None:
        self.root = root
        self.salt = repro.__version__ if salt is None else salt
        self.hits = 0
        self.misses = 0
        #: Stale temp files from crashed writers removed at open time.
        self.orphans_swept = self.sweep_orphans()

    def spec(self) -> "CacheSpec":
        """The picklable ``(root, salt)`` identity of this cache.

        Worker processes rebuild an equivalent cache from it (see
        :func:`repro.exec.engine.worker_cache`) and write envelopes
        directly into the shared store.
        """
        return (self.root, self.salt)

    def key_for(self, cell_payload: str) -> str:
        """Cache key: SHA-256 of the salt and the canonical cell JSON."""
        return hashlib.sha256(
            (self.salt + "\n" + cell_payload).encode()
        ).hexdigest()

    def _path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    def _meta_path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}{_META_SUFFIX}")

    def _read(self, key: str) -> Optional[str]:
        """Envelope bytes without touching the hit/miss counters."""
        try:
            with open(self._path_for(key), "r") as handle:
                return handle.read()
        except OSError:
            return None

    def get(self, key: str) -> Optional[str]:
        """The stored envelope string, or ``None`` on a miss."""
        payload = self._read(key)
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def lookup(self, key: str, require_traced: bool = False) -> Optional[str]:
        """A *usable* envelope for this run, or ``None``.

        Counter-accounted: a hit is an envelope the caller can actually
        use.  With ``require_traced`` an untraced entry is a miss — and
        when the metadata sidecar already says the entry is untraced,
        the envelope is never even read from disk.
        """
        if require_traced and self.traced(key) is False:
            self.misses += 1
            return None
        payload = self._read(key)
        if payload is None:
            self.misses += 1
            return None
        if require_traced:
            from repro.exec.serialize import envelope_is_traced

            if not envelope_is_traced(payload):
                self.misses += 1
                return None
        self.hits += 1
        return payload

    def _write_atomic(self, path: str, payload: str) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def put(
        self,
        key: str,
        payload: str,
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Store an envelope atomically (temp file + rename).

        ``meta`` additionally writes the metadata sidecar — envelope
        first, so a crash between the two leaves a readable entry with
        no sidecar, which every reader handles.
        """
        self._write_atomic(self._path_for(key), payload)
        if meta is not None:
            self._write_atomic(
                self._meta_path_for(key),
                json.dumps(meta, sort_keys=True, separators=(",", ":")),
            )

    def get_meta(self, key: str) -> Optional[Dict[str, Any]]:
        """The entry's metadata sidecar, or ``None`` (absent/corrupt)."""
        try:
            with open(self._meta_path_for(key), "r") as handle:
                meta = json.load(handle)
        except (OSError, ValueError):
            return None
        return meta if isinstance(meta, dict) else None

    def traced(self, key: str) -> Optional[bool]:
        """Whether the entry carries trace events, from the sidecar alone.

        ``None`` means unknown (no sidecar — a pre-sidecar entry, or no
        entry at all); callers then fall back to reading the envelope.
        """
        meta = self.get_meta(key)
        if meta is None or not isinstance(meta.get("traced"), bool):
            return None
        return meta["traced"]

    def wall_seconds(self, key: str) -> Optional[float]:
        """The entry's recorded execution time, or ``None``."""
        meta = self.get_meta(key)
        if meta is None:
            return None
        wall = meta.get("wall_seconds")
        return float(wall) if isinstance(wall, (int, float)) else None

    def sweep_orphans(
        self, max_age_seconds: float = ORPHAN_TMP_AGE_SECONDS
    ) -> int:
        """Remove ``.tmp`` orphans left by crashed writers; return count.

        A worker killed between :func:`tempfile.mkstemp` and
        :func:`os.replace` in :meth:`_write_atomic` leaks a ``.tmp``
        file that no lookup, :meth:`entry_count`, or (previously)
        :meth:`clear` would ever touch.  Only files older than
        ``max_age_seconds`` are removed — pass ``0`` to sweep
        unconditionally (as :meth:`clear` does; nothing can be in
        flight for a store being cleared).
        """
        removed = 0
        if not os.path.isdir(self.root):
            return 0
        cutoff = time.time() - max_age_seconds
        for prefix in os.listdir(self.root):
            subdir = os.path.join(self.root, prefix)
            if not os.path.isdir(subdir):
                continue
            for name in os.listdir(subdir):
                if not name.endswith(_TMP_SUFFIX):
                    continue
                path = os.path.join(subdir, name)
                try:
                    if max_age_seconds <= 0 or os.path.getmtime(path) <= cutoff:
                        os.unlink(path)
                        removed += 1
                except OSError:
                    # The writer finished (os.replace) or a concurrent
                    # sweep won the race; either way the orphan is gone.
                    pass
        return removed

    def entry_count(self) -> int:
        """Number of cached envelopes currently on disk."""
        count = 0
        if not os.path.isdir(self.root):
            return 0
        for prefix in os.listdir(self.root):
            subdir = os.path.join(self.root, prefix)
            if os.path.isdir(subdir):
                count += sum(
                    1
                    for name in os.listdir(subdir)
                    if name.endswith(".json")
                    and not name.endswith(_META_SUFFIX)
                )
        return count

    def clear(self) -> int:
        """Delete every cached envelope (and sidecar); returns how many
        envelopes were removed.  Also sweeps ``.tmp`` orphans regardless
        of age, so a cleared cache directory is actually empty."""
        removed = 0
        if not os.path.isdir(self.root):
            return 0
        self.sweep_orphans(max_age_seconds=0.0)
        for prefix in os.listdir(self.root):
            subdir = os.path.join(self.root, prefix)
            if not os.path.isdir(subdir):
                continue
            for name in os.listdir(subdir):
                if name.endswith(".json"):
                    os.unlink(os.path.join(subdir, name))
                    if not name.endswith(_META_SUFFIX):
                        removed += 1
            try:
                os.rmdir(subdir)
            except OSError:
                pass
        return removed


#: The picklable identity a worker rebuilds a cache from.
CacheSpec = tuple
