"""The sweep engine: run a grid of cells, serially or in parallel.

:class:`SweepEngine` executes :class:`~repro.exec.cells.SweepCell` grids
with three guarantees:

**Determinism.**  Results are collected in cell order, and both
execution paths run the *same* per-cell core
(:func:`_execute_one`), so ``jobs=4`` output is byte-identical to
``jobs=1`` output.  Before a cell runs, the worker seeds the *global*
``random`` module from a hash of the cell itself — any stray global-RNG
use inside a method costs determinism neither across processes (fresh
interpreter state) nor across grid orders (the seed depends only on the
cell) — and the caller's RNG state is saved and restored around the
cell, so an in-process run cannot clobber it.

**Caching.**  With a :class:`~repro.exec.cache.ResultCache` attached,
each cell's envelope is stored under its content hash; a warm rerun of
an unchanged grid executes zero workloads.  Executed cells write their
own envelope into the store *from the worker process* (the store's
atomic-write path makes concurrent same-key writes safe) and ship back
only the key, so large traced envelopes never cross the IPC queue.  A
cached envelope without trace events does not satisfy a tracing run —
the cell re-executes and the traced envelope replaces the entry.

**Tracing.**  With ``collect_events=True``, each worker records its
cell's device events into an in-memory sink and ships them back inside
the envelope; the parent merges them in cell order with a continuous
sequence numbering, equivalent to a serial traced run.

Scheduling
----------
The engine owns a **persistent worker pool**: it spawns lazily on the
first parallel ``run()`` and is reused across calls, so pool startup
and per-process imports are paid once per sweep *session*, not once per
grid (``with SweepEngine(jobs=4) as engine: ...`` scopes the pool;
:meth:`SweepEngine.close` releases it explicitly).

Pending cells are dispatched **longest-first** under a cost model:
an ``ops x records`` static heuristic
(:func:`estimate_cell_units`), refined by wall times observed earlier
in the session (per ``(method, runner)`` rates) and by exact per-cell
wall times persisted alongside cache entries.  Cells are grouped into
cost-balanced chunks (expensive cells travel alone, cheap cells share a
chunk) so a handful of slow cells cannot serialize behind each other at
the tail of the grid.  Results still come back in cell order — the
dispatch order is observable only through
:attr:`SweepOutcome.dispatch_order` (and ``repro sweep --profile``).

When neither a cache nor tracing needs the canonical JSON form, results
skip it entirely: the worker ships the decoded result object itself and
the parent's encode/decode round trip disappears (custom runners must
return JSON-pure dicts for this to be indistinguishable, which the
runner contract already requires).
"""

from __future__ import annotations

import importlib
import math
import random
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.registry import create_method
from repro.exec.cache import ResultCache
from repro.exec.cells import SweepCell
from repro.exec.serialize import (
    cell_seed,
    decode_cell,
    decode_envelope,
    encode_cell,
    encode_envelope,
)
from repro.obs.sinks import ListSink
from repro.obs.spans import span_collection
from repro.obs.tracer import RecordingTracer, TraceEvent, Tracer
from repro.storage.device import SimulatedDevice
from repro.workloads.runner import WorkloadResult, run_workload

#: Salt for per-cell seeds.  Fixed, so seeds (and therefore results)
#: are stable across library versions unless a cell itself changes.
_SEED_SALT = "repro.exec"

CellResult = Union[WorkloadResult, Dict[str, Any]]

#: Per-process memo of resolved runner references: worker processes
#: resolve each ``"module:function"`` once, not once per cell.
_RUNNER_CACHE: Dict[str, Callable[..., CellResult]] = {}

#: Per-process memo of worker-side cache handles, keyed by
#: ``(root, salt)``.  Workers of one engine share one store; the
#: handles themselves are tiny (a path and two counters).
_WORKER_CACHE_HANDLES: Dict[Tuple[str, str], ResultCache] = {}


def resolve_runner(reference: str) -> Callable[..., CellResult]:
    """Resolve a ``"module:function"`` runner reference (memoized).

    Resolution happens inside the executing process, so custom runners
    (e.g. ``benchmarks.harness:run_table1_cell``) only need to be
    importable, not picklable.  Each process resolves a reference once
    and reuses the callable for every subsequent cell.
    """
    runner = _RUNNER_CACHE.get(reference)
    if runner is not None:
        return runner
    module_name, sep, function_name = reference.partition(":")
    if not sep or not module_name or not function_name:
        raise ValueError(
            f"runner reference {reference!r} is not of the form 'module:function'"
        )
    module = importlib.import_module(module_name)
    try:
        runner = getattr(module, function_name)
    except AttributeError:
        raise AttributeError(
            f"module {module_name!r} has no runner {function_name!r}"
        ) from None
    _RUNNER_CACHE[reference] = runner
    return runner


def worker_cache(spec: Optional[Tuple[str, str]]) -> Optional[ResultCache]:
    """The executing process's handle on the cache named by ``spec``.

    ``spec`` is :meth:`ResultCache.spec` — ``(root, salt)`` — or
    ``None`` for no cache.  Handles are memoized per process.
    """
    if spec is None:
        return None
    handle = _WORKER_CACHE_HANDLES.get(spec)
    if handle is None:
        root, salt = spec
        handle = ResultCache(root=root, salt=salt)
        _WORKER_CACHE_HANDLES[spec] = handle
    return handle


def run_workload_cell(
    cell: SweepCell, tracer: Optional[Tracer] = None
) -> WorkloadResult:
    """The standard runner: build the method, run the cell's workload.

    Builds a fresh device from the cell's configuration (attaching
    ``tracer`` when given), constructs the method through the registry
    with the cell's overrides, and measures the spec end to end.
    """
    device = SimulatedDevice(
        block_bytes=cell.block_bytes,
        cost_model=cell.cost_model,
        name=cell.display_label,
    )
    if tracer is not None:
        device.set_tracer(tracer)
    method = create_method(cell.method, device=device, **cell.override_kwargs())
    return run_workload(method, cell.spec)


def _run_cell(
    cell_payload: str, collect_events: bool
) -> Tuple[CellResult, Optional[list]]:
    """Execute one encoded cell; returns ``(result, events-or-None)``.

    The single execution core both paths share.  The caller's global
    RNG state is saved and restored around the cell, so in-process
    execution cannot clobber it — and inside the bracket the RNG is
    seeded from the cell alone, so results depend on neither grid order
    nor process placement.
    """
    cell = decode_cell(cell_payload)
    runner = resolve_runner(cell.runner)
    rng_state = random.getstate()
    try:
        random.seed(cell_seed(cell_payload, _SEED_SALT))
        if collect_events:
            # Traced runs also collect spans: every event is stamped
            # with the phase path active when it was emitted, so a
            # SpanProfile built from the merged event stream is
            # identical for serial, parallel and cache-replayed
            # executions.
            sink = ListSink()
            tracer: Optional[Tracer] = RecordingTracer(sink)
            with span_collection():
                result = runner(cell, tracer)
            return result, sink.events
        return runner(cell, None), None
    finally:
        random.setstate(rng_state)


def execute_cell_payload(args: Tuple[str, bool]) -> str:
    """Execute one encoded cell; returns its encoded envelope.

    The canonical-envelope entry point, kept for callers that want the
    byte form directly; the engine itself dispatches
    :func:`_execute_one`, which skips the envelope when nothing needs
    it.
    """
    cell_payload, collect_events = args
    result, events = _run_cell(cell_payload, collect_events)
    return encode_envelope(result, events)


#: A unit of dispatch: the encoded cell, the tracing flag, and the
#: cache identity (``None`` for no cache).
Task = Tuple[str, bool, Optional[Tuple[str, str]]]

#: Outcome tags: what crossed the IPC queue back to the parent.
_SHIPPED_KEY = "key"  # envelope written to the cache; value is the key
_SHIPPED_ENVELOPE = "envelope"  # canonical envelope string
_SHIPPED_RESULT = "result"  # the decoded result object itself


def _execute_one(
    task: Task, cache: Optional[ResultCache] = None
) -> Tuple[str, Any, float]:
    """Execute one task; returns ``(tag, value, wall_seconds)``.

    With a cache attached the worker writes the envelope (and its
    metadata sidecar) into the content-addressed store itself — the
    store's atomic temp-file+rename writes make concurrent same-key
    writers safe, and deterministic cells produce identical bytes
    anyway — and ships back only the key.  Tracing without a cache
    ships the envelope (the events must reach the parent).  Otherwise
    the result object travels as-is: no canonical form is needed, so
    none is built.
    """
    payload, collect_events, cache_spec = task
    if cache is None:
        cache = worker_cache(cache_spec)
    started = time.perf_counter()
    result, events = _run_cell(payload, collect_events)
    wall = time.perf_counter() - started
    if cache is not None:
        envelope = encode_envelope(result, events)
        key = cache.key_for(payload)
        cache.put(
            key,
            envelope,
            meta={"traced": events is not None, "wall_seconds": wall},
        )
        return (_SHIPPED_KEY, key, wall)
    if collect_events:
        return (_SHIPPED_ENVELOPE, encode_envelope(result, events), wall)
    return (_SHIPPED_RESULT, result, wall)


def _execute_chunk(tasks: List[Task]) -> List[Tuple[str, Any, float]]:
    """Worker entry point: execute a chunk of tasks back to back."""
    return [_execute_one(task) for task in tasks]


def _worker_init() -> None:
    """Pool initializer: pre-import the execution stack.

    Under the ``fork`` start method children inherit the parent's
    modules and this is nearly free; under ``spawn`` it front-loads the
    import cost into pool startup — paid once per worker per session —
    instead of into the first cell each worker touches.
    """
    import repro.core.registry  # noqa: F401
    import repro.exec.engine  # noqa: F401
    import repro.workloads.runner  # noqa: F401


def estimate_cell_units(cell: SweepCell) -> float:
    """Static cost heuristic for one cell, in abstract *units*.

    A cell's wall time is roughly a bulk load of ``initial_records``
    plus ``operations`` probes, each touching ``O(log N)`` blocks —
    ``records + ops x log2(records)`` orders grids well without having
    run anything.  Observed wall times refine the scale per
    ``(method, runner)``; the heuristic only has to rank.
    """
    spec = cell.spec
    records = max(1, int(spec.initial_records))
    operations = max(1, int(spec.operations))
    return records + operations * math.log2(records + 2)


def _build_chunks(
    order: List[int], predicted: Dict[int, float], workers: int
) -> List[List[int]]:
    """Group cost-ordered cell indices into cost-balanced chunks.

    Aims for several chunks per worker so the pool can rebalance; a
    chunk closes when it holds its share of the predicted total (an
    expensive cell fills a chunk alone) or its share of the count
    (cheap cells amortize IPC without monopolizing a worker).  Replaces
    the old hardcoded ``min(4, ...)`` chunksize.
    """
    if not order:
        return []
    target_chunks = max(1, workers * 4)
    cost_budget = sum(predicted[index] for index in order) / target_chunks
    max_len = max(1, math.ceil(len(order) / target_chunks))
    chunks: List[List[int]] = []
    current: List[int] = []
    current_cost = 0.0
    for index in order:
        current.append(index)
        current_cost += predicted[index]
        if current_cost >= cost_budget or len(current) >= max_len:
            chunks.append(current)
            current = []
            current_cost = 0.0
    if current:
        chunks.append(current)
    return chunks


@dataclass
class SweepOutcome:
    """Everything a sweep produced, in cell order."""

    cells: List[SweepCell]
    results: List[CellResult]
    executed_cells: int
    cached_cells: int
    events: Optional[List[TraceEvent]] = None
    #: Per-cell wall seconds for executed cells (``None`` where cached).
    cell_seconds: List[Optional[float]] = field(default_factory=list)
    #: Scheduler's per-cell cost predictions (seconds), cell order.
    predicted_seconds: List[float] = field(default_factory=list)
    #: Executed cell indices in the order they were handed out
    #: (longest-predicted first).
    dispatch_order: List[int] = field(default_factory=list)

    def by_label(self) -> Dict[str, CellResult]:
        """Results keyed by cell label (labels must be unique to use this)."""
        mapping: Dict[str, CellResult] = {}
        for cell, result in zip(self.cells, self.results):
            label = cell.display_label
            if label in mapping:
                raise ValueError(f"duplicate cell label {label!r} in sweep")
            mapping[label] = result
        return mapping


#: Fallback seconds-per-unit before any cell has been observed.  Only
#: the *ordering* matters until a real rate is learned; the magnitude
#: just keeps predictions in a plausible range for display.
_DEFAULT_RATE = 2e-6

#: EMA weight of the newest observation when refining a rate.
_RATE_ALPHA = 0.4


class SweepEngine:
    """Executes cell grids with optional parallelism and caching.

    The engine owns its worker pool: the pool spawns lazily on the
    first parallel :meth:`run` and persists across calls until
    :meth:`close` (or the end of a ``with`` block), so a session of
    many grids pays pool startup once.  Observed cell wall times also
    persist across calls and sharpen the scheduler's cost model.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` runs in-process (no pool); the
        results are identical either way.
    cache:
        A :class:`~repro.exec.cache.ResultCache`, or ``None`` to always
        execute.  Workers write envelopes into the store themselves and
        ship back keys.
    collect_events:
        Record each cell's trace events and merge them (renumbered, in
        cell order) into :attr:`SweepOutcome.events`.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        collect_events: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.cache = cache
        self.collect_events = collect_events
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Observed seconds-per-unit, per (method, runner) and overall.
        self._rates: Dict[Tuple[str, str], float] = {}
        self._global_rate: Optional[float] = None

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool (idempotent).

        The engine remains usable — the next parallel :meth:`run`
        simply spawns a fresh pool.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_worker_init
            )
        return self._pool

    def warm(self) -> None:
        """Spawn every worker now instead of on first use.

        Useful before timing a grid: pool startup then happens outside
        the measured window, matching the persistent-pool usage pattern
        where spawn cost amortizes over a session.
        """
        if self.jobs <= 1:
            return
        pool = self._ensure_pool()
        # Each task lingers briefly so no worker reports idle while the
        # submits are still landing — the executor then spawns its full
        # complement instead of reusing the first worker for everything.
        for future in [
            pool.submit(time.sleep, 0.05) for _ in range(self.jobs)
        ]:
            future.result()

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def _predict_seconds(self, cell: SweepCell, key: Optional[str]) -> float:
        """Predicted wall seconds for a pending cell.

        Exact wall time persisted alongside a cache entry wins (the
        traced-rerun case: the entry cannot satisfy this run, but the
        cell was executed before under this very key).  Otherwise the
        static unit estimate is scaled by the best observed rate —
        per ``(method, runner)`` first, the session-wide rate second, a
        fixed default last.
        """
        if self.cache is not None and key is not None:
            observed = self.cache.wall_seconds(key)
            if observed is not None and observed > 0:
                return observed
        units = estimate_cell_units(cell)
        rate = self._rates.get((cell.method, cell.runner))
        if rate is None:
            rate = self._global_rate
        if rate is None:
            rate = _DEFAULT_RATE
        return units * rate

    def _observe(self, cell: SweepCell, wall: float) -> None:
        """Fold an executed cell's wall time into the observed rates."""
        units = estimate_cell_units(cell)
        if units <= 0 or wall <= 0:
            return
        rate = wall / units
        signature = (cell.method, cell.runner)
        previous = self._rates.get(signature)
        self._rates[signature] = (
            rate
            if previous is None
            else previous + _RATE_ALPHA * (rate - previous)
        )
        self._global_rate = (
            rate
            if self._global_rate is None
            else self._global_rate + _RATE_ALPHA * (rate - self._global_rate)
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, cells: Sequence[SweepCell]) -> SweepOutcome:
        """Execute every cell; results come back in cell order."""
        cells = list(cells)
        count = len(cells)
        payloads = [encode_cell(cell) for cell in cells]
        envelopes: List[Optional[str]] = [None] * count
        raw_results: List[Optional[CellResult]] = [None] * count
        shipped_raw = [False] * count
        cell_seconds: List[Optional[float]] = [None] * count

        keys: List[Optional[str]] = [None] * count
        if self.cache is not None:
            for index, payload in enumerate(payloads):
                key = self.cache.key_for(payload)
                keys[index] = key
                envelopes[index] = self.cache.lookup(
                    key, require_traced=self.collect_events
                )

        pending = [
            index
            for index in range(count)
            if envelopes[index] is None
        ]
        predicted = {
            index: self._predict_seconds(cells[index], keys[index])
            for index in pending
        }
        # Longest-first dispatch: the most expensive cells start first,
        # so the tail of the grid drains cheap cells, not slow ones.
        dispatch_order = sorted(
            pending, key=lambda index: (-predicted[index], index)
        )
        cache_spec = None if self.cache is None else self.cache.spec()
        tasks: Dict[int, Task] = {
            index: (payloads[index], self.collect_events, cache_spec)
            for index in pending
        }
        shipped: Dict[int, Tuple[str, Any, float]] = {}
        if self.jobs > 1 and len(pending) > 1:
            workers = min(self.jobs, len(pending))
            pool = self._ensure_pool()
            chunks = _build_chunks(dispatch_order, predicted, workers)
            futures = {
                pool.submit(
                    _execute_chunk, [tasks[index] for index in chunk]
                ): chunk
                for chunk in chunks
            }
            for future in as_completed(futures):
                for index, outcome in zip(futures[future], future.result()):
                    shipped[index] = outcome
        else:
            for index in dispatch_order:
                shipped[index] = _execute_one(tasks[index], cache=self.cache)

        for index in pending:
            tag, value, wall = shipped[index]
            cell_seconds[index] = wall
            self._observe(cells[index], wall)
            if tag == _SHIPPED_KEY:
                stored = (
                    None if self.cache is None else self.cache._read(value)
                )
                if stored is None:
                    raise RuntimeError(
                        f"worker reported envelope {value!r} written to "
                        f"{getattr(self.cache, 'root', None)!r}, but it "
                        f"cannot be read back"
                    )
                envelopes[index] = stored
            elif tag == _SHIPPED_ENVELOPE:
                envelopes[index] = value
            else:
                raw_results[index] = value
                shipped_raw[index] = True

        results: List[CellResult] = []
        merged_events: Optional[List[TraceEvent]] = (
            [] if self.collect_events else None
        )
        for index in range(count):
            if shipped_raw[index]:
                results.append(raw_results[index])
                continue
            decoded = decode_envelope(envelopes[index])
            results.append(decoded["result"])
            if merged_events is not None and decoded["events"]:
                for event_dict in decoded["events"]:
                    fields = dict(event_dict)
                    fields["seq"] = len(merged_events)
                    merged_events.append(TraceEvent(**fields))
        return SweepOutcome(
            cells=cells,
            results=results,
            executed_cells=len(pending),
            cached_cells=count - len(pending),
            events=merged_events,
            cell_seconds=cell_seconds,
            predicted_seconds=[
                predicted.get(index, 0.0) for index in range(count)
            ],
            dispatch_order=dispatch_order,
        )
