"""The sweep engine: run a grid of cells, serially or in parallel.

:class:`SweepEngine` executes :class:`~repro.exec.cells.SweepCell` grids
with three guarantees:

**Determinism.**  Results are collected in cell order, and both
execution paths round-trip through the same canonical JSON envelope
(:mod:`repro.exec.serialize`), so ``jobs=4`` output is byte-identical to
``jobs=1`` output.  Before a cell runs, the worker seeds the *global*
``random`` module from a hash of the cell itself — any stray global-RNG
use inside a method costs determinism neither across processes (fresh
interpreter state) nor across grid orders (the seed depends only on the
cell).

**Caching.**  With a :class:`~repro.exec.cache.ResultCache` attached,
each cell's envelope is stored under its content hash; a warm rerun of
an unchanged grid executes zero workloads.  A cached envelope without
trace events does not satisfy a tracing run — the cell re-executes and
the traced envelope replaces the entry.

**Tracing.**  With ``collect_events=True``, each worker records its
cell's device events into an in-memory sink and ships them back inside
the envelope; the parent merges them in cell order with a continuous
sequence numbering, equivalent to a serial traced run.
"""

from __future__ import annotations

import importlib
import random
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.registry import create_method
from repro.exec.cache import ResultCache
from repro.exec.cells import SweepCell
from repro.exec.serialize import (
    cell_seed,
    decode_cell,
    decode_envelope,
    encode_cell,
    encode_envelope,
    envelope_is_traced,
)
from repro.obs.sinks import ListSink
from repro.obs.spans import span_collection
from repro.obs.tracer import RecordingTracer, TraceEvent, Tracer
from repro.storage.device import SimulatedDevice
from repro.workloads.runner import WorkloadResult, run_workload

#: Salt for per-cell seeds.  Fixed, so seeds (and therefore results)
#: are stable across library versions unless a cell itself changes.
_SEED_SALT = "repro.exec"

CellResult = Union[WorkloadResult, Dict[str, Any]]


def resolve_runner(reference: str) -> Callable[..., CellResult]:
    """Resolve a ``"module:function"`` runner reference.

    Resolution happens inside the executing process, so custom runners
    (e.g. ``benchmarks.harness:run_table1_cell``) only need to be
    importable, not picklable.
    """
    module_name, sep, function_name = reference.partition(":")
    if not sep or not module_name or not function_name:
        raise ValueError(
            f"runner reference {reference!r} is not of the form 'module:function'"
        )
    module = importlib.import_module(module_name)
    try:
        return getattr(module, function_name)
    except AttributeError:
        raise AttributeError(
            f"module {module_name!r} has no runner {function_name!r}"
        ) from None


def run_workload_cell(
    cell: SweepCell, tracer: Optional[Tracer] = None
) -> WorkloadResult:
    """The standard runner: build the method, run the cell's workload.

    Builds a fresh device from the cell's configuration (attaching
    ``tracer`` when given), constructs the method through the registry
    with the cell's overrides, and measures the spec end to end.
    """
    device = SimulatedDevice(
        block_bytes=cell.block_bytes,
        cost_model=cell.cost_model,
        name=cell.display_label,
    )
    if tracer is not None:
        device.set_tracer(tracer)
    method = create_method(cell.method, device=device, **cell.override_kwargs())
    return run_workload(method, cell.spec)


def execute_cell_payload(args: Tuple[str, bool]) -> str:
    """Execute one encoded cell; returns its encoded envelope.

    Module-level so :class:`ProcessPoolExecutor` can dispatch it.  This
    is the *only* execution path — the serial loop calls it too, which
    is what makes serial and parallel runs byte-identical.
    """
    cell_payload, collect_events = args
    cell = decode_cell(cell_payload)
    random.seed(cell_seed(cell_payload, _SEED_SALT))
    runner = resolve_runner(cell.runner)
    if collect_events:
        # Traced runs also collect spans: every event is stamped with the
        # phase path active when it was emitted, so a SpanProfile built
        # from the merged event stream is identical for serial, parallel
        # and cache-replayed executions.
        sink = ListSink()
        tracer: Optional[Tracer] = RecordingTracer(sink)
        with span_collection():
            result = runner(cell, tracer)
        return encode_envelope(result, sink.events)
    result = runner(cell, None)
    return encode_envelope(result, None)


@dataclass
class SweepOutcome:
    """Everything a sweep produced, in cell order."""

    cells: List[SweepCell]
    results: List[CellResult]
    executed_cells: int
    cached_cells: int
    events: Optional[List[TraceEvent]] = None

    def by_label(self) -> Dict[str, CellResult]:
        """Results keyed by cell label (labels must be unique to use this)."""
        mapping: Dict[str, CellResult] = {}
        for cell, result in zip(self.cells, self.results):
            label = cell.display_label
            if label in mapping:
                raise ValueError(f"duplicate cell label {label!r} in sweep")
            mapping[label] = result
        return mapping


class SweepEngine:
    """Executes cell grids with optional parallelism and caching.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` runs in-process (no pool); the
        results are identical either way.
    cache:
        A :class:`~repro.exec.cache.ResultCache`, or ``None`` to always
        execute.
    collect_events:
        Record each cell's trace events and merge them (renumbered, in
        cell order) into :attr:`SweepOutcome.events`.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        collect_events: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.cache = cache
        self.collect_events = collect_events

    def run(self, cells: Sequence[SweepCell]) -> SweepOutcome:
        """Execute every cell; results come back in cell order."""
        cells = list(cells)
        payloads = [encode_cell(cell) for cell in cells]
        envelopes: List[Optional[str]] = [None] * len(cells)

        keys: List[Optional[str]] = [None] * len(cells)
        if self.cache is not None:
            for index, payload in enumerate(payloads):
                key = self.cache.key_for(payload)
                keys[index] = key
                stored = self.cache.get(key)
                if stored is None:
                    continue
                if self.collect_events and not envelope_is_traced(stored):
                    # Cached result lacks the events this run needs.
                    continue
                envelopes[index] = stored

        pending = [index for index, env in enumerate(envelopes) if env is None]
        work = [(payloads[index], self.collect_events) for index in pending]
        if self.jobs > 1 and len(pending) > 1:
            workers = min(self.jobs, len(pending))
            # Hand each worker a slice of cells per IPC round trip instead
            # of one: big grids of small cells would otherwise spend their
            # wall clock on pickling and queue hops, not on workloads.
            # Capped at 4 so a handful of slow cells cannot serialize
            # behind each other at the tail of the grid.
            chunksize = max(1, min(4, len(work) // (workers * 4)))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                fresh = list(
                    pool.map(execute_cell_payload, work, chunksize=chunksize)
                )
        else:
            fresh = [execute_cell_payload(item) for item in work]
        for index, envelope in zip(pending, fresh):
            envelopes[index] = envelope
            if self.cache is not None:
                self.cache.put(keys[index], envelope)

        results: List[CellResult] = []
        merged_events: Optional[List[TraceEvent]] = (
            [] if self.collect_events else None
        )
        for envelope in envelopes:
            decoded = decode_envelope(envelope)
            results.append(decoded["result"])
            if merged_events is not None and decoded["events"]:
                for event_dict in decoded["events"]:
                    fields = dict(event_dict)
                    fields["seq"] = len(merged_events)
                    merged_events.append(TraceEvent(**fields))
        return SweepOutcome(
            cells=cells,
            results=results,
            executed_cells=len(pending),
            cached_cells=len(cells) - len(pending),
            events=merged_events,
        )
