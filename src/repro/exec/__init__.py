"""Parallel experiment execution.

Every artifact this library reproduces (the propositions, Table 1,
Figures 1-3) is a grid of independent *cells*: one access method, one
workload, one device configuration.  This package executes such grids —
serially or fanned out over worker processes — with deterministic
results and a content-addressed on-disk cache, so re-running an
unchanged grid costs no workload execution at all.

* :mod:`repro.exec.cells` — :class:`SweepCell`, the declarative cell.
* :mod:`repro.exec.serialize` — canonical JSON for cells and results
  (the byte-identical determinism contract).
* :mod:`repro.exec.cache` — the ``.repro-cache/`` result store.
* :mod:`repro.exec.engine` — :class:`SweepEngine`, which runs grids.
"""

from repro.exec.cache import ResultCache
from repro.exec.cells import SweepCell
from repro.exec.engine import SweepEngine, SweepOutcome, run_workload_cell

__all__ = [
    "ResultCache",
    "SweepCell",
    "SweepEngine",
    "SweepOutcome",
    "run_workload_cell",
]
