"""Pickle-stable sentinels shared by the differential structures.

Tombstones are compared by identity (``value is TOMBSTONE``), so the
sentinel must survive pickling as the *same* object — a bare
``object()`` would come back as a fresh instance and silently leak
through every identity check after a save/restore.  The singleton's
``__reduce__`` pins deserialization to the module-level instance.
"""

from __future__ import annotations


class _TombstoneType:
    """Singleton marker for deleted keys inside logs, runs and buffers."""

    _instance: "_TombstoneType" = None

    def __new__(cls) -> "_TombstoneType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (_TombstoneType, ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<tombstone>"


#: The canonical deletion marker.
TOMBSTONE = _TombstoneType()
