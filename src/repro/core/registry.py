"""Registry of access-method implementations.

Every structure registers itself under a short name, so the workload
runner, the wizard and the benchmark harness can enumerate and construct
methods uniformly.  Constructors receive keyword arguments (tuning knobs
plus an optional ``device``).
"""

from __future__ import annotations

from typing import Callable, Dict, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.interfaces import AccessMethod

MethodFactory = Callable[..., "AccessMethod"]

_REGISTRY: Dict[str, MethodFactory] = {}


def register_method(name: str, factory: MethodFactory) -> None:
    """Register ``factory`` under ``name``.  Re-registration is an error."""
    if name in _REGISTRY:
        raise ValueError(f"access method {name!r} is already registered")
    _REGISTRY[name] = factory


def create_method(name: str, **kwargs) -> "AccessMethod":
    """Instantiate the access method registered under ``name``."""
    _ensure_methods_loaded()
    factory = _REGISTRY.get(name)
    if factory is None:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown access method {name!r}; known: {known}")
    return factory(**kwargs)


def available_methods() -> List[str]:
    """Names of every registered access method, sorted."""
    _ensure_methods_loaded()
    return sorted(_REGISTRY)


def _ensure_methods_loaded() -> None:
    """Import the methods package so its modules self-register."""
    import repro.methods  # noqa: F401  (import side effect: registration)
