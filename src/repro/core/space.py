"""Geometry of the RUM design space (Figures 1 and 3).

The paper visualizes access methods on a triangle whose corners are
*read-optimized* (top), *write-optimized* (bottom left) and
*space-optimized* (bottom right).  A structure sits near a corner when it
is good on that overhead and pays on the others.

We project a measured :class:`~repro.core.rum.RUMProfile` onto the
triangle with barycentric weights proportional to *goodness* on each
axis: goodness is ``1 / overhead`` so the theoretical optimum (ratio 1.0)
has weight 1 and an unbounded overhead has weight 0.  A structure optimal
on exactly one axis lands on that corner; a structure equally mediocre on
all three lands in the center, matching the paper's qualitative picture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.rum import RUMProfile

#: Corner labels, reused by the triangle renderer and the wizard.
CORNER_READ = "read-optimized"
CORNER_WRITE = "write-optimized"
CORNER_SPACE = "space-optimized"

#: 2-D positions of the corners in the unit triangle (x, y), y up.
CORNER_POSITIONS: Dict[str, Tuple[float, float]] = {
    CORNER_READ: (0.5, math.sqrt(3.0) / 2.0),
    CORNER_WRITE: (0.0, 0.0),
    CORNER_SPACE: (1.0, 0.0),
}


@dataclass(frozen=True)
class RUMPoint:
    """A profile placed in the triangle."""

    name: str
    x: float
    y: float
    weights: Tuple[float, float, float]  # (read, write, space) goodness

    def distance_to(self, corner: str) -> float:
        """Euclidean distance from this placement to a corner."""
        cx, cy = CORNER_POSITIONS[corner]
        return math.hypot(self.x - cx, self.y - cy)


def goodness(overhead: float) -> float:
    """Map an amplification ratio in [1, inf) to goodness in (0, 1].

    Ratios below 1 cannot occur under the paper's definitions but are
    clamped defensively; infinite/NaN overheads map to 0.
    """
    if overhead is None or math.isnan(overhead) or math.isinf(overhead):
        return 0.0
    return 1.0 / max(overhead, 1.0)


def barycentric_weights(profile: RUMProfile) -> Tuple[float, float, float]:
    """Normalized (read, write, space) goodness weights of a profile.

    A profile that is infinitely bad on every axis (weight sum 0) is
    placed at the centroid.
    """
    raw = (
        goodness(profile.read_overhead),
        goodness(profile.update_overhead),
        goodness(profile.memory_overhead),
    )
    total = sum(raw)
    if total == 0.0:
        return (1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0)
    return (raw[0] / total, raw[1] / total, raw[2] / total)


def project(profile: RUMProfile, name: str = "") -> RUMPoint:
    """Place a profile in the unit RUM triangle."""
    w_read, w_write, w_space = barycentric_weights(profile)
    rx, ry = CORNER_POSITIONS[CORNER_READ]
    wx, wy = CORNER_POSITIONS[CORNER_WRITE]
    sx, sy = CORNER_POSITIONS[CORNER_SPACE]
    x = w_read * rx + w_write * wx + w_space * sx
    y = w_read * ry + w_write * wy + w_space * sy
    return RUMPoint(
        name=name or profile.name,
        x=x,
        y=y,
        weights=(w_read, w_write, w_space),
    )


def nearest_corner(profile: RUMProfile) -> str:
    """The corner a profile sits closest to — its design-family label."""
    point = project(profile)
    return min(CORNER_POSITIONS, key=point.distance_to)


def project_field(profiles: Dict[str, RUMProfile]) -> Dict[str, RUMPoint]:
    """Place a *set* of profiles in the triangle, field-normalized.

    Absolute amplifications live on very different scales (block
    granularity puts RO in the tens while MO hovers near 1), so placing
    each profile independently squashes every structure onto one edge.
    Figure 1 is a *relative* picture: what matters is how each structure
    compares with the best-in-class on each axis.  Each overhead is
    divided by the field minimum on its axis, and goodness decays with
    the log of that ratio — best-in-class on an axis gets weight 1.
    """
    if not profiles:
        return {}
    floor_ro = min(p.read_overhead for p in profiles.values())
    floor_uo = min(p.update_overhead for p in profiles.values())
    floor_mo = min(p.memory_overhead for p in profiles.values())

    def relative_goodness(overhead: float, floor: float) -> float:
        if math.isinf(overhead) or math.isnan(overhead):
            return 0.0
        ratio = max(overhead / max(floor, 1e-12), 1.0)
        return 1.0 / (1.0 + math.log2(ratio))

    points: Dict[str, RUMPoint] = {}
    for name, profile in profiles.items():
        raw = (
            relative_goodness(profile.read_overhead, floor_ro),
            relative_goodness(profile.update_overhead, floor_uo),
            relative_goodness(profile.memory_overhead, floor_mo),
        )
        total = sum(raw) or 1.0
        weights = (raw[0] / total, raw[1] / total, raw[2] / total)
        rx, ry = CORNER_POSITIONS[CORNER_READ]
        wx, wy = CORNER_POSITIONS[CORNER_WRITE]
        sx, sy = CORNER_POSITIONS[CORNER_SPACE]
        points[name] = RUMPoint(
            name=name,
            x=weights[0] * rx + weights[1] * wx + weights[2] * sx,
            y=weights[0] * ry + weights[1] * wy + weights[2] * sy,
            weights=weights,
        )
    return points


def corner_affinity(profile: RUMProfile) -> Dict[str, float]:
    """Per-corner affinity in [0, 1]: the barycentric weight per corner."""
    w_read, w_write, w_space = barycentric_weights(profile)
    return {CORNER_READ: w_read, CORNER_WRITE: w_write, CORNER_SPACE: w_space}
