"""RUM overhead accounting — the paper's Section 2, executable.

The paper defines the three overheads as amplification ratios:

* **Read Overhead (RO)** — read amplification: total data read (auxiliary
  plus base) divided by the data the operation set out to retrieve.
* **Update Overhead (UO)** — write amplification: size of the physical
  updates performed for one logical update, divided by the size of the
  logical update.
* **Memory Overhead (MO)** — space amplification: space used for
  auxiliary plus base data, divided by the space of the base data alone.

The theoretical minimum of each ratio is 1.0.  This module measures the
ratios by snapshotting device counters around operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.obs.spans import span, spans_active
from repro.storage.device import IOStats
from repro.storage.layout import RECORD_BYTES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.interfaces import AccessMethod
    from repro.obs.live import WindowedRUM
    from repro.obs.metrics import WorkloadMetrics
    from repro.workloads.spec import Operation


@dataclass(frozen=True)
class RUMProfile:
    """A measured (RO, UO, MO) point for one access method + workload."""

    read_overhead: float
    update_overhead: float
    memory_overhead: float
    simulated_time: float = 0.0
    name: str = ""

    def __str__(self) -> str:
        return (
            f"RUM({self.name or 'method'}: RO={self.read_overhead:.2f}, "
            f"UO={self.update_overhead:.2f}, MO={self.memory_overhead:.2f})"
        )

    def dominates(self, other: "RUMProfile") -> bool:
        """True if this profile is at least as good on all three overheads
        and strictly better on at least one (Pareto dominance)."""
        at_least = (
            self.read_overhead <= other.read_overhead
            and self.update_overhead <= other.update_overhead
            and self.memory_overhead <= other.memory_overhead
        )
        strictly = (
            self.read_overhead < other.read_overhead
            or self.update_overhead < other.update_overhead
            or self.memory_overhead < other.memory_overhead
        )
        return at_least and strictly


@dataclass
class RUMAccumulator:
    """Accumulates per-operation byte counts into a final profile.

    Read operations contribute ``bytes_read / logical_bytes_retrieved``;
    update operations contribute ``bytes_written / logical_bytes_updated``.
    A miss (point query with no result) still "intended to read" one
    record, so its denominator is one record — otherwise misses would
    make RO undefined.

    ``flush_read_bytes`` holds reads performed by deferred maintenance
    (the terminal flush): a compaction that re-reads runs to merge them
    is doing work *on behalf of buffered updates*, not retrieving data
    for a query, so those bytes amplify UO, never RO.
    """

    read_bytes: int = 0
    retrieved_bytes: int = 0
    write_bytes: int = 0
    flush_read_bytes: int = 0
    updated_bytes: int = 0
    read_ops: int = 0
    update_ops: int = 0
    simulated_time: float = 0.0
    peak_memory_overhead: float = 1.0

    def sample_space(self, method: "AccessMethod") -> None:
        """Record the current space amplification if it is a new peak.

        Differential structures hold pending updates in buffers and
        deltas; measuring MO only after a final flush would hide that
        space.  The paper's MO is the space the structure *occupies*,
        so the profile reports the peak observed during the workload.
        """
        stats = method.stats()
        if stats.base_bytes > 0:
            self.peak_memory_overhead = max(
                self.peak_memory_overhead, stats.space_amplification
            )

    def record_read(self, io: IOStats, records_retrieved: int) -> None:
        """Account one read operation (point or range query)."""
        self.read_ops += 1
        self.read_bytes += io.read_bytes
        self.retrieved_bytes += max(records_retrieved, 1) * RECORD_BYTES
        self.simulated_time += io.simulated_time

    def record_update(self, io: IOStats, records_updated: int = 1) -> None:
        """Account one write operation (insert, update or delete)."""
        self.update_ops += 1
        self.write_bytes += io.write_bytes
        self.updated_bytes += max(records_updated, 1) * RECORD_BYTES
        self.simulated_time += io.simulated_time

    def record_read_batch(
        self, io: IOStats, operations: int, retrieved_units: int
    ) -> None:
        """Account a run of read operations from one counter window.

        ``retrieved_units`` is the sum over the run of
        ``max(records_retrieved, 1)`` — per-op reads add the same byte
        and denominator totals one operation at a time, so a batch
        window that covers only reads accumulates identically (the
        per-op deltas telescope into the window delta).
        """
        self.read_ops += operations
        self.read_bytes += io.read_bytes
        self.retrieved_bytes += retrieved_units * RECORD_BYTES
        self.simulated_time += io.simulated_time

    def record_update_batch(self, io: IOStats, operations: int) -> None:
        """Account a run of write operations from one counter window."""
        self.update_ops += operations
        self.write_bytes += io.write_bytes
        self.updated_bytes += operations * RECORD_BYTES
        self.simulated_time += io.simulated_time

    @property
    def read_overhead(self) -> float:
        """Aggregate read amplification over all read operations."""
        if self.retrieved_bytes == 0:
            return 1.0
        return self.read_bytes / self.retrieved_bytes

    @property
    def update_overhead(self) -> float:
        """Aggregate write amplification over all update operations.

        The numerator includes reads done by deferred maintenance
        (``flush_read_bytes``) — physical work the structure performs to
        apply logical updates, per the Section 2 definition.
        """
        if self.updated_bytes == 0:
            return 1.0
        return (self.write_bytes + self.flush_read_bytes) / self.updated_bytes

    def finish(self, method: "AccessMethod") -> RUMProfile:
        """Combine accumulated read/write ratios with the method's MO.

        MO is the larger of the final space amplification and the peak
        sampled during the workload (see :meth:`sample_space`).
        """
        stats = method.stats()
        return RUMProfile(
            read_overhead=self.read_overhead,
            update_overhead=self.update_overhead,
            memory_overhead=max(
                stats.space_amplification, self.peak_memory_overhead
            ),
            simulated_time=self.simulated_time,
            name=method.name,
        )


def measure_workload(
    method: "AccessMethod",
    operations: Iterable["Operation"],
    metrics: Optional["WorkloadMetrics"] = None,
    audit_every: int = 0,
    accumulator: Optional[RUMAccumulator] = None,
    live: Optional["WindowedRUM"] = None,
) -> RUMProfile:
    """Run ``operations`` against ``method`` and measure its RUM profile.

    Each operation is bracketed by device-counter snapshots; reads feed the
    RO ratio, writes feed the UO ratio, and MO is taken from the final
    space footprint.  Unknown keys on update/delete are skipped (the
    generators only emit valid operations, but adaptive workloads can
    race with deletions).

    When a :class:`~repro.obs.metrics.WorkloadMetrics` is supplied, each
    operation's blocks-touched count and simulated time are also recorded
    into a per-op-type histogram (the terminal flush under the label
    ``flush``) — the distribution behind the aggregate ratios.

    ``audit_every=N`` (opt-in, default off) calls :meth:`AccessMethod.audit`
    every N operations and once after the terminal flush, raising
    :class:`~repro.check.audit.AuditError` on the first violation — so a
    measurement run can double as an invariant sweep.  Audits use
    counter-free device inspection and do not perturb the profile.

    A caller-owned (fresh) ``accumulator`` can be supplied to read the
    integer numerators/denominators behind the final ratios afterwards —
    ``repro explain`` audits span attribution against them.

    A :class:`~repro.obs.live.WindowedRUM` passed as ``live`` receives
    every operation's integer deltas (at the operation's simulated
    completion time), the terminal flush and the space samples — the
    streaming per-window view whose sums conserve the accumulator's
    totals exactly.  Disabled (``live=None``, the default), the tap
    costs one ``is not None`` check per operation.

    When span collection is active (:func:`repro.obs.spans.span_collection`),
    every operation runs inside an ``op.<kind>`` root span and the
    terminal flush inside ``op.flush``, so trace events carry the
    operation category that the RO/UO attribution policy keys on.  The
    check happens once per call; with spans inactive the loop body is
    unchanged.
    """
    from repro.workloads.spec import OpKind  # local import to avoid a cycle

    def run_audit() -> None:
        violations = method.audit()
        if violations:
            from repro.check.audit import AuditError  # lazy: avoid a cycle

            raise AuditError(method.name, violations)

    if accumulator is None:
        accumulator = RUMAccumulator()
    device = method.device
    use_spans = spans_active()
    operation_index = 0
    for operation in operations:
        operation_index += 1
        if operation_index % 16 == 0:
            accumulator.sample_space(method)
            if live is not None:
                live.observe_space(method)
        kind = operation.kind
        before = device.snapshot()
        op_span = span("op." + kind.value) if use_spans else None
        if op_span is not None:
            op_span.__enter__()
        try:
            if kind is OpKind.POINT_QUERY:
                result = method.get(operation.key)
                retrieved = 1 if result is not None else 0
            elif kind is OpKind.RANGE_QUERY:
                retrieved = len(
                    method.range_query(operation.key, operation.high_key)
                )
            elif kind is OpKind.INSERT:
                method.insert(operation.key, operation.value)
            elif kind is OpKind.UPDATE:
                try:
                    method.update(operation.key, operation.value)
                except KeyError:
                    continue
            elif kind is OpKind.DELETE:
                try:
                    method.delete(operation.key)
                except KeyError:
                    continue
            else:  # pragma: no cover - the enum is closed
                raise ValueError(f"unknown operation kind {operation.kind}")
        finally:
            if op_span is not None:
                op_span.__exit__(None, None, None)
        io = device.stats_since(before)
        if kind.is_read:
            accumulator.record_read(io, retrieved)
            if live is not None:
                live.observe_op(
                    kind.value, True, io, max(retrieved, 1),
                    before.simulated_time + io.simulated_time,
                )
        else:
            accumulator.record_update(io)
            if live is not None:
                live.observe_op(
                    kind.value, False, io, 1,
                    before.simulated_time + io.simulated_time,
                )
        if metrics is not None:
            metrics.record(kind.value, io.reads + io.writes, io.simulated_time)
        if audit_every and operation_index % audit_every == 0:
            run_audit()
    # Differential structures buffer writes; flush so the deferred I/O is
    # charged (amortized) to the updates that caused it.  Without this,
    # a workload shorter than the buffer would report UO = 0.  Flush
    # reads (compactions re-reading runs to merge them) are charged to
    # the UO numerator via flush_read_bytes, not to RO — see
    # RUMAccumulator's docstring for the policy.
    if accumulator.update_ops:
        before = device.snapshot()
        if use_spans:
            with span("op.flush"):
                method.flush()
        else:
            method.flush()
        flush_io = device.stats_since(before)
        accumulator.write_bytes += flush_io.write_bytes
        accumulator.flush_read_bytes += flush_io.read_bytes
        accumulator.simulated_time += flush_io.simulated_time
        if live is not None:
            live.observe_flush(
                flush_io, before.simulated_time + flush_io.simulated_time
            )
        if metrics is not None:
            metrics.record(
                "flush", flush_io.reads + flush_io.writes, flush_io.simulated_time
            )
    if audit_every:
        run_audit()
    return accumulator.finish(method)


#: Space-sampling cadence of the measurement loops: the per-op loop
#: samples MO before every 16th operation, and the batched loop breaks
#: its windows at the same points so peak-MO sampling is identical.
_SPACE_SAMPLE_EVERY = 16


def measure_workload_batched(
    method: "AccessMethod",
    batches: Iterable[List["Operation"]],
    metrics: Optional["WorkloadMetrics"] = None,
    audit_every: int = 0,
    accumulator: Optional[RUMAccumulator] = None,
    live: Optional["WindowedRUM"] = None,
) -> RUMProfile:
    """Batch-first :func:`measure_workload`: same profile, less dispatch.

    Consumes lists of operations (a
    :meth:`~repro.workloads.generator.WorkloadGenerator.operation_batches`
    stream) and brackets device-counter *windows* rather than individual
    operations: one snapshot pair per run of same-category (read vs
    write) operations, with windows additionally split at the per-op
    loop's space-sampling points.  Per-op byte deltas telescope into the
    window delta exactly (the counters are integers), so the resulting
    profile is byte-identical to the per-op loop's — the property suite
    asserts this across methods and batch sizes.

    Per-op instrumentation cannot be amortized without changing what it
    observes, so when ``metrics`` is supplied, ``audit_every`` is set,
    a ``live`` window consumer is attached, or span collection is
    active, this function flattens the batches and delegates to
    :func:`measure_workload` — identity with the per-op path (and the
    live windows' conservation contract, whatever the batch size) then
    holds by construction.  (Device *tracing* needs no
    fallback: trace events are emitted by the device itself, in access
    order, identically on both paths.)

    One semantic difference from the tolerant per-op loop: a batch must
    be valid.  An update or delete of an absent key raises ``KeyError``
    out of :meth:`~repro.core.interfaces.AccessMethod.apply_batch`
    instead of being skipped, because a window's I/O delta cannot be
    re-attributed once an operation inside it has failed.  Workload
    generators only emit valid streams.
    """
    from repro.workloads.spec import OpKind  # local import to avoid a cycle

    if metrics is not None or audit_every or live is not None or spans_active():
        from itertools import chain

        return measure_workload(
            method,
            chain.from_iterable(batches),
            metrics=metrics,
            audit_every=audit_every,
            accumulator=accumulator,
            live=live,
        )
    if accumulator is None:
        accumulator = RUMAccumulator()
    device = method.device
    apply_batch = method.apply_batch
    read_kinds = frozenset((OpKind.POINT_QUERY, OpKind.RANGE_QUERY))
    every = _SPACE_SAMPLE_EVERY
    executed = 0
    for batch in batches:
        n = len(batch)
        start = 0
        while start < n:
            phase = (executed + 1) % every
            if phase == 0:
                accumulator.sample_space(method)
                allowed = every
            else:
                allowed = every - phase
            limit = start + allowed
            if limit > n:
                limit = n
            is_read = batch[start].kind in read_kinds
            end = start + 1
            while end < limit and (batch[end].kind in read_kinds) == is_read:
                end += 1
            segment = batch[start:end]
            before = device.snapshot()
            outcomes = apply_batch(segment)
            io = device.stats_since(before)
            count = end - start
            if is_read:
                units = 0
                for outcome in outcomes:
                    units += outcome if outcome > 1 else 1
                accumulator.record_read_batch(io, count, units)
            else:
                accumulator.record_update_batch(io, count)
            executed += count
            start = end
    if accumulator.update_ops:
        before = device.snapshot()
        method.flush()
        flush_io = device.stats_since(before)
        accumulator.write_bytes += flush_io.write_bytes
        accumulator.flush_read_bytes += flush_io.read_bytes
        accumulator.simulated_time += flush_io.simulated_time
    return accumulator.finish(method)
