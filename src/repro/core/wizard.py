"""The access-method wizard (Section 5, "Tunable RUM Balance").

"Using the above classification and analysis we can make educated
decisions about which access method should be used based on the
application requirements and the hardware characteristics, effectively
creating a powerful access method wizard."

The wizard ranks candidate access methods for a workload in two modes:

* **empirical** — actually run a scaled-down copy of the workload
  against every candidate and score the measured RUM profiles;
* **analytic** — score the structures' known RUM affinities (from the
  classification study, i.e. the measured Figure-1 placement) against
  the workload's read/write mix, without running anything.

Scores combine the three overheads with weights derived from the
workload (read-heavy workloads weigh RO higher, and so on) and from
explicit hardware priorities (e.g. flash endurance raises the weight of
UO, scarce memory raises MO — the priority shifts discussed in
Section 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.registry import available_methods, create_method
from repro.core.rum import RUMProfile
from repro.workloads.runner import run_workload
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class HardwarePriorities:
    """Relative importance of each overhead for the target hardware.

    All 1.0 is neutral.  Presets encode the paper's Section-2 examples:
    flash "favors minimizing the update overhead", scarce cache/memory
    "justifies reducing the space overhead".
    """

    read: float = 1.0
    update: float = 1.0
    memory: float = 1.0

    @classmethod
    def flash(cls) -> "HardwarePriorities":
        return cls(read=1.0, update=3.0, memory=1.0)

    @classmethod
    def disk(cls) -> "HardwarePriorities":
        return cls(read=3.0, update=1.0, memory=1.0)

    @classmethod
    def memory_constrained(cls) -> "HardwarePriorities":
        return cls(read=1.0, update=1.0, memory=3.0)


@dataclass(frozen=True)
class Recommendation:
    """One ranked wizard entry."""

    method: str
    score: float
    profile: Optional[RUMProfile] = None
    rationale: str = ""


#: Methods the wizard skips by default: the degenerate Prop structures
#: and the secondary bitmap index (its query model is value-predicate).
_EXCLUDED = {"append-log", "dense-array", "bitmap"}


def workload_weights(spec: WorkloadSpec) -> Tuple[float, float, float]:
    """(read, update, memory) weights implied by a workload's mix.

    Reads weigh RO, writes weigh UO; MO gets a constant floor since
    space is paid regardless of the mix.
    """
    reads = spec.point_queries + spec.range_queries
    writes = spec.inserts + spec.updates + spec.deletes
    return (max(reads, 0.05), max(writes, 0.05), 0.25)


def score_profile(
    profile: RUMProfile,
    spec: WorkloadSpec,
    priorities: HardwarePriorities,
) -> float:
    """Lower is better: weighted log-overheads.

    Logs keep one catastrophic overhead from being traded away linearly
    against tiny gains elsewhere, and make the score unit-free.
    """
    w_read, w_update, w_memory = workload_weights(spec)
    terms = (
        (profile.read_overhead, w_read * priorities.read),
        (profile.update_overhead, w_update * priorities.update),
        (profile.memory_overhead, w_memory * priorities.memory),
    )
    score = 0.0
    for overhead, weight in terms:
        if math.isinf(overhead) or math.isnan(overhead):
            return float("inf")
        score += weight * math.log(max(overhead, 1.0))
    return score


def recommend(
    spec: WorkloadSpec,
    priorities: Optional[HardwarePriorities] = None,
    candidates: Optional[Sequence[str]] = None,
    sample_records: int = 2000,
    sample_operations: int = 400,
) -> List[Recommendation]:
    """Empirical mode: measure every candidate on a scaled-down workload.

    Returns recommendations sorted best-first.
    """
    priorities = priorities or HardwarePriorities()
    names = list(candidates) if candidates is not None else [
        name for name in available_methods() if name not in _EXCLUDED
    ]
    sample = spec.scaled(
        initial_records=min(spec.initial_records, sample_records),
        operations=min(spec.operations, sample_operations),
    )
    recommendations: List[Recommendation] = []
    for name in names:
        method = create_method(name)
        result = run_workload(method, sample)
        score = score_profile(result.profile, spec, priorities)
        recommendations.append(
            Recommendation(
                method=name,
                score=score,
                profile=result.profile,
                rationale=_rationale(result.profile),
            )
        )
    recommendations.sort(key=lambda rec: rec.score)
    return recommendations


#: The classification study's outcome (Section 5: "a detailed
#: classification of access methods based on their RUM balance"): each
#: structure's qualitative overhead on a 1 (optimal) .. 5 (worst) scale,
#: distilled from the measured Figure-1/Table-1 results (see
#: benchmarks/test_bench_fig1.py, test_bench_table1.py).  Order:
#: (point read, range read, update, memory) — point and range are
#: separated because they disagree violently for hashing and mirrors.
CLASSIFICATION: Dict[str, Tuple[float, float, float, float]] = {
    "btree": (2.0, 1.0, 3.0, 2.5),
    "trie": (2.0, 2.0, 3.0, 4.0),
    "skiplist": (4.0, 3.0, 3.5, 3.5),
    "hash-index": (1.0, 5.0, 2.5, 3.0),
    "cache-oblivious": (2.0, 2.0, 3.5, 3.0),
    "fractured-mirrors": (1.0, 1.0, 4.0, 4.0),
    "lsm": (2.5, 2.0, 1.2, 2.5),
    "indexed-log": (2.5, 3.0, 1.1, 2.5),
    "pbt": (3.0, 2.5, 2.5, 2.5),
    "masm": (2.5, 2.0, 1.5, 2.0),
    "pdt": (1.5, 2.0, 2.0, 2.5),
    "silt": (2.0, 2.5, 1.5, 2.0),
    "zonemap": (3.5, 3.0, 3.5, 1.2),
    "sparse-index": (2.5, 2.0, 2.5, 1.5),
    "approximate-index": (3.0, 2.5, 4.0, 1.5),
    "cracking": (3.5, 2.5, 2.5, 1.2),
    "adaptive-merging": (3.0, 2.5, 3.0, 2.0),
    "morphing": (2.5, 2.5, 2.5, 1.8),
    "sorted-column": (2.5, 1.5, 5.0, 1.0),
    "unsorted-column": (5.0, 4.5, 2.5, 1.0),
    "tunable": (2.5, 2.5, 2.0, 2.0),
    "indexed-heap": (1.5, 2.0, 2.5, 2.5),
}


def recommend_analytic(
    spec: WorkloadSpec,
    priorities: Optional[HardwarePriorities] = None,
    candidates: Optional[Sequence[str]] = None,
) -> List[Recommendation]:
    """Analytic mode: rank by the classification study, running nothing.

    Instant (no measurement), coarse (qualitative scores).  Use this to
    shortlist candidates, then :func:`recommend` to measure the
    shortlist on the actual workload.
    """
    priorities = priorities or HardwarePriorities()
    names = list(candidates) if candidates is not None else sorted(CLASSIFICATION)
    writes = spec.inserts + spec.updates + spec.deletes
    w_point = max(spec.point_queries, 0.05)
    w_range = max(spec.range_queries, 0.05)
    w_update = max(writes, 0.05)
    w_memory = 0.25
    recommendations: List[Recommendation] = []
    for name in names:
        if name not in CLASSIFICATION:
            raise KeyError(f"no classification entry for {name!r}")
        c_point, c_range, c_update, c_memory = CLASSIFICATION[name]
        score = (
            w_point * priorities.read * c_point
            + w_range * priorities.read * c_range
            + w_update * priorities.update * c_update
            + w_memory * priorities.memory * c_memory
        )
        recommendations.append(
            Recommendation(
                method=name,
                score=score,
                rationale=(
                    f"classified (point={c_point}, range={c_range}, "
                    f"U={c_update}, M={c_memory}) on the 1..5 study scale"
                ),
            )
        )
    recommendations.sort(key=lambda rec: rec.score)
    return recommendations


def _rationale(profile: RUMProfile) -> str:
    parts = []
    overheads = {
        "read": profile.read_overhead,
        "update": profile.update_overhead,
        "memory": profile.memory_overhead,
    }
    best = min(overheads, key=overheads.get)
    worst = max(overheads, key=overheads.get)
    parts.append(f"strongest on {best} overhead ({overheads[best]:.1f}x)")
    parts.append(f"weakest on {worst} overhead ({overheads[worst]:.1f}x)")
    return "; ".join(parts)
