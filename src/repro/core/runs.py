"""Shared machinery for fence-keyed sorted runs.

Several structures (MaSM, PDT, SILT, the tunable method, the indexed
log) store immutable sorted runs as a list of data blocks with an
in-memory *fence array* (the first key of each block).  Probing and
scanning such a run is identical everywhere; these helpers are that
single implementation.

All functions charge their block reads to the given device.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Tuple

from repro.storage.device import SimulatedDevice


def probe_run(
    device: SimulatedDevice,
    block_ids: Sequence[int],
    fence_keys: Sequence[int],
    key: int,
) -> Tuple[bool, object]:
    """Look ``key`` up in one sorted run: at most one block read.

    Returns ``(found, value)``; ``found`` is False for empty runs, keys
    below the run's minimum, or genuine misses.
    """
    if not block_ids or key < fence_keys[0]:
        return False, None
    position = max(0, bisect.bisect_right(fence_keys, key) - 1)
    records = device.read(block_ids[position])
    keys = [record_key for record_key, _ in records]
    index = bisect.bisect_left(keys, key)
    if index < len(keys) and keys[index] == key:
        return True, records[index][1]
    return False, None


def scan_run(
    device: SimulatedDevice,
    block_ids: Sequence[int],
    fence_keys: Sequence[int],
    lo: int,
    hi: int,
) -> List[Tuple[int, object]]:
    """Collect the run's records with ``lo <= key <= hi``, in key order.

    Reads only the blocks the fences admit: the start block is located
    by fence search and the scan stops at the first block past ``hi``.
    """
    if not block_ids:
        return []
    start = max(0, bisect.bisect_right(fence_keys, lo) - 1)
    matches: List[Tuple[int, object]] = []
    for position in range(start, len(block_ids)):
        records = device.read(block_ids[position])
        if records and records[0][0] > hi:
            break
        matches.extend(
            (key, value) for key, value in records if lo <= key <= hi
        )
        if records and records[-1][0] > hi:
            break
    return matches
