"""The tunable RUM access method and its dynamic auto-tuner (Section 5).

Figure 3 of the paper envisions an access method that "seamlessly
transitions" inside the RUM triangle.  :class:`TunableAccessMethod`
realizes that with two continuous knobs:

``read_optimization`` (r in [0, 1])
    Controls auxiliary read acceleration over the sorted main data:
    fence density rises with r (from none — pure positional binary
    search — to one fence per block) and a Bloom filter over the main is
    enabled at high r.  Raising r lowers RO and raises MO.

``write_optimization`` (w in [0, 1])
    Controls update absorption: the size of the in-memory write buffer
    and the number of differential runs tolerated before a full merge
    both grow with w.  Raising w lowers UO and raises RO (runs must be
    probed) and MO (obsolete versions linger).

With (r=1, w=0) the structure behaves like a fenced, filtered sorted
column (read corner); (r=0, w=1) is an LSM-ish differential stack (write
corner); (r=0, w=0) is a bare sorted column (space corner).  The
Figure-3 benchmark sweeps the knobs and plots the measured trajectory.

:class:`DynamicTuner` closes the loop (the paper's "Dynamic RUM
Balance"): it watches the recent operation mix and moves the knobs
toward the observed workload.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.core.runs import probe_run, scan_run
from repro.filters.bloom import BloomFilter
from repro.storage.device import SimulatedDevice
from repro.storage.layout import KEY_BYTES, POINTER_BYTES, RECORD_BYTES, records_per_block

from repro.core.sentinels import TOMBSTONE as _TOMBSTONE


@dataclass
class _Run:
    """A differential run of buffered updates."""

    block_ids: List[int]
    fence_keys: List[int]
    records: int


class TunableAccessMethod(AccessMethod):
    """A morphing structure spanning the RUM triangle (Figure 3)."""

    name = "tunable"
    capabilities = Capabilities(ordered=True, updatable=True, adaptive=True)

    #: Buffer sizing at w = 0 and w = 1.  The buffer is kept small so the
    #: write knob differentiates through *merge frequency* (how many
    #: differential runs are tolerated before the long merge), not by
    #: simply swallowing whole workloads in memory.
    _MIN_BUFFER = 16
    _MAX_BUFFER = 128
    #: Differential runs tolerated at w = 1 before the long merge.
    _MAX_RUNS = 16

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        read_optimization: float = 0.5,
        write_optimization: float = 0.5,
    ) -> None:
        super().__init__(device)
        self._per_block = records_per_block(self.device.block_bytes)
        self._main_blocks: List[int] = []
        self._fences: List[Tuple[int, int]] = []  # (key, main block index)
        self._bloom: Optional[BloomFilter] = None
        self._buffer: Dict[int, object] = {}
        self._runs: List[_Run] = []
        self._live_keys: set = set()
        self.read_optimization = 0.5
        self.write_optimization = 0.5
        self.set_knobs(read_optimization, write_optimization)

    # ------------------------------------------------------------------
    # Knobs
    # ------------------------------------------------------------------
    def set_knobs(self, read_optimization: float, write_optimization: float) -> None:
        """Move the structure in the RUM space; reorganizes lazily.

        Lowering ``read_optimization`` drops auxiliary structures
        immediately; raising it rebuilds them on the next
        :meth:`reorganize` (or instantly if the main is small).
        """
        if not 0.0 <= read_optimization <= 1.0:
            raise ValueError("read_optimization must be in [0, 1]")
        if not 0.0 <= write_optimization <= 1.0:
            raise ValueError("write_optimization must be in [0, 1]")
        self.read_optimization = read_optimization
        self.write_optimization = write_optimization
        self._rebuild_aux()

    @property
    def buffer_capacity(self) -> int:
        span = self._MAX_BUFFER - self._MIN_BUFFER
        return self._MIN_BUFFER + int(self.write_optimization * span)

    @property
    def max_runs(self) -> int:
        return 1 + int(self.write_optimization * (self._MAX_RUNS - 1))

    @property
    def fence_stride(self) -> Optional[int]:
        """Main blocks per fence entry; None disables fences entirely."""
        if self.read_optimization <= 0.05:
            return None
        # r = 1 -> every block fenced; r = 0.05 -> every ~20th block.
        return max(1, int(round(1.0 / self.read_optimization)))

    @property
    def bloom_enabled(self) -> bool:
        return self.read_optimization > 0.7

    # ------------------------------------------------------------------
    # Workload operations
    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        records = self._sorted_unique(items)
        self._write_main([(key, value) for key, value in records])
        self._live_keys = {key for key, _ in records}
        self._record_count = len(records)

    def get(self, key: int) -> Optional[int]:
        if key in self._buffer:
            value = self._buffer[key]
            return None if value is _TOMBSTONE else value
        for run in reversed(self._runs):
            found, value = self._probe_run(run, key)
            if found:
                return None if value is _TOMBSTONE else value
        return self._probe_main(key)

    def range_query(self, lo: int, hi: int) -> List[Record]:
        newest: Dict[int, object] = {}
        for key, value in self._buffer.items():
            if lo <= key <= hi:
                newest[key] = value
        for run in reversed(self._runs):
            for key, value in self._scan_run(run, lo, hi):
                if key not in newest:
                    newest[key] = value
        for key, value in self._scan_main(lo, hi):
            if key not in newest:
                newest[key] = value
        return sorted(
            (key, value) for key, value in newest.items() if value is not _TOMBSTONE
        )

    def insert(self, key: int, value: int) -> None:
        if key in self._live_keys:
            raise ValueError(f"duplicate key {key}")
        self._put(key, value)
        self._live_keys.add(key)
        self._record_count += 1

    def update(self, key: int, value: int) -> None:
        if key not in self._live_keys:
            raise KeyError(key)
        self._put(key, value)

    def delete(self, key: int) -> None:
        if key not in self._live_keys:
            raise KeyError(key)
        self._put(key, _TOMBSTONE)
        self._live_keys.discard(key)
        self._record_count -= 1

    def flush(self) -> None:
        if self._buffer:
            self._spill_buffer()

    def maintenance(self) -> None:
        """Fold buffered runs back into the main copy (space reclaim)."""
        if self._runs or self._buffer:
            self.reorganize()

    # ------------------------------------------------------------------
    def space_bytes(self) -> int:
        aux = len(self._fences) * (KEY_BYTES + POINTER_BYTES)
        if self._bloom is not None:
            aux += self._bloom.size_bytes
        aux += len(self._buffer) * RECORD_BYTES
        return self.device.allocated_bytes + aux

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def _put(self, key: int, value: object) -> None:
        if self.write_optimization <= 0.02 and not self._runs:
            # Pure in-place mode: write straight into the main copy.
            if self._update_main_in_place(key, value):
                return
        self._buffer[key] = value
        if len(self._buffer) >= self.buffer_capacity:
            self._spill_buffer()

    def _spill_buffer(self) -> None:
        records = sorted(self._buffer.items())
        self._buffer = {}
        block_ids: List[int] = []
        fences: List[int] = []
        for start in range(0, len(records), self._per_block):
            chunk = records[start : start + self._per_block]
            block_id = self.device.allocate(kind="tunable-run")
            self.device.write(block_id, chunk, used_bytes=len(chunk) * RECORD_BYTES)
            block_ids.append(block_id)
            fences.append(chunk[0][0])
        self._runs.append(_Run(block_ids, fences, len(records)))
        if len(self._runs) > self.max_runs:
            self.reorganize()

    def _update_main_in_place(self, key: int, value: object) -> bool:
        """In-place write for the write_optimization ~ 0 regime.

        Returns False when the key is not in the main copy (new insert or
        delete of a buffered key) so the caller falls back to buffering.
        """
        position = self._main_block_for(key)
        if position is None:
            return False
        records = list(self.device.read(self._main_blocks[position]))
        keys = [record_key for record_key, _ in records]
        slot = bisect.bisect_left(keys, key)
        if slot >= len(keys) or keys[slot] != key:
            return False
        if value is _TOMBSTONE:
            records.pop(slot)
        else:
            records[slot] = (key, value)
        self.device.write(
            self._main_blocks[position],
            records,
            used_bytes=len(records) * RECORD_BYTES,
        )
        return True

    # ------------------------------------------------------------------
    # Reorganization
    # ------------------------------------------------------------------
    def reorganize(self) -> None:
        """The long merge: fold buffer and runs into a fresh main copy."""
        newest: Dict[int, object] = dict(self._buffer)
        self._buffer = {}
        for run in reversed(self._runs):
            for block_id in run.block_ids:
                for key, value in self.device.read(block_id):
                    if key not in newest:
                        newest[key] = value
        for run in self._runs:
            for block_id in run.block_ids:
                self.device.free(block_id)
        self._runs = []
        merged: Dict[int, object] = {}
        for block_id in self._main_blocks:
            for key, value in self.device.read(block_id):
                if key not in merged:
                    merged[key] = value
            self.device.free(block_id)
        self._main_blocks = []
        merged.update({})
        for key, value in newest.items():
            merged[key] = value
        records = sorted(
            (key, value) for key, value in merged.items() if value is not _TOMBSTONE
        )
        self._write_main(records)

    def _rebuild_aux(self) -> None:
        """Recompute fences/bloom for the current knob settings."""
        stride = self.fence_stride
        self._fences = []
        if stride is not None:
            for index in range(0, len(self._main_blocks), stride):
                payload = self.device.peek(self._main_blocks[index])
                if payload:
                    self._fences.append((payload[0][0], index))
        if self.bloom_enabled and self._main_blocks:
            keys = []
            for block_id in self._main_blocks:
                payload = self.device.peek(block_id)
                keys.extend(record_key for record_key, _ in payload)
            self._bloom = BloomFilter(max(1, len(keys)), 0.01)
            self._bloom.add_all(keys)
        else:
            self._bloom = None

    def _write_main(self, records: List[Tuple[int, object]]) -> None:
        for start in range(0, len(records), self._per_block):
            chunk = records[start : start + self._per_block]
            block_id = self.device.allocate(kind="tunable-main")
            self.device.write(block_id, chunk, used_bytes=len(chunk) * RECORD_BYTES)
            self._main_blocks.append(block_id)
        self._rebuild_aux()

    # ------------------------------------------------------------------
    # Read path over the main copy
    # ------------------------------------------------------------------
    def _main_block_for(self, key: int) -> Optional[int]:
        """Locate the main block that may hold ``key``, charging I/O
        according to the current read-optimization level."""
        if not self._main_blocks:
            return None
        if self._bloom is not None and not self._bloom.may_contain(key):
            return None
        if self._fences:
            fence_keys = [fence_key for fence_key, _ in self._fences]
            index = bisect.bisect_right(fence_keys, key) - 1
            if index < 0:
                index = 0
            start = self._fences[index][1]
            stride = self.fence_stride or 1
            # Within the fenced group, scan forward (stride is small).
            position = start
            for candidate in range(start, min(start + stride, len(self._main_blocks))):
                payload = self.device.read(self._main_blocks[candidate])
                if payload and payload[0][0] <= key:
                    position = candidate
                    if payload[-1][0] >= key:
                        return candidate
                else:
                    break
            return position
        # No fences: positional binary search over the sorted main.
        lo, hi = 0, len(self._main_blocks) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            payload = self.device.read(self._main_blocks[mid])
            if payload and payload[-1][0] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _probe_main(self, key: int) -> Optional[int]:
        position = self._main_block_for(key)
        if position is None:
            return None
        records = self.device.read(self._main_blocks[position])
        keys = [record_key for record_key, _ in records]
        slot = bisect.bisect_left(keys, key)
        if slot < len(keys) and keys[slot] == key:
            value = records[slot][1]
            return None if value is _TOMBSTONE else value
        return None

    def _scan_main(self, lo: int, hi: int) -> List[Tuple[int, object]]:
        if not self._main_blocks:
            return []
        start = 0
        if self._fences:
            fence_keys = [fence_key for fence_key, _ in self._fences]
            index = max(0, bisect.bisect_right(fence_keys, lo) - 1)
            start = self._fences[index][1]
        matches: List[Tuple[int, object]] = []
        for position in range(start, len(self._main_blocks)):
            records = self.device.read(self._main_blocks[position])
            if records and records[0][0] > hi:
                break
            matches.extend((key, value) for key, value in records if lo <= key <= hi)
            if records and records[-1][0] > hi:
                break
        return matches

    # ------------------------------------------------------------------
    # Run probing (same fence scheme as MaSM)
    # ------------------------------------------------------------------
    def _probe_run(self, run: _Run, key: int) -> Tuple[bool, object]:
        return probe_run(self.device, run.block_ids, run.fence_keys, key)

    def _scan_run(self, run: _Run, lo: int, hi: int) -> List[Tuple[int, object]]:
        return scan_run(self.device, run.block_ids, run.fence_keys, lo, hi)


@dataclass
class TunerPolicy:
    """How aggressively the dynamic tuner chases the workload."""

    window: int = 200
    step: float = 0.15
    memory_budget: Optional[float] = None  # max MO tolerated, None = unbounded


class DynamicTuner:
    """Online knob controller — the paper's "Dynamic RUM Balance".

    Feed it the operations the application executes; every ``window``
    operations it nudges the knobs toward the observed read/write mix,
    and backs off read acceleration when the memory budget is exceeded.
    """

    def __init__(
        self, method: TunableAccessMethod, policy: Optional[TunerPolicy] = None
    ) -> None:
        self.method = method
        self.policy = policy or TunerPolicy()
        self._reads = 0
        self._writes = 0
        self._since_adjust = 0
        self.adjustments: List[Tuple[float, float]] = []

    def observe_read(self) -> None:
        """Record one read operation executed by the application."""
        self._reads += 1
        self._tick()

    def observe_write(self) -> None:
        """Record one write operation executed by the application."""
        self._writes += 1
        self._tick()

    def _tick(self) -> None:
        self._since_adjust += 1
        if self._since_adjust >= self.policy.window:
            self._adjust()
            self._since_adjust = 0
            self._reads = 0
            self._writes = 0

    def _adjust(self) -> None:
        total = self._reads + self._writes
        if total == 0:
            return
        read_fraction = self._reads / total
        step = self.policy.step
        r = self.method.read_optimization
        w = self.method.write_optimization
        # Chase the mix: more reads -> invest in read acceleration and
        # shrink write absorption; more writes -> the reverse.
        r += step * (read_fraction - 0.5) * 2
        w += step * ((1 - read_fraction) - 0.5) * 2
        r = min(1.0, max(0.0, r))
        w = min(1.0, max(0.0, w))
        if self.policy.memory_budget is not None:
            stats = self.method.stats()
            if stats.space_amplification > self.policy.memory_budget:
                r = max(0.0, r - step)
        self.method.set_knobs(r, w)
        self.adjustments.append((r, w))
