"""Core abstractions: the access-method interface and RUM accounting.

``interfaces``
    The :class:`AccessMethod` abstract base class every structure in
    :mod:`repro.methods` implements.
``rum``
    The paper's Section-2 overhead definitions: read / write / space
    amplification, measured against device counters.
``space``
    Geometry of the RUM design space: projection of an (RO, UO, MO)
    profile onto the paper's triangle (Figures 1 and 3).
``registry``
    Name -> factory registry over every implemented access method.
``wizard``
    The Section-5 "access method wizard": rank methods for a workload.
``tuner``
    The Section-5 tunable access method and its dynamic auto-tuner.
"""

from repro.core.interfaces import AccessMethod, Capabilities, MethodStats
from repro.core.registry import available_methods, create_method, register_method
from repro.core.rum import RUMAccumulator, RUMProfile, measure_workload
from repro.core.space import (
    CORNER_READ,
    CORNER_SPACE,
    CORNER_WRITE,
    RUMPoint,
    nearest_corner,
    project,
)

__all__ = [
    "AccessMethod",
    "Capabilities",
    "CORNER_READ",
    "CORNER_SPACE",
    "CORNER_WRITE",
    "MethodStats",
    "RUMAccumulator",
    "RUMPoint",
    "RUMProfile",
    "available_methods",
    "create_method",
    "measure_workload",
    "nearest_corner",
    "project",
    "register_method",
]
