"""The access-method interface.

The paper defines an access method as "algorithms and data structures for
organizing and accessing data" and analyzes them over a workload of point
queries, range queries, inserts, updates and deletes on fixed-size records
(Section 2).  :class:`AccessMethod` is that contract: every structure in
:mod:`repro.methods` implements it on top of an instrumented
:class:`~repro.storage.device.SimulatedDevice`, so the three RUM
overheads can be measured uniformly for all of them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Tuple

from repro.storage.block import BlockId
from repro.storage.device import SimulatedDevice
from repro.storage.layout import DEFAULT_BLOCK_BYTES, RECORD_BYTES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.workloads.spec import Operation

Record = Tuple[int, int]

#: Block kinds that are bulk-load scratch space: they must never survive
#: past the operation that allocated them.  The device-level audit
#: reports any that do as a leak.
TEMP_BLOCK_KINDS = frozenset({"sort-run"})


@dataclass(frozen=True)
class Capabilities:
    """What a structure supports; the wizard and test harness consult this.

    ``ordered``           — supports efficient range queries.
    ``updatable``         — supports inserts/updates/deletes after load.
    ``duplicates``        — tolerates duplicate keys (we require unique).
    ``adaptive``          — reorganizes itself in response to queries.
    ``checks_duplicates`` — ``insert`` detects an existing key and raises
        :class:`ValueError`.  Structures whose layout makes the check
        free (trees, logs with membership state) do it; heap-like
        structures do not — detecting would cost a full scan per insert,
        which is precisely why real heap files leave uniqueness to an
        index.  Inserting a duplicate into a non-checking structure is
        undefined behaviour, as in those real systems.
    """

    ordered: bool = True
    updatable: bool = True
    duplicates: bool = False
    adaptive: bool = False
    checks_duplicates: bool = True


@dataclass
class MethodStats:
    """Summary snapshot of a method's size and space usage."""

    name: str
    records: int
    base_bytes: int
    space_bytes: int
    allocated_blocks: int

    @property
    def space_amplification(self) -> float:
        """MO: total space over base-data space (paper Section 2)."""
        if self.base_bytes == 0:
            return float("inf") if self.space_bytes else 1.0
        return self.space_bytes / self.base_bytes


class AccessMethod(ABC):
    """Abstract base class of every access method in the library.

    Subclasses must implement the five workload operations plus
    :meth:`space_bytes`.  Keys are unique integers; values are integers.
    All persistent state must live in blocks of ``self.device`` so that
    I/O and space accounting are accurate.

    Parameters
    ----------
    device:
        The block device this structure lives on.  If omitted, a private
        flash-like device with the default block size is created; using a
        private device per method keeps RUM measurements independent.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: Static capability flags; subclasses override as needed.
    capabilities: Capabilities = Capabilities()

    #: Whether the device-level audit may assume every live record
    #: occupies at least :data:`RECORD_BYTES` of declared block space.
    #: Structures that compress (bitmaps) or keep records in memory
    #: buffers they account separately set this to False.
    audit_space_covers_records: bool = True

    def __init__(self, device: Optional[SimulatedDevice] = None) -> None:
        self.device = device if device is not None else SimulatedDevice(
            block_bytes=DEFAULT_BLOCK_BYTES
        )
        self._record_count = 0

    # ------------------------------------------------------------------
    # Workload operations
    # ------------------------------------------------------------------
    @abstractmethod
    def bulk_load(self, items: Iterable[Record]) -> None:
        """Load a fresh structure from ``items``.

        ``items`` may arrive in any order; implementations that need
        sorted input must sort internally (and are charged for it via
        their device writes).  Must only be called on an empty structure.
        """

    @abstractmethod
    def get(self, key: int) -> Optional[int]:
        """Return the value stored under ``key``, or ``None`` if absent."""

    @abstractmethod
    def range_query(self, lo: int, hi: int) -> List[Record]:
        """Return all records with ``lo <= key <= hi``, sorted by key."""

    @abstractmethod
    def insert(self, key: int, value: int) -> None:
        """Insert a new record.  ``key`` must not already be present."""

    @abstractmethod
    def update(self, key: int, value: int) -> None:
        """Change the value of an existing record.

        Raises :class:`KeyError` if ``key`` is absent.
        """

    @abstractmethod
    def delete(self, key: int) -> None:
        """Remove a record.  Raises :class:`KeyError` if ``key`` is absent."""

    # ------------------------------------------------------------------
    # Batched surface
    # ------------------------------------------------------------------
    # The batch-first measurement pipeline feeds operations through these
    # entry points.  The public methods guarantee observable equivalence
    # with the per-op surface: same results, same device access sequence
    # (hence byte-identical counters and trace events), same exceptions.
    # Subclasses override the protected ``_get_many`` / ``_put_many``
    # hooks with genuinely batched implementations; the public wrappers
    # route to the per-op loop while span collection is active, because
    # batched hooks amortize exactly the per-call bookkeeping (span
    # enter/exit among it) that span profiles are made of.

    def get_many(self, keys: Iterable[int]) -> List[Optional[int]]:
        """Look up many keys; element ``i`` answers ``get(keys[i])``."""
        from repro.obs.spans import spans_active  # lazy: avoid a cycle

        if spans_active():
            get = self.get
            return [get(key) for key in keys]
        return self._get_many(keys)

    def _get_many(self, keys: Iterable[int]) -> List[Optional[int]]:
        """Batched lookup hook; the default is the per-op loop."""
        get = self.get
        return [get(key) for key in keys]

    def put_many(self, items: Iterable[Record]) -> None:
        """Insert many fresh records; equivalent to ``insert`` per item."""
        from repro.obs.spans import spans_active  # lazy: avoid a cycle

        if spans_active():
            insert = self.insert
            for key, value in items:
                insert(key, value)
            return
        self._put_many(items)

    def _put_many(self, items: Iterable[Record]) -> None:
        """Batched insert hook; the default is the per-op loop."""
        insert = self.insert
        for key, value in items:
            insert(key, value)

    def apply_batch(self, operations: List["Operation"]) -> List[int]:
        """Execute a list of workload operations in order.

        Returns one outcome per operation: for point queries ``1`` on a
        hit and ``0`` on a miss, for range queries the number of records
        returned, and ``1`` for every write — the units the RUM
        accumulator's denominators are built from.  Consecutive point
        queries are routed through :meth:`get_many` and consecutive
        inserts through :meth:`put_many`, so a method's batched hooks
        see the longest runs the stream offers.

        Unlike the tolerant per-op measurement loop, a batch must be
        valid: an update or delete of an absent key raises ``KeyError``
        (workload generators only emit valid streams).
        """
        from repro.workloads.spec import OpKind  # lazy: avoid a cycle

        n = len(operations)
        outcomes = [1] * n
        i = 0
        while i < n:
            operation = operations[i]
            kind = operation.kind
            if kind is OpKind.POINT_QUERY:
                j = i + 1
                while j < n and operations[j].kind is OpKind.POINT_QUERY:
                    j += 1
                results = self.get_many(
                    [operations[k].key for k in range(i, j)]
                )
                for k, result in enumerate(results, i):
                    outcomes[k] = 1 if result is not None else 0
                i = j
            elif kind is OpKind.INSERT:
                j = i + 1
                while j < n and operations[j].kind is OpKind.INSERT:
                    j += 1
                self.put_many(
                    [
                        (operations[k].key, operations[k].value)
                        for k in range(i, j)
                    ]
                )
                i = j
            elif kind is OpKind.RANGE_QUERY:
                outcomes[i] = len(
                    self.range_query(operation.key, operation.high_key)
                )
                i += 1
            elif kind is OpKind.UPDATE:
                self.update(operation.key, operation.value)
                i += 1
            elif kind is OpKind.DELETE:
                self.delete(operation.key)
                i += 1
            else:  # pragma: no cover - the enum is closed
                raise ValueError(f"unknown operation kind {kind}")
        return outcomes

    # ------------------------------------------------------------------
    # Space accounting
    # ------------------------------------------------------------------
    def space_bytes(self) -> int:
        """Total space the structure occupies (base + auxiliary data).

        Defaults to everything allocated on the method's device, which is
        correct when the method owns its device exclusively.
        """
        return self.device.allocated_bytes

    def base_bytes(self) -> int:
        """Logical size of the base data: records x record size."""
        return self._record_count * RECORD_BYTES

    def __len__(self) -> int:
        """Number of live records."""
        return self._record_count

    def stats(self) -> MethodStats:
        """Snapshot of size and space usage."""
        return MethodStats(
            name=self.name,
            records=self._record_count,
            base_bytes=self.base_bytes(),
            space_bytes=self.space_bytes(),
            allocated_blocks=self.device.allocated_blocks,
        )

    # ------------------------------------------------------------------
    # Maintenance hooks (optional)
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Force any buffered state down to the device (no-op by default)."""

    #: Key span :meth:`reopen` scans when recounting records; wide enough
    #: for any workload key while staying within exact-int range.
    REOPEN_KEY_SPAN: Tuple[int, int] = (-(2 ** 62), 2 ** 62)

    def reopen(self) -> None:
        """Rebuild memory-resident bookkeeping from durable block state.

        Models re-opening the structure after a process crash: a fault
        that interrupts a mutation can leave the durable blocks holding
        the op's effect while derived in-memory bookkeeping (the record
        count) missed its update.  The default implementation recounts
        records with a full range scan — charged I/O, because a real
        restart pays to rediscover its metadata.  Structures with more
        derived state override and extend this.

        Used by :meth:`repro.serve.server.Server.recover` before WAL
        replay; only meaningful for ordered methods (the serving tier
        requires them).
        """
        lo, hi = self.REOPEN_KEY_SPAN
        self._record_count = len(self.range_query(lo, hi))

    def maintenance(self) -> None:
        """Run background reorganization (compaction, merging; no-op)."""

    # ------------------------------------------------------------------
    # Structural invariant audits
    # ------------------------------------------------------------------
    def audit(self) -> List[str]:
        """Check structural invariants; return violations ([] = healthy).

        Two layers: :meth:`_audit_device` checks accounting invariants
        every structure must satisfy (declared per-block occupancy within
        block capacity and summing to the device's running total, no
        leaked scratch blocks, live records covered by declared space),
        and :meth:`_audit_structure` — overridden per method — checks
        structure-specific invariants (key order, fanout, zone bounds,
        Bloom no-false-negatives, ...).

        Audits observe state through the device's no-I/O interface
        (``peek``/``kind_of``/``used_bytes_of``/``iter_block_ids``) only:
        running one charges nothing, so ``measure_workload(...,
        audit_every=N)`` can self-check without perturbing the profile.
        Each violation additionally emits an ``op="audit"`` trace event
        when a tracer is attached.
        """
        violations = self._audit_device()
        violations.extend(self._audit_structure())
        if violations:
            from repro.obs.tracer import emit_audit_events  # lazy: cycle

            emit_audit_events(self.device.tracer, self.name, violations)
        return violations

    def _audit_device(self) -> List[str]:
        """Device-level accounting invariants common to all structures."""
        device = self.device
        violations: List[str] = []
        declared_total = 0
        for block_id in device.iter_block_ids():
            used = device.used_bytes_of(block_id)
            if not 0 <= used <= device.block_bytes:
                violations.append(
                    f"block {block_id}: declared occupancy {used} outside "
                    f"[0, {device.block_bytes}]"
                )
            declared_total += used
            kind = device.kind_of(block_id)
            if kind in TEMP_BLOCK_KINDS:
                violations.append(f"leaked scratch block {block_id} (kind {kind!r})")
        if declared_total != device.used_bytes():
            violations.append(
                f"device used-bytes total {device.used_bytes()} != "
                f"recomputed per-block sum {declared_total}"
            )
        if (
            self.audit_space_covers_records
            and self._record_count * RECORD_BYTES > self.space_bytes()
        ):
            violations.append(
                f"{self._record_count} records x {RECORD_BYTES}B exceed "
                f"declared space {self.space_bytes()}B"
            )
        return violations

    def _audit_structure(self) -> List[str]:
        """Structure-specific invariants; subclasses override."""
        return []

    @contextmanager
    def _fresh_block(self, kind: str) -> Iterator[BlockId]:
        """Allocate a block, freeing it again if the body raises.

        For allocate-then-first-write sites: if the initial write faults
        (:mod:`repro.check` fault injection), the bare allocation would
        leak an empty block the structure never references — visible to
        :meth:`audit` as an accounting discrepancy.  Rolling the
        allocation back keeps a faulted operation side-effect-free.
        """
        block_id = self.device.allocate(kind)
        try:
            yield block_id
        except BaseException:
            if self.device.is_allocated(block_id):
                self.device.free(block_id)
            raise

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {self.name!r}: {self._record_count} records, "
            f"{self.device.allocated_blocks} blocks>"
        )

    # ------------------------------------------------------------------
    # Helpers shared by subclasses
    # ------------------------------------------------------------------
    def _require_empty(self) -> None:
        if self._record_count:
            raise RuntimeError(f"{self.name}: bulk_load on a non-empty structure")

    @staticmethod
    def _sorted_unique(items: Iterable[Record]) -> List[Record]:
        """Sort records by key and reject duplicates.

        Most structures bulk-load from sorted input; duplicate keys are a
        caller error under the unique-key contract.
        """
        records = sorted(items, key=lambda record: record[0])
        for i in range(1, len(records)):
            if records[i][0] == records[i - 1][0]:
                raise ValueError(f"duplicate key in bulk load: {records[i][0]}")
        return records
