"""rum-access-methods: a reproduction of "Designing Access Methods: The
RUM Conjecture" (Athanassoulis et al., EDBT 2016).

The library implements the paper's access-method inventory from scratch
over an instrumented simulated block device, so the three RUM overheads
— read amplification (RO), write amplification (UO) and space
amplification (MO) — can be *measured* for every structure, every
workload and every tuning knob.

Quick start::

    from repro import create_method, run_workload, WorkloadSpec

    spec = WorkloadSpec(point_queries=0.5, inserts=0.3, updates=0.2,
                        operations=2000, initial_records=10_000)
    result = run_workload(create_method("btree"), spec)
    print(result.profile)   # RUM(btree: RO=..., UO=..., MO=...)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from repro.core.interfaces import AccessMethod, Capabilities, MethodStats
from repro.core.registry import available_methods, create_method
from repro.core.rum import (
    RUMAccumulator,
    RUMProfile,
    measure_workload,
    measure_workload_batched,
)
from repro.core.space import RUMPoint, nearest_corner, project
from repro.storage.device import CostModel, SimulatedDevice
from repro.workloads.generator import WorkloadGenerator, generate_operations
from repro.workloads.runner import WorkloadResult, run_workload
from repro.workloads.trace import load_trace, save_trace
from repro.workloads.spec import MIXES, Operation, OpKind, WorkloadSpec

# 1.1.0: trace events gained a `span` field (repro.obs.spans).  The
# version is the sweep cache's key salt, so bumping it structurally
# invalidates pre-span cached envelopes.
# 1.2.0: batch-first measurement; serialized WorkloadResult envelopes
# gained `operations_executed`, so pre-batch cached envelopes are
# invalidated the same way.
# 1.3.0: the serving tier (repro.serve) — devices now carry "wal"
# blocks and serve runs emit txn-* trace events, so cached envelopes
# from mixed-tier sweeps are invalidated the same way.
__version__ = "1.3.0"

__all__ = [
    "AccessMethod",
    "Capabilities",
    "CostModel",
    "MIXES",
    "MethodStats",
    "OpKind",
    "Operation",
    "RUMAccumulator",
    "RUMPoint",
    "RUMProfile",
    "SimulatedDevice",
    "WorkloadGenerator",
    "WorkloadResult",
    "WorkloadSpec",
    "available_methods",
    "create_method",
    "generate_operations",
    "load_trace",
    "measure_workload",
    "measure_workload_batched",
    "nearest_corner",
    "project",
    "run_workload",
    "save_trace",
]
