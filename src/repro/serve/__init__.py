"""The concurrent serving tier (ROADMAP item: "serving tier").

Sessions over one access method, snapshot-isolation transactions with
OCC validate-at-commit (Kung–Robinson), and an ARIES-style redo-only
write-ahead log whose recovery replays committed-but-unapplied
transactions after a crash.  See :mod:`repro.serve.server` for the
protocol and :mod:`repro.serve.wal` for the log format; the
deterministic multi-client benchmark harness lives in
:mod:`repro.serve.bench`.
"""

from repro.serve.bench import BenchReport, ClientStats, run_bench
from repro.serve.server import (
    CommitTicket,
    RecoveryReport,
    Server,
    ServerCrashed,
    Session,
    SyncPolicy,
)
from repro.serve.txn import (
    Transaction,
    TransactionConflict,
    TransactionStateError,
    TxnStatus,
)
from repro.serve.versions import ABSENT, CommitLog, VersionStore
from repro.serve.wal import WalRecord, WriteAheadLog, WAL_BLOCK_KIND

__all__ = [
    "ABSENT",
    "BenchReport",
    "ClientStats",
    "CommitLog",
    "CommitTicket",
    "RecoveryReport",
    "Server",
    "ServerCrashed",
    "Session",
    "SyncPolicy",
    "Transaction",
    "TransactionConflict",
    "TransactionStateError",
    "TxnStatus",
    "VersionStore",
    "WAL_BLOCK_KIND",
    "WalRecord",
    "WriteAheadLog",
    "run_bench",
]
