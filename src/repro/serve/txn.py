"""Transaction state for the serving tier.

A :class:`Transaction` is pure bookkeeping — the Kung–Robinson *read
phase* made explicit.  It records the snapshot version it reads at, the
keys and ranges it observed (the read set OCC validates at commit), and
its buffered writes (nothing touches the access method until the server
commits it).  All actual I/O, validation, and durability live in
:class:`repro.serve.server.Server`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.serve.versions import ABSENT


class TxnStatus(enum.Enum):
    """Lifecycle of a transaction.

    ``PARKED`` is the group-commit limbo between validation and
    durability: the transaction won validation and its redo + commit
    records are appended (buffered) in the WAL, but the group's sync has
    not happened yet.  A parked transaction accepts no further
    operations; it becomes ``COMMITTED`` when its group syncs, or simply
    vanishes (with the whole group's unacked tail) if the server crashes
    first.
    """

    ACTIVE = "active"
    PARKED = "parked"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TransactionConflict(RuntimeError):
    """Raised at commit when OCC validation fails.

    Carries the conflicting committed version and key so callers (and
    the bench harness's retry loop) can report *why* the abort happened.
    """

    def __init__(self, txn_id: int, version: int, key: int) -> None:
        super().__init__(
            f"transaction {txn_id} aborted: its read set includes key "
            f"{key}, written by the transaction committed at version "
            f"{version} after this snapshot was taken"
        )
        self.txn_id = txn_id
        self.version = version
        self.key = key


class TransactionStateError(RuntimeError):
    """An operation was attempted on a non-active transaction."""


@dataclass
class Transaction:
    """One client transaction: snapshot + read set + write buffer."""

    txn_id: int
    snapshot_version: int
    status: TxnStatus = TxnStatus.ACTIVE
    #: Keys read (point reads), validated against later write sets.
    read_keys: Set[int] = field(default_factory=set)
    #: Inclusive ``[lo, hi]`` ranges scanned (phantom protection).
    read_ranges: List[Tuple[int, int]] = field(default_factory=list)
    #: Buffered writes: key -> new value, or :data:`ABSENT` for delete.
    #: Insertion order is preserved; the WAL and the apply path replay
    #: the *final* per-key intent, which is all redo logging needs.
    writes: Dict[int, object] = field(default_factory=dict)
    #: Commit version, set by the server when the commit succeeds.
    commit_version: int = 0

    def require_active(self) -> None:
        """Raise :class:`TransactionStateError` unless still active."""
        if self.status is not TxnStatus.ACTIVE:
            raise TransactionStateError(
                f"transaction {self.txn_id} is {self.status.value}; "
                f"begin a new transaction"
            )

    # ------------------------------------------------------------------
    # Read-phase bookkeeping (called by the server)
    # ------------------------------------------------------------------
    def note_read(self, key: int) -> None:
        """Add ``key`` to the read set validated at commit."""
        self.read_keys.add(key)

    def note_range(self, lo: int, hi: int) -> None:
        """Add a scanned range predicate (phantom protection)."""
        self.read_ranges.append((lo, hi))

    def buffer_put(self, key: int, value: int) -> None:
        """Buffer an upsert intent; applied only if the commit wins."""
        self.writes[key] = value

    def buffer_delete(self, key: int) -> None:
        """Buffer a delete intent (the :data:`ABSENT` sentinel)."""
        self.writes[key] = ABSENT

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_read_only(self) -> bool:
        return not self.writes

    @property
    def write_keys(self) -> Tuple[int, ...]:
        return tuple(self.writes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transaction(id={self.txn_id}, snapshot={self.snapshot_version}, "
            f"status={self.status.value}, reads={len(self.read_keys)}, "
            f"writes={len(self.writes)})"
        )
