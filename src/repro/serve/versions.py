"""Version bookkeeping behind snapshot reads and OCC validation.

Two small in-memory structures the server keeps *beside* the access
method (which always holds the latest committed state):

* :class:`VersionStore` — a pre-image overlay.  When a commit at
  version ``V`` overwrites key ``k``, the value ``k`` had *before* is
  recorded under ``(k, V)``.  A transaction whose snapshot is ``S``
  then reads ``k`` as: the pre-image of the earliest overwrite with
  version ``> S`` if one exists (that was ``k``'s value at ``S``),
  otherwise the method's current value (nobody overwrote it since
  ``S``).  This is multiversioning by undo images — the Byde–Twigg
  versioned-dictionary idea restricted to the window that active
  snapshots can still observe.

* :class:`CommitLog` — recent committed write sets, keyed by commit
  version.  Kung–Robinson backward validation: a transaction with
  snapshot ``S`` and read set ``R`` commits only if no transaction with
  version ``> S`` wrote a key in ``R`` (or inside one of the
  transaction's scanned ranges — which also closes the phantom window).

Both structures are pruned against the oldest active snapshot, so their
footprint tracks the number of in-flight transactions, not history.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Tuple


class _Absent:
    """Sentinel for "key did not exist" (distinct from any value)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ABSENT"


#: The singleton absent marker used across the serving tier.
ABSENT = _Absent()

#: Sentinel returned by :meth:`VersionStore.read_at` when the overlay has
#: no opinion and the caller must consult the access method.
CURRENT = _Absent()


class VersionStore:
    """Pre-image overlay: what each key looked like at older versions."""

    def __init__(self) -> None:
        # key -> parallel lists: ascending overwrite versions and the
        # pre-images recorded at them.  Kept parallel (rather than one
        # list of pairs) so read_at — the hottest serve read path — can
        # bisect the version list directly instead of rebuilding it per
        # read; see the micro-bench note in EXPERIMENTS.md.
        self._versions: Dict[int, List[int]] = {}
        self._values: Dict[int, List[object]] = {}

    def record_preimage(self, key: int, version: int, old_value: object) -> None:
        """Record that ``key`` held ``old_value`` before commit ``version``.

        ``old_value`` may be :data:`ABSENT`.  Commits are applied in
        version order, so appends keep each key's list sorted.
        """
        versions = self._versions.setdefault(key, [])
        if versions and versions[-1] >= version:
            raise ValueError(
                f"pre-image versions must be recorded in order: "
                f"{version} after {versions[-1]} for key {key}"
            )
        versions.append(version)
        self._values.setdefault(key, []).append(old_value)

    def read_at(self, key: int, snapshot: int) -> object:
        """The value of ``key`` at snapshot version ``snapshot``.

        Returns the recorded pre-image (possibly :data:`ABSENT`) when a
        commit newer than the snapshot overwrote the key, or
        :data:`CURRENT` when the method's live value is still the value
        the snapshot saw.
        """
        versions = self._versions.get(key)
        if not versions:
            return CURRENT
        # Earliest overwrite with version > snapshot: its pre-image is
        # the value as of the snapshot.
        index = bisect_right(versions, snapshot)
        if index == len(versions):
            return CURRENT
        return self._values[key][index]

    def overlay_keys(self, lo: int, hi: int) -> List[int]:
        """Overlaid keys in ``[lo, hi]`` (for snapshot range merges)."""
        return sorted(
            key for key in self._versions if lo <= key <= hi
        )

    def prune(self, oldest_snapshot: int) -> int:
        """Drop pre-images no active snapshot can still observe.

        A pre-image recorded at overwrite version ``V`` serves snapshots
        ``S < V`` only; once the oldest active snapshot reaches ``V`` it
        is garbage.  Returns the number of entries dropped.
        """
        dropped = 0
        dead: List[int] = []
        for key, versions in self._versions.items():
            # Versions are ascending, so the survivors are a suffix.
            keep_from = bisect_right(versions, oldest_snapshot)
            if not keep_from:
                continue
            dropped += keep_from
            if keep_from == len(versions):
                dead.append(key)
            else:
                self._versions[key] = versions[keep_from:]
                self._values[key] = self._values[key][keep_from:]
        for key in dead:
            del self._versions[key]
            del self._values[key]
        return dropped

    @property
    def entry_count(self) -> int:
        return sum(len(versions) for versions in self._versions.values())


class CommitLog:
    """Recent committed write sets, for backward OCC validation."""

    def __init__(self) -> None:
        # Parallel lists sorted by version (commits arrive in order).
        self._versions: List[int] = []
        self._write_sets: List[frozenset] = []

    def record(self, version: int, keys: Iterable[int]) -> None:
        """Record a committed write set; versions must arrive in order."""
        if self._versions and version <= self._versions[-1]:
            raise ValueError(
                f"commit versions must be recorded in order: "
                f"{version} after {self._versions[-1]}"
            )
        self._versions.append(version)
        self._write_sets.append(frozenset(keys))

    def conflict(
        self,
        snapshot: int,
        read_keys: Iterable[int],
        read_ranges: Iterable[Tuple[int, int]] = (),
    ) -> Optional[Tuple[int, int]]:
        """First conflicting ``(version, key)`` after ``snapshot``, if any.

        A conflict is a committed transaction with version ``> snapshot``
        whose write set intersects ``read_keys`` or lands inside one of
        the inclusive ``read_ranges`` (phantom protection for scans).
        """
        start = bisect_right(self._versions, snapshot)
        if start == len(self._versions):
            return None
        reads = set(read_keys)
        ranges = list(read_ranges)
        for index in range(start, len(self._versions)):
            for key in self._write_sets[index]:
                if key in reads or any(lo <= key <= hi for lo, hi in ranges):
                    return self._versions[index], key
        return None

    def prune(self, oldest_snapshot: int) -> int:
        """Drop write sets no active transaction can conflict with."""
        keep_from = bisect_right(self._versions, oldest_snapshot)
        del self._versions[:keep_from]
        del self._write_sets[:keep_from]
        return keep_from

    @property
    def entry_count(self) -> int:
        return len(self._versions)


def merge_snapshot_range(
    method_records: List[Tuple[int, int]],
    store: VersionStore,
    snapshot: int,
    lo: int,
    hi: int,
) -> List[Tuple[int, int]]:
    """Rewind a live range-query result to ``snapshot``.

    ``method_records`` is the method's current (sorted) answer for
    ``[lo, hi]``.  Every key the overlay has an opinion about inside the
    range is corrected: keys overwritten since the snapshot revert to
    their pre-image, and keys that did not exist at the snapshot drop
    out; keys deleted since the snapshot re-appear.
    """
    overlay = store.overlay_keys(lo, hi)
    if not overlay:
        return list(method_records)
    corrections = {key: store.read_at(key, snapshot) for key in overlay}
    merged: Dict[int, int] = {}
    for key, value in method_records:
        merged[key] = value
    for key, value in corrections.items():
        if value is CURRENT:
            continue
        if value is ABSENT:
            merged.pop(key, None)
        else:
            merged[key] = value
    return sorted(merged.items())
