"""The write-ahead log of the serving tier.

ARIES-style *redo-only* logging: every transaction's writes are appended
to the log and made durable — one device write per sync, modeling an
``fsync`` — **before** any of them is applied to the access method.
Uncommitted data therefore never reaches the structure, so recovery
never undoes anything: it replays committed-but-possibly-unapplied
transactions idempotently (see :meth:`WriteAheadLog.replay` and
:meth:`repro.serve.server.Server.recover`).

The log lives in blocks of kind ``"wal"`` on the *same* store as the
access method it protects, so logging I/O and log space show up
honestly in the measured UO and MO — exactly the RUM bookkeeping the
rest of the library does.  That store is any
:class:`~repro.storage.store.LogStore` — a bare
:class:`~repro.storage.device.SimulatedDevice`, or a whole chained
write-back hierarchy behind a
:class:`~repro.storage.hierarchy.HierarchicalDevice` facade.  In the
latter case a log write lands in the top level's pool and is **not yet
durable**; :meth:`WriteAheadLog.sync` finishes with
``store.sync_through(written_blocks)`` — the modeled fsync — which
forces those blocks' dirty frames down through every level to the
backing device.  Only when that returns are the records durable, which
is the invariant the crash sweep checks: a crash between pool-write and
write-back must never lose an acked commit.

Record format
-------------
Each record is a 6-element list ``[lsn, txn_id, kind, key, value, crc]``:

* ``lsn`` — log sequence number, strictly contiguous across the log;
* ``kind`` — ``"put"`` (redo: upsert), ``"del"`` (redo: delete if
  present), ``"commit"`` (``key`` carries the commit version) or
  ``"ckpt"`` (``key`` carries the checkpoint version: every commit with
  a version ``<=`` it is durably applied, so replay may start after it);
* ``crc`` — CRC-32 of the canonical JSON of the first five fields.

A block payload is a plain list of records, which meshes with
:class:`~repro.check.faults.FaultyDevice` torn writes: a torn write
keeps a *prefix* of the list (or scars the block entirely), and replay
drops the first block holding a record that fails the CRC, the shape
check, or LSN contiguity — plus everything after it — the classic
torn-tail truncation.  Durable blocks are never rewritten (see
:meth:`WriteAheadLog.sync`) and records are appended in transaction
order, so a surviving ``commit`` record proves every earlier record of
its transaction also survived.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.storage.block import BlockId
from repro.storage.store import LogStore

#: Block-kind tag of every log block; fault plans and audits key on it.
WAL_BLOCK_KIND = "wal"

#: Declared size of one serialized log record, for occupancy accounting
#: (a record is a handful of integers plus a short tag).
WAL_RECORD_BYTES = 32

#: Record kinds (``WalRecord.kind``).
PUT = "put"
DELETE = "del"
COMMIT = "commit"
CHECKPOINT = "ckpt"

_KINDS = frozenset({PUT, DELETE, COMMIT, CHECKPOINT})


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record.

    ``key``/``value`` are operation payload for ``put``/``del``; for
    ``commit`` and ``ckpt`` records ``key`` carries the version number
    and ``value`` is zero.
    """

    lsn: int
    txn_id: int
    kind: str
    key: int
    value: int

    def encoded(self) -> List[int]:
        """The on-device form: the five fields plus their CRC."""
        return [self.lsn, self.txn_id, self.kind, self.key, self.value,
                _crc(self.lsn, self.txn_id, self.kind, self.key, self.value)]


def _crc(lsn: int, txn_id: int, kind: str, key: int, value: int) -> int:
    payload = json.dumps([lsn, txn_id, kind, key, value],
                         separators=(",", ":")).encode()
    return zlib.crc32(payload)


def decode_record(entry: object) -> Optional[WalRecord]:
    """Decode one on-device entry; ``None`` if it is damaged.

    Damage is anything a torn write can leave behind: a non-list entry,
    wrong arity, non-integer fields, an unknown kind, or a CRC mismatch.
    """
    if not isinstance(entry, list) or len(entry) != 6:
        return None
    lsn, txn_id, kind, key, value, crc = entry
    if not all(isinstance(field, int) for field in (lsn, txn_id, key, value, crc)):
        return None
    if kind not in _KINDS:
        return None
    if crc != _crc(lsn, txn_id, kind, key, value):
        return None
    return WalRecord(lsn=lsn, txn_id=txn_id, kind=kind, key=key, value=value)


class WriteAheadLog:
    """An append-only redo log in ``"wal"`` blocks of one block store.

    Appends buffer in memory; :meth:`sync` makes them durable by writing
    the tail block (and any overflow blocks) through the store and then
    forcing them to the backing device with ``sync_through`` — the
    modeled ``fsync``.  Under group commit several transactions' records
    ride one sync, so durability costs one (or, across block
    boundaries, a few) backed block writes per *group*, not per commit.

    The in-memory state (pending buffer, next LSN, known block list) is
    process state: after a crash a fresh instance rebuilds it from the
    store via :meth:`replay`, which is also what truncates a torn tail.
    """

    def __init__(self, store: LogStore) -> None:
        self.store = store
        if store.block_bytes < WAL_RECORD_BYTES:
            raise ValueError(
                f"block_bytes {store.block_bytes} cannot hold one "
                f"{WAL_RECORD_BYTES}-byte WAL record"
            )
        self.records_per_block = store.block_bytes // WAL_RECORD_BYTES
        #: Intact log blocks in append order (block ids are allocated
        #: monotonically, so id order is append order).
        self._blocks: List[BlockId] = []
        #: Appended but not yet synced records.
        self._pending: List[List[int]] = []
        self._next_lsn = 0
        self.syncs = 0
        self.appended = 0
        #: Log blocks written by syncs — the WAL's share of the UO
        #: numerator, the count group commit divides by ~N.
        self.blocks_written = 0

    @property
    def device(self) -> LogStore:
        """Back-compat alias: the store the log lives on."""
        return self.store

    # ------------------------------------------------------------------
    # Append + sync
    # ------------------------------------------------------------------
    def append(self, txn_id: int, kind: str, key: int, value: int = 0) -> WalRecord:
        """Buffer one record (not durable until :meth:`sync`)."""
        if kind not in _KINDS:
            raise ValueError(f"unknown WAL record kind {kind!r}")
        record = WalRecord(
            lsn=self._next_lsn, txn_id=txn_id, kind=kind, key=key, value=value
        )
        self._next_lsn += 1
        self._pending.append(record.encoded())
        self.appended += 1
        return record

    def sync(self) -> int:
        """Flush buffered records to the device; return blocks written.

        Every sync writes *fresh* blocks — a durable block is never
        rewritten.  This is the simulation's analogue of sector-aligned
        log appends: a torn write can only damage records that were not
        yet durable, never an earlier transaction's commit or checkpoint
        record whose effects may already be applied (rewriting the tail
        in place would let one torn write silently re-expose old data by
        pushing replay's starting point back).  The cost is partially
        filled log blocks between checkpoints — space amplification the
        MO measurement reports honestly.
        """
        if not self._pending:
            return 0
        written_ids: List[BlockId] = []
        while self._pending:
            taking = self._pending[: self.records_per_block]
            block_id = self.store.allocate(WAL_BLOCK_KIND)
            # On a bare device this write is the durability point (and,
            # through a FaultyDevice, the torn-write injection point);
            # behind a hierarchy it only lands in the top level's pool.
            self.store.write(
                block_id,
                list(taking),
                used_bytes=len(taking) * WAL_RECORD_BYTES,
            )
            self._blocks.append(block_id)
            written_ids.append(block_id)
            del self._pending[: len(taking)]
        # The modeled fsync: force the written blocks' dirty frames
        # through every cache level to the backing device.  Only after
        # this returns are the records durable.
        self.store.sync_through(tuple(written_ids))
        self.syncs += 1
        self.blocks_written += len(written_ids)
        return len(written_ids)

    # ------------------------------------------------------------------
    # Checkpoint + truncation
    # ------------------------------------------------------------------
    def checkpoint(self, applied_version: int, txn_high_water: int = 0) -> int:
        """Record that all commits ``<= applied_version`` are applied.

        Appends a ``ckpt`` record, syncs, then frees every log block
        older than the one holding the checkpoint — replay starts at the
        last checkpoint, so those blocks can never be needed again.
        Returns the number of blocks freed (their space leaves MO).

        ``txn_high_water`` rides in the record's ``txn_id`` field: the
        highest transaction id handed out so far.  Freeing old blocks
        also discards the records that would otherwise witness those
        ids, and recovery must never reissue an id that may still have
        redo records in any surviving log tail.
        """
        self.append(txn_high_water, CHECKPOINT, applied_version)
        self.sync()
        keep_from = self._blocks[-1]
        freed = 0
        for block_id in self._blocks[:-1]:
            self.store.free(block_id)
            freed += 1
        self._blocks = [keep_from]
        return freed

    # ------------------------------------------------------------------
    # Recovery-side scan
    # ------------------------------------------------------------------
    def replay(self) -> Tuple[List[WalRecord], bool]:
        """Scan the log from the device; return ``(records, truncated)``.

        Rebuilds this instance's in-memory state (block list, tail,
        next LSN) as a side effect, so a fresh ``WriteAheadLog`` over a
        crashed device becomes the live log after one replay.  Reads are
        charged device I/O — recovery cost is honest.

        Blocks validate all-or-nothing: the scan stops at the first
        block holding a damaged or non-contiguous record
        (``truncated=True``), and that block plus everything after it is
        freed.  Syncs never rewrite durable blocks, so a damaged block
        can only hold records whose transaction was never acknowledged —
        its commit record is in or after the damage — and dropping the
        whole block keeps the durable log exactly the intact prefix,
        with no LSN gaps for a future replay to stumble over.
        """
        block_ids = sorted(
            block_id
            for block_id in self.store.iter_block_ids()
            if self.store.kind_of(block_id) == WAL_BLOCK_KIND
        )
        records: List[WalRecord] = []
        truncated = False
        expected: Optional[int] = None
        self._blocks = []
        self._pending = []
        for position, block_id in enumerate(block_ids):
            payload = self.store.read(block_id)
            block_records: List[WalRecord] = []
            damaged = not isinstance(payload, list) or not payload
            if not damaged:
                lsn = expected
                for entry in payload:
                    record = decode_record(entry)
                    if record is None or (
                        lsn is not None and record.lsn != lsn
                    ):
                        damaged = True
                        break
                    lsn = record.lsn + 1
                    block_records.append(record)
            if damaged:
                # This block and everything after it is dead log tail;
                # free it all so its half-written or stale records can
                # never alias the LSNs the live log writes next.
                truncated = True
                for dead_id in block_ids[position:]:
                    self.store.free(dead_id)
                break
            records.extend(block_records)
            expected = block_records[-1].lsn + 1
            self._blocks.append(block_id)
        self._next_lsn = expected if expected is not None else 0
        return records, truncated

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def blocks(self) -> Tuple[BlockId, ...]:
        """Log blocks currently known, in append order."""
        return tuple(self._blocks)

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    @property
    def pending_records(self) -> int:
        """Appended records not yet made durable by a sync."""
        return len(self._pending)

    def iter_committed(
        self, records: List[WalRecord], after_version: int = 0
    ) -> Iterator[Tuple[int, int, List[WalRecord]]]:
        """Group replayed records into committed transactions.

        Yields ``(version, txn_id, redo_records)`` in version order for
        every transaction whose ``commit`` record survived with a
        version greater than ``after_version``.  Records of
        transactions without a commit record are dropped — they were
        never durable, so their effects never reached the method.
        """
        by_txn: dict = {}
        committed: List[Tuple[int, int]] = []
        for record in records:
            if record.kind == CHECKPOINT:
                continue
            if record.kind == COMMIT:
                if record.key > after_version:
                    committed.append((record.key, record.txn_id))
            else:
                by_txn.setdefault(record.txn_id, []).append(record)
        committed.sort()
        for version, txn_id in committed:
            yield version, txn_id, by_txn.get(txn_id, [])

    @staticmethod
    def last_checkpoint(records: List[WalRecord]) -> int:
        """The highest checkpointed version in ``records`` (0 if none)."""
        version = 0
        for record in records:
            if record.kind == CHECKPOINT and record.key > version:
                version = record.key
        return version

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog(blocks={len(self._blocks)}, "
            f"next_lsn={self._next_lsn}, pending={len(self._pending)})"
        )
