"""The serving tier: sessions, OCC commits, and WAL recovery.

:class:`Server` multiplexes N client :class:`Session`\\ s over one
access method.  Transactions follow Kung–Robinson optimistic concurrency
control on top of snapshot isolation:

* **Read phase** — each transaction reads at the version current when it
  began.  Point reads consult the transaction's own write buffer, then
  the :class:`~repro.serve.versions.VersionStore` pre-image overlay,
  then the live method; range scans rewind the method's live answer
  through the overlay.  Writes only buffer.
* **Validate** — at commit, the read set (keys + scanned ranges) is
  checked against the write sets of every transaction that committed
  after this one's snapshot (backward validation).  Any intersection
  aborts with :class:`~repro.serve.txn.TransactionConflict`.
* **Write phase** — the winner's redo records plus a ``commit`` record
  are appended to the :class:`~repro.serve.wal.WriteAheadLog` and synced
  (the modeled fsync) **before** any of them touches the method; then
  the writes are applied, capturing pre-images into the overlay.

Crash = :class:`~repro.check.faults.DeviceFault` escaping a commit: the
process state (write buffers, overlay, tail buffer) is gone, the device
keeps whatever was durably written.  "Restart" is a fresh ``Server``
over the same method + device, whose :meth:`Server.recover` replays
committed-but-unapplied transactions from the log — redo-only and
idempotent, so it is correct whether the crash hit the WAL append, the
gap between commit record and apply, or the middle of the apply.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.check.faults import DeviceFault
from repro.core.interfaces import AccessMethod, Record
from repro.obs.spans import span
from repro.obs.tracer import emit_txn_event
from repro.serve.txn import (
    Transaction,
    TransactionConflict,
    TransactionStateError,
    TxnStatus,
)
from repro.serve.versions import (
    ABSENT,
    CURRENT,
    CommitLog,
    VersionStore,
    merge_snapshot_range,
)
from repro.serve.wal import COMMIT, DELETE, PUT, WriteAheadLog

#: Source tag on every trace event the serving tier emits.
TRACE_SOURCE = "serve"

#: Commits between automatic WAL checkpoints (0 disables).
DEFAULT_CHECKPOINT_EVERY = 32


class ServerCrashed(RuntimeError):
    """The server took a device fault mid-commit and must be restarted.

    The underlying device holds a durable prefix of the crash; build a
    fresh :class:`Server` over the same method and call
    :meth:`Server.recover`.
    """


@dataclass
class RecoveryReport:
    """What :meth:`Server.recover` found and did."""

    #: Log records that survived on the device (valid prefix).
    records_scanned: int = 0
    #: True when replay hit a torn tail and truncated it.
    truncated: bool = False
    #: Checkpoint version the replay started after.
    checkpoint_version: int = 0
    #: Commit versions replayed (idempotently re-applied).
    replayed_versions: List[int] = field(default_factory=list)
    #: Txn ids of the replayed commits, in version order.
    replayed_txns: List[int] = field(default_factory=list)
    #: Version the server resumed at.
    resumed_version: int = 0
    #: Old log blocks freed by the post-recovery checkpoint.
    blocks_freed: int = 0

    @property
    def transactions_replayed(self) -> int:
        return len(self.replayed_versions)


class Session:
    """One client's handle on the server: at most one active txn.

    Sessions are thin — all state of consequence lives in the
    :class:`~repro.serve.txn.Transaction` and the server.  Operations
    outside a transaction raise
    :class:`~repro.serve.txn.TransactionStateError`.
    """

    def __init__(self, server: "Server", client_id: int) -> None:
        self.server = server
        self.client_id = client_id
        self.txn: Optional[Transaction] = None
        self.commits = 0
        self.aborts = 0

    def _active(self) -> Transaction:
        if self.txn is None or self.txn.status is not TxnStatus.ACTIVE:
            raise TransactionStateError(
                f"client {self.client_id} has no active transaction; "
                f"call begin() first"
            )
        return self.txn

    def begin(self) -> Transaction:
        """Start a transaction; rejects if one is already active."""
        if self.txn is not None and self.txn.status is TxnStatus.ACTIVE:
            raise TransactionStateError(
                f"client {self.client_id} already has an active "
                f"transaction (id {self.txn.txn_id})"
            )
        self.txn = self.server.begin()
        return self.txn

    def get(self, key: int) -> Optional[int]:
        """Snapshot point read (own buffered writes win)."""
        return self.server.read(self._active(), key)

    def range(self, lo: int, hi: int) -> List[Record]:
        """Snapshot range scan over ``[lo, hi]``, merged with own writes."""
        return self.server.range_read(self._active(), lo, hi)

    def put(self, key: int, value: int) -> None:
        """Buffer an upsert; nothing reaches the method until commit."""
        self._active().buffer_put(key, value)

    def delete(self, key: int) -> None:
        """Buffer a delete; nothing reaches the method until commit."""
        self._active().buffer_delete(key)

    def commit(self) -> int:
        """Validate and commit; returns the commit version.

        Raises :class:`~repro.serve.txn.TransactionConflict` when
        backward validation fails.
        """
        version = self.server.commit(self._active())
        self.commits += 1
        return version

    def abort(self) -> None:
        """Abandon the active transaction, discarding its buffer."""
        self.server.abort(self._active())
        self.aborts += 1

    @property
    def in_txn(self) -> bool:
        return self.txn is not None and self.txn.status is TxnStatus.ACTIVE


class Server:
    """Transactional front-end over one access method + its device.

    All shared state is guarded by one re-entrant lock: commits are
    short critical sections (validate → log → apply), which is the
    single-writer heart of OCC — concurrency comes from read phases
    overlapping freely, not from interleaved applies.
    """

    def __init__(
        self,
        method: AccessMethod,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    ) -> None:
        self.method = method
        self.device = method.device
        self.wal = WriteAheadLog(self.device)
        self.versions = VersionStore()
        self.commit_log = CommitLog()
        self.checkpoint_every = checkpoint_every
        self._lock = threading.RLock()
        self._version = 0
        self._next_txn_id = 1
        self._next_client_id = 1
        self._active: Dict[int, Transaction] = {}
        self._crashed = False
        self.commits = 0
        self.aborts = 0
        self.checkpoints = 0
        self._commits_since_checkpoint = 0

    # ------------------------------------------------------------------
    # Sessions + lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> Session:
        """Open a new client session with a fresh client id."""
        with self._lock:
            client_id = self._next_client_id
            self._next_client_id += 1
        return Session(self, client_id)

    @property
    def version(self) -> int:
        """The latest committed version."""
        return self._version

    @property
    def active_transactions(self) -> int:
        return len(self._active)

    def _check_alive(self) -> None:
        if self._crashed:
            raise ServerCrashed(
                "this server took a device fault mid-commit; restart with "
                "a fresh Server over the same method and call recover()"
            )

    def begin(self) -> Transaction:
        """Issue a transaction pinned to the current snapshot version."""
        with self._lock:
            self._check_alive()
            txn = Transaction(
                txn_id=self._next_txn_id, snapshot_version=self._version
            )
            self._next_txn_id += 1
            self._active[txn.txn_id] = txn
            emit_txn_event(
                self.device.tracer, TRACE_SOURCE, "txn-begin", txn.txn_id,
                detail=f"snapshot={txn.snapshot_version}",
            )
            return txn

    # ------------------------------------------------------------------
    # Read phase
    # ------------------------------------------------------------------
    def read(self, txn: Transaction, key: int) -> Optional[int]:
        """Point read at ``txn``'s snapshot; grows its read set."""
        txn.require_active()
        if key in txn.writes:
            # Own buffered write wins; it observed no committed state,
            # so it does not grow the read set.
            value = txn.writes[key]
            return None if value is ABSENT else value
        txn.note_read(key)
        with self._lock:
            self._check_alive()
            overlay = self.versions.read_at(key, txn.snapshot_version)
            if overlay is not CURRENT:
                return None if overlay is ABSENT else overlay
            return self.method.get(key)

    def range_read(self, txn: Transaction, lo: int, hi: int) -> List[Record]:
        """Range scan at ``txn``'s snapshot; notes the range predicate.

        The live method answer is rewound through the pre-image
        overlay, then the transaction's own buffered writes are merged
        on top.
        """
        txn.require_active()
        if lo > hi:
            raise ValueError(f"empty range: lo {lo} > hi {hi}")
        txn.note_range(lo, hi)
        with self._lock:
            self._check_alive()
            live = self.method.range_query(lo, hi)
            records = merge_snapshot_range(
                live, self.versions, txn.snapshot_version, lo, hi
            )
        if txn.writes:
            merged = dict(records)
            for key, value in txn.writes.items():
                if lo <= key <= hi:
                    if value is ABSENT:
                        merged.pop(key, None)
                    else:
                        merged[key] = value
            records = sorted(merged.items())
        return records

    # ------------------------------------------------------------------
    # Commit: validate -> log -> apply
    # ------------------------------------------------------------------
    def commit(self, txn: Transaction) -> int:
        """Validate → log → apply; returns the new commit version.

        Read-only transactions commit at their snapshot with no
        validation, logging, or apply.  A :class:`DeviceFault` escaping
        the log/apply marks the server crashed — restart and
        :meth:`recover`.
        """
        txn.require_active()
        with self._lock:
            self._check_alive()
            if txn.is_read_only:
                # Nothing to validate, log, or apply: every read came
                # from the snapshot, which is a consistent prefix of
                # history by construction — later commits cannot
                # invalidate it.
                txn.commit_version = txn.snapshot_version
                self._finish(txn, TxnStatus.COMMITTED)
                emit_txn_event(
                    self.device.tracer, TRACE_SOURCE, "txn-commit",
                    txn.txn_id, detail="read-only",
                )
                return txn.snapshot_version
            emit_txn_event(
                self.device.tracer, TRACE_SOURCE, "txn-validate", txn.txn_id,
                detail=f"reads={len(txn.read_keys)} writes={len(txn.writes)}",
            )
            conflict = self.commit_log.conflict(
                txn.snapshot_version, txn.read_keys, txn.read_ranges
            )
            if conflict is not None:
                version, key = conflict
                self._finish(txn, TxnStatus.ABORTED)
                emit_txn_event(
                    self.device.tracer, TRACE_SOURCE, "txn-abort", txn.txn_id,
                    detail=f"conflict key={key} version={version}",
                )
                raise TransactionConflict(txn.txn_id, version, key)
            version = self._version + 1
            try:
                self._log_and_apply(txn, version)
            except DeviceFault:
                # The crash: in-memory state is now untrustworthy.
                self._crashed = True
                raise
            txn.commit_version = version
            self._version = version
            self.commit_log.record(version, txn.writes)
            self._finish(txn, TxnStatus.COMMITTED)
            self.commits += 1
            emit_txn_event(
                self.device.tracer, TRACE_SOURCE, "txn-commit", txn.txn_id,
                detail=f"version={version}",
            )
            self._prune()
            self._commits_since_checkpoint += 1
            if (
                self.checkpoint_every
                and self._commits_since_checkpoint >= self.checkpoint_every
            ):
                self.checkpoint()
            return version

    def _log_and_apply(self, txn: Transaction, version: int) -> None:
        with span("serve.wal"):
            for key, value in txn.writes.items():
                if value is ABSENT:
                    self.wal.append(txn.txn_id, DELETE, key)
                else:
                    self.wal.append(txn.txn_id, PUT, key, value)
                emit_txn_event(
                    self.device.tracer, TRACE_SOURCE, "wal-append",
                    txn.txn_id, detail=f"lsn={self.wal.next_lsn - 1}",
                )
            self.wal.append(txn.txn_id, COMMIT, version)
            emit_txn_event(
                self.device.tracer, TRACE_SOURCE, "wal-append", txn.txn_id,
                detail=f"lsn={self.wal.next_lsn - 1} commit",
            )
            # The modeled fsync: the txn is durable when this returns.
            self.wal.sync()
            emit_txn_event(
                self.device.tracer, TRACE_SOURCE, "wal-sync", txn.txn_id,
                detail=f"version={version}",
            )
        with span("serve.apply"):
            for key, value in txn.writes.items():
                old = self.method.get(key)
                self.versions.record_preimage(
                    key, version, ABSENT if old is None else old
                )
                if value is ABSENT:
                    if old is not None:
                        self.method.delete(key)
                elif old is None:
                    self.method.insert(key, value)
                else:
                    self.method.update(key, value)

    def abort(self, txn: Transaction) -> None:
        """Abort ``txn`` at the client's request; its buffer is dropped."""
        txn.require_active()
        with self._lock:
            self._finish(txn, TxnStatus.ABORTED)
            emit_txn_event(
                self.device.tracer, TRACE_SOURCE, "txn-abort", txn.txn_id,
                detail="requested",
            )

    def _finish(self, txn: Transaction, status: TxnStatus) -> None:
        txn.status = status
        self._active.pop(txn.txn_id, None)

    def _oldest_snapshot(self) -> int:
        if not self._active:
            return self._version
        return min(txn.snapshot_version for txn in self._active.values())

    def _prune(self) -> None:
        oldest = self._oldest_snapshot()
        self.versions.prune(oldest)
        self.commit_log.prune(oldest)

    # ------------------------------------------------------------------
    # Checkpoint + recovery
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Checkpoint the WAL; returns blocks freed."""
        with self._lock:
            self._check_alive()
            with span("serve.wal"):
                try:
                    freed = self.wal.checkpoint(
                        self._version, self._next_txn_id - 1
                    )
                except DeviceFault:
                    self._crashed = True
                    raise
            self.checkpoints += 1
            self._commits_since_checkpoint = 0
            emit_txn_event(
                self.device.tracer, TRACE_SOURCE, "checkpoint", 0,
                detail=f"version={self._version} freed={freed}",
            )
            return freed

    def recover(self) -> RecoveryReport:
        """Replay the WAL after a crash; returns what was redone.

        Must be called on a *fresh* server (no commits yet) over the
        crashed device.  Redo is idempotent — a ``put`` upserts and a
        ``del`` deletes-if-present — so it does not matter how far the
        crashed process got through its apply.
        """
        with self._lock:
            if self._version or self.commits:
                raise TransactionStateError(
                    "recover() must run on a fresh server, before any "
                    "transactions"
                )
            report = RecoveryReport()
            try:
                return self._recover_locked(report)
            except DeviceFault:
                # A crash during recovery: same rule as a crash during
                # commit — restart with another fresh server.
                self._crashed = True
                raise

    def _recover_locked(self, report: RecoveryReport) -> RecoveryReport:
            with span("serve.recover"):
                # A real restart re-opens the structure first: derived
                # in-memory bookkeeping died with the crashed process.
                self.method.reopen()
                records, truncated = self.wal.replay()
                report.records_scanned = len(records)
                report.truncated = truncated
                report.checkpoint_version = WriteAheadLog.last_checkpoint(
                    records
                )
                resumed = report.checkpoint_version
                max_txn_id = 0
                for record in records:
                    if record.txn_id > max_txn_id:
                        max_txn_id = record.txn_id
                for version, txn_id, redo in self.wal.iter_committed(
                    records, after_version=report.checkpoint_version
                ):
                    final: Dict[int, object] = {}
                    for record in redo:
                        final[record.key] = (
                            ABSENT if record.kind == DELETE else record.value
                        )
                    for key, value in final.items():
                        old = self.method.get(key)
                        if value is ABSENT:
                            if old is not None:
                                self.method.delete(key)
                        elif old is None:
                            self.method.insert(key, value)
                        else:
                            self.method.update(key, value)
                    report.replayed_versions.append(version)
                    report.replayed_txns.append(txn_id)
                    resumed = max(resumed, version)
                self._version = resumed
                self._next_txn_id = max_txn_id + 1
                report.resumed_version = resumed
            emit_txn_event(
                self.device.tracer, TRACE_SOURCE, "recover", 0,
                detail=(
                    f"replayed={report.transactions_replayed} "
                    f"version={resumed} truncated={truncated}"
                ),
            )
            # Bound the next recovery and drop dead log blocks; also
            # repairs a torn tail (the checkpoint sync rewrites it with
            # only its valid prefix plus the new record).
            report.blocks_freed = self.checkpoint()
            return report
