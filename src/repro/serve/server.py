"""The serving tier: sessions, OCC commits, and WAL recovery.

:class:`Server` multiplexes N client :class:`Session`\\ s over one
access method.  Transactions follow Kung–Robinson optimistic concurrency
control on top of snapshot isolation:

* **Read phase** — each transaction reads at the version current when it
  began.  Point reads consult the transaction's own write buffer, then
  the :class:`~repro.serve.versions.VersionStore` pre-image overlay,
  then the live method; range scans rewind the method's live answer
  through the overlay.  Writes only buffer.
* **Validate** — at commit, the read set (keys + scanned ranges) is
  checked against the write sets of every transaction that committed
  after this one's snapshot (backward validation).  Any intersection
  aborts with :class:`~repro.serve.txn.TransactionConflict`.
* **Write phase** — the winner's redo records plus a ``commit`` record
  are appended to the :class:`~repro.serve.wal.WriteAheadLog` and the
  transaction *parks* on a :class:`CommitTicket`.  A :class:`SyncPolicy`
  decides when the group syncs: per commit (the default, PR 8's
  behavior), once ``N`` commits are parked, or when the oldest parked
  commit has waited a simulated-time deadline.  One ``wal.sync()`` (the
  modeled fsync) then makes the whole group durable, every parked
  ticket is acked at once, and only then are the group's writes applied
  in version order, capturing pre-images into the overlay — so log
  records always hit the store **before** any write touches the method,
  and durability costs one sync per group instead of one per commit.

Crash = :class:`~repro.check.faults.DeviceFault` escaping a commit: the
process state (write buffers, overlay, tail buffer) is gone, the device
keeps whatever was durably written.  "Restart" is a fresh ``Server``
over the same method + device, whose :meth:`Server.recover` replays
committed-but-unapplied transactions from the log — redo-only and
idempotent, so it is correct whether the crash hit the WAL append, the
gap between commit record and apply, or the middle of the apply.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.check.faults import DeviceFault
from repro.core.interfaces import AccessMethod, Record
from repro.obs.live import LiveRegistry
from repro.obs.spans import span
from repro.obs.tracer import emit_txn_event
from repro.serve.txn import (
    Transaction,
    TransactionConflict,
    TransactionStateError,
    TxnStatus,
)
from repro.serve.versions import (
    ABSENT,
    CURRENT,
    CommitLog,
    VersionStore,
    merge_snapshot_range,
)
from repro.serve.wal import COMMIT, DELETE, PUT, WriteAheadLog

#: Source tag on every trace event the serving tier emits.
TRACE_SOURCE = "serve"

#: Commits between automatic WAL checkpoints (0 disables).
DEFAULT_CHECKPOINT_EVERY = 32


@dataclass(frozen=True)
class SyncPolicy:
    """When the server turns parked commits into one modeled fsync.

    ``group_size == 1`` with no ``deadline`` is per-commit sync (every
    commit pays its own ``wal.sync()`` — PR 8's behavior).
    ``group_size == N`` syncs as soon as N commits are parked.
    ``deadline`` syncs when the oldest parked commit has waited that
    much simulated time; combined with ``group_size > 1`` the first
    trigger to fire wins.  Callers that would otherwise stall (e.g. the
    bench when every live client is parked) force a sync with
    :meth:`Server.poll_group`, which models the group-commit timer
    thread real servers run.
    """

    group_size: int = 1
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.group_size < 1:
            raise ValueError("group_size must be >= 1")
        if self.deadline is not None and self.deadline < 0:
            raise ValueError("deadline must be >= 0")

    @classmethod
    def every_commit(cls) -> "SyncPolicy":
        return cls()

    @classmethod
    def every_n(cls, group_size: int) -> "SyncPolicy":
        return cls(group_size=group_size)

    @classmethod
    def after_deadline(
        cls, deadline: float, group_size: int = 1
    ) -> "SyncPolicy":
        return cls(group_size=group_size, deadline=deadline)

    @property
    def batches(self) -> bool:
        """Whether commits can park at all (anything but per-commit)."""
        return self.group_size > 1 or self.deadline is not None

    def ready(self, parked: int, waited: float) -> bool:
        """Should a sync fire with ``parked`` commits, oldest waiting
        ``waited`` simulated-time units?"""
        if not self.batches:
            return True
        if self.group_size > 1 and parked >= self.group_size:
            return True
        return self.deadline is not None and waited >= self.deadline

    @property
    def label(self) -> str:
        if not self.batches:
            return "every-commit"
        parts = []
        if self.group_size > 1:
            parts.append(f"group={self.group_size}")
        if self.deadline is not None:
            parts.append(f"deadline={self.deadline:g}")
        return ",".join(parts)


@dataclass
class CommitTicket:
    """A validated commit's claim on durability.

    Handed out by :meth:`Server.commit` the moment validation succeeds
    and the redo + commit records are appended (buffered) in the WAL.
    ``acked`` flips when the group's sync makes those records durable —
    under the default per-commit policy that happens before ``commit``
    returns; under group commit the caller holds the ticket and waits.
    A ticket that is never acked belonged to a transaction the crash
    erased (all-or-nothing, but never acknowledged).
    """

    txn_id: int
    version: int
    acked: bool = False
    #: Simulated time when the commit parked (deadline bookkeeping).
    parked_at: float = 0.0
    #: Simulated time when the group sync acked it (latency bookkeeping).
    acked_at: float = 0.0


class ServerCrashed(RuntimeError):
    """The server took a device fault mid-commit and must be restarted.

    The underlying device holds a durable prefix of the crash; build a
    fresh :class:`Server` over the same method and call
    :meth:`Server.recover`.
    """


@dataclass
class RecoveryReport:
    """What :meth:`Server.recover` found and did."""

    #: Log records that survived on the device (valid prefix).
    records_scanned: int = 0
    #: True when replay hit a torn tail and truncated it.
    truncated: bool = False
    #: Checkpoint version the replay started after.
    checkpoint_version: int = 0
    #: Commit versions replayed (idempotently re-applied).
    replayed_versions: List[int] = field(default_factory=list)
    #: Txn ids of the replayed commits, in version order.
    replayed_txns: List[int] = field(default_factory=list)
    #: Version the server resumed at.
    resumed_version: int = 0
    #: Old log blocks freed by the post-recovery checkpoint.
    blocks_freed: int = 0

    @property
    def transactions_replayed(self) -> int:
        return len(self.replayed_versions)


class Session:
    """One client's handle on the server: at most one active txn.

    Sessions are thin — all state of consequence lives in the
    :class:`~repro.serve.txn.Transaction` and the server.  Operations
    outside a transaction raise
    :class:`~repro.serve.txn.TransactionStateError`.
    """

    def __init__(self, server: "Server", client_id: int) -> None:
        self.server = server
        self.client_id = client_id
        self.txn: Optional[Transaction] = None
        #: The unacked group-commit ticket of the last commit, if any.
        self.pending: Optional[CommitTicket] = None
        #: The last commit's ticket, acked or not (latency bookkeeping).
        self.last_ticket: Optional[CommitTicket] = None
        self.begins = 0
        self.commits = 0
        self.aborts = 0

    def _active(self) -> Transaction:
        if self.txn is None or self.txn.status is not TxnStatus.ACTIVE:
            raise TransactionStateError(
                f"client {self.client_id} has no active transaction; "
                f"call begin() first"
            )
        return self.txn

    def begin(self) -> Transaction:
        """Start a transaction; rejects if one is already active."""
        if self.txn is not None and self.txn.status is TxnStatus.ACTIVE:
            raise TransactionStateError(
                f"client {self.client_id} already has an active "
                f"transaction (id {self.txn.txn_id})"
            )
        self.reap()
        self.txn = self.server.begin()
        self.begins += 1
        return self.txn

    def get(self, key: int) -> Optional[int]:
        """Snapshot point read (own buffered writes win)."""
        return self.server.read(self._active(), key)

    def range(self, lo: int, hi: int) -> List[Record]:
        """Snapshot range scan over ``[lo, hi]``, merged with own writes."""
        return self.server.range_read(self._active(), lo, hi)

    def put(self, key: int, value: int) -> None:
        """Buffer an upsert; nothing reaches the method until commit."""
        self._active().buffer_put(key, value)

    def delete(self, key: int) -> None:
        """Buffer a delete; nothing reaches the method until commit."""
        self._active().buffer_delete(key)

    def commit(self) -> int:
        """Validate and commit; returns the commit version.

        Raises :class:`~repro.serve.txn.TransactionConflict` when
        backward validation fails — a conflict is an abort, and counts
        as one in this session's statistics (``commits + aborts ==
        begins`` always holds on a clean run).

        Under a batching :class:`SyncPolicy` the commit may *park*: the
        returned version is assigned and validation is final, but
        durability (and the ``commits`` count) waits for the group's
        sync — the ticket sits in :attr:`pending` until acked, then
        :meth:`reap` folds it in.
        """
        try:
            ticket = self.server.commit(self._active())
        except TransactionConflict:
            self.aborts += 1
            raise
        self.last_ticket = ticket
        if ticket.acked:
            self.commits += 1
            self.pending = None
        else:
            self.pending = ticket
        return ticket.version

    def reap(self) -> bool:
        """Fold an acked pending commit into ``commits``; True when no
        commit is left pending (acked or none outstanding)."""
        if self.pending is not None and self.pending.acked:
            self.commits += 1
            self.pending = None
        return self.pending is None

    def abort(self) -> None:
        """Abandon the active transaction, discarding its buffer."""
        self.server.abort(self._active())
        self.aborts += 1

    @property
    def in_txn(self) -> bool:
        return self.txn is not None and self.txn.status is TxnStatus.ACTIVE

    @property
    def commit_pending(self) -> bool:
        """Whether the last commit is parked awaiting its group's sync."""
        return self.pending is not None and not self.pending.acked


class Server:
    """Transactional front-end over one access method + its device.

    All shared state is guarded by one re-entrant lock: commits are
    short critical sections (validate → log → apply), which is the
    single-writer heart of OCC — concurrency comes from read phases
    overlapping freely, not from interleaved applies.
    """

    def __init__(
        self,
        method: AccessMethod,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        sync_policy: Optional[SyncPolicy] = None,
        live: Optional[LiveRegistry] = None,
    ) -> None:
        self.method = method
        self.device = method.device
        self.wal = WriteAheadLog(self.device)
        self.versions = VersionStore()
        self.commit_log = CommitLog()
        self.checkpoint_every = checkpoint_every
        self.sync_policy = sync_policy if sync_policy is not None else SyncPolicy()
        #: Optional per-window telemetry (:mod:`repro.obs.live`): commit
        #: and abort counters, begin→ack latency histograms, group-commit
        #: occupancy and WAL bytes, all keyed on simulated time.  Every
        #: tap is guarded by ``live is not None`` so the disabled path
        #: costs one check per site, like tracing.
        self.live = live
        #: txn_id -> begin simulated time, for begin→ack latency (only
        #: populated while ``live`` is attached).
        self._live_begin: Dict[int, float] = {}
        #: WAL blocks already charged to a live window.
        self._live_wal_blocks = 0
        self._lock = threading.RLock()
        #: Last *applied* (durable + acked) version: what reads snapshot.
        self._version = 0
        #: Last version assigned to a validated commit (>= _version; the
        #: gap is the parked group awaiting its sync).
        self._assigned_version = 0
        self._next_txn_id = 1
        self._next_client_id = 1
        self._active: Dict[int, Transaction] = {}
        #: Validated + logged commits awaiting the group sync, in
        #: version order.
        self._parked: List[Tuple[Transaction, CommitTicket]] = []
        self._crashed = False
        self.commits = 0
        self.aborts = 0
        self.checkpoints = 0
        self.group_syncs = 0
        self._commits_since_checkpoint = 0

    # ------------------------------------------------------------------
    # Sessions + lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> Session:
        """Open a new client session with a fresh client id."""
        with self._lock:
            client_id = self._next_client_id
            self._next_client_id += 1
        return Session(self, client_id)

    @property
    def version(self) -> int:
        """The latest applied (durable and acknowledged) version."""
        return self._version

    @property
    def active_transactions(self) -> int:
        return len(self._active)

    @property
    def parked_commits(self) -> int:
        """Validated commits waiting for their group's sync."""
        return len(self._parked)

    def _clock(self) -> float:
        """The simulated-time clock deadlines are measured against."""
        return self.device.counters.simulated_time

    def _check_alive(self) -> None:
        if self._crashed:
            raise ServerCrashed(
                "this server took a device fault mid-commit; restart with "
                "a fresh Server over the same method and call recover()"
            )

    def begin(self) -> Transaction:
        """Issue a transaction pinned to the current snapshot version."""
        with self._lock:
            self._check_alive()
            txn = Transaction(
                txn_id=self._next_txn_id, snapshot_version=self._version
            )
            self._next_txn_id += 1
            self._active[txn.txn_id] = txn
            emit_txn_event(
                self.device.tracer, TRACE_SOURCE, "txn-begin", txn.txn_id,
                detail=f"snapshot={txn.snapshot_version}",
            )
            if self.live is not None:
                now = self._clock()
                self._live_begin[txn.txn_id] = now
                self.live.count("txn-begin", now=now)
            return txn

    # ------------------------------------------------------------------
    # Read phase
    # ------------------------------------------------------------------
    def read(self, txn: Transaction, key: int) -> Optional[int]:
        """Point read at ``txn``'s snapshot; grows its read set."""
        txn.require_active()
        if key in txn.writes:
            # Own buffered write wins; it observed no committed state,
            # so it does not grow the read set.
            value = txn.writes[key]
            return None if value is ABSENT else value
        txn.note_read(key)
        with self._lock:
            self._check_alive()
            overlay = self.versions.read_at(key, txn.snapshot_version)
            if overlay is not CURRENT:
                return None if overlay is ABSENT else overlay
            return self.method.get(key)

    def range_read(self, txn: Transaction, lo: int, hi: int) -> List[Record]:
        """Range scan at ``txn``'s snapshot; notes the range predicate.

        The live method answer is rewound through the pre-image
        overlay, then the transaction's own buffered writes are merged
        on top.
        """
        txn.require_active()
        if lo > hi:
            raise ValueError(f"empty range: lo {lo} > hi {hi}")
        txn.note_range(lo, hi)
        with self._lock:
            self._check_alive()
            live = self.method.range_query(lo, hi)
            records = merge_snapshot_range(
                live, self.versions, txn.snapshot_version, lo, hi
            )
        if txn.writes:
            merged = dict(records)
            for key, value in txn.writes.items():
                if lo <= key <= hi:
                    if value is ABSENT:
                        merged.pop(key, None)
                    else:
                        merged[key] = value
            records = sorted(merged.items())
        return records

    # ------------------------------------------------------------------
    # Commit: validate -> log -> park -> (group sync) -> apply
    # ------------------------------------------------------------------
    def commit(self, txn: Transaction) -> CommitTicket:
        """Validate → log → park; returns the commit's ticket.

        Read-only transactions commit at their snapshot with no
        validation, logging, or apply, and their ticket is acked
        immediately.  Writers that win validation are assigned the next
        version, their redo + commit records are appended (buffered) to
        the WAL, and they park; if the :class:`SyncPolicy` says the
        group is ready, the sync fires before this returns (so under
        the default per-commit policy the ticket always comes back
        acked).  A :class:`DeviceFault` escaping the sync/apply marks
        the server crashed — restart and :meth:`recover`.
        """
        txn.require_active()
        with self._lock:
            self._check_alive()
            if txn.is_read_only:
                # Nothing to validate, log, or apply: every read came
                # from the snapshot, which is a consistent prefix of
                # history by construction — later commits cannot
                # invalidate it.
                txn.commit_version = txn.snapshot_version
                self._finish(txn, TxnStatus.COMMITTED)
                emit_txn_event(
                    self.device.tracer, TRACE_SOURCE, "txn-commit",
                    txn.txn_id, detail="read-only",
                )
                now = self._clock()
                if self.live is not None:
                    self.live.count("txn-commit", now=now)
                    self.live.observe(
                        "txn-latency",
                        now - self._live_begin.pop(txn.txn_id, now),
                        now=now,
                    )
                return CommitTicket(
                    txn.txn_id, txn.snapshot_version, acked=True,
                    parked_at=now, acked_at=now,
                )
            emit_txn_event(
                self.device.tracer, TRACE_SOURCE, "txn-validate", txn.txn_id,
                detail=f"reads={len(txn.read_keys)} writes={len(txn.writes)}",
            )
            conflict = self.commit_log.conflict(
                txn.snapshot_version, txn.read_keys, txn.read_ranges
            )
            if conflict is not None:
                version, key = conflict
                self._finish(txn, TxnStatus.ABORTED)
                emit_txn_event(
                    self.device.tracer, TRACE_SOURCE, "txn-abort", txn.txn_id,
                    detail=f"conflict key={key} version={version}",
                )
                raise TransactionConflict(txn.txn_id, version, key)
            version = self._assigned_version + 1
            self._log_records(txn, version)
            txn.commit_version = version
            self._assigned_version = version
            # Recorded at validation time, not apply time: later
            # transactions must validate against parked write sets too,
            # or two commits in one group could both win while reading
            # each other's stale values.
            self.commit_log.record(version, txn.writes)
            self._finish(txn, TxnStatus.PARKED)
            ticket = CommitTicket(
                txn.txn_id, version, parked_at=self._clock()
            )
            self._parked.append((txn, ticket))
            emit_txn_event(
                self.device.tracer, TRACE_SOURCE, "txn-park", txn.txn_id,
                detail=f"version={version} parked={len(self._parked)}",
            )
            waited = self._clock() - self._parked[0][1].parked_at
            if self.sync_policy.ready(len(self._parked), waited):
                self._sync_group()
            return ticket

    def _log_records(self, txn: Transaction, version: int) -> None:
        """Append (buffer) the redo + commit records; no device I/O."""
        with span("serve.wal"):
            for key, value in txn.writes.items():
                if value is ABSENT:
                    self.wal.append(txn.txn_id, DELETE, key)
                else:
                    self.wal.append(txn.txn_id, PUT, key, value)
                emit_txn_event(
                    self.device.tracer, TRACE_SOURCE, "wal-append",
                    txn.txn_id, detail=f"lsn={self.wal.next_lsn - 1}",
                )
            self.wal.append(txn.txn_id, COMMIT, version)
            emit_txn_event(
                self.device.tracer, TRACE_SOURCE, "wal-append", txn.txn_id,
                detail=f"lsn={self.wal.next_lsn - 1} commit",
            )

    def poll_group(self, force: bool = False) -> int:
        """Sync the parked group if the policy says so (or ``force``).

        Models the group-commit timer thread: callers with nothing else
        to do (the bench when every live client is parked, a deadline
        tick) poll, and the sync fires when the deadline has elapsed —
        or unconditionally with ``force=True``.  Returns the number of
        commits made durable.
        """
        with self._lock:
            self._check_alive()
            if not self._parked:
                return 0
            waited = self._clock() - self._parked[0][1].parked_at
            if force or self.sync_policy.ready(len(self._parked), waited):
                return self._sync_group()
            return 0

    def _sync_group(self, checkpoint_ok: bool = True) -> int:
        """One modeled fsync for every parked commit, then apply.

        The order is the heart of group commit: **sync → ack → apply**.
        After the single ``wal.sync()`` every parked transaction is
        durable, so all tickets are acked at once; only then are the
        write sets applied to the method in version order (capturing
        pre-images), exactly as recovery would replay them.  A crash
        before the sync erases the whole group (none were acked); a
        crash after it loses nothing (redo replays the applies).
        """
        group = self._parked
        if not group:
            return 0
        self._parked = []
        with span("serve.wal"):
            try:
                # The modeled fsync: one sync makes the whole group's
                # records durable, through every cache level when the
                # log lives behind a hierarchy.
                blocks = self.wal.sync()
            except DeviceFault:
                # The crash: nothing in this group was acked, and the
                # in-memory state is now untrustworthy.
                self._crashed = True
                raise
        self.group_syncs += 1
        emit_txn_event(
            self.device.tracer, TRACE_SOURCE, "wal-sync", 0,
            detail=f"group={len(group)} blocks={blocks}",
        )
        for _, ticket in group:
            ticket.acked = True
        try:
            with span("serve.apply"):
                for txn, ticket in group:
                    for key, value in txn.writes.items():
                        old = self.method.get(key)
                        self.versions.record_preimage(
                            key, ticket.version,
                            ABSENT if old is None else old,
                        )
                        if value is ABSENT:
                            if old is not None:
                                self.method.delete(key)
                        elif old is None:
                            self.method.insert(key, value)
                        else:
                            self.method.update(key, value)
                    txn.status = TxnStatus.COMMITTED
                    self._version = ticket.version
                    self.commits += 1
                    emit_txn_event(
                        self.device.tracer, TRACE_SOURCE, "txn-commit",
                        txn.txn_id, detail=f"version={ticket.version}",
                    )
        except DeviceFault:
            # Durable but not fully applied: recovery's redo finishes
            # the job.  The acks above stand — the commits are durable.
            self._crashed = True
            raise
        acked_at = self._clock()
        for _, ticket in group:
            ticket.acked_at = acked_at
        if self.live is not None:
            self.live.count("wal-sync", now=acked_at)
            self.live.observe("group-occupancy", len(group), now=acked_at)
            self.live.count(
                "wal-bytes", self._live_wal_delta(), now=acked_at
            )
            for txn, ticket in group:
                self.live.count("txn-commit", now=acked_at)
                begin = self._live_begin.pop(txn.txn_id, None)
                if begin is not None:
                    self.live.observe(
                        "txn-latency", acked_at - begin, now=acked_at
                    )
        self._prune()
        self._commits_since_checkpoint += len(group)
        if (
            checkpoint_ok
            and self.checkpoint_every
            and self._commits_since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()
        return len(group)

    def abort(self, txn: Transaction) -> None:
        """Abort ``txn`` at the client's request; its buffer is dropped."""
        txn.require_active()
        with self._lock:
            self._finish(txn, TxnStatus.ABORTED)
            emit_txn_event(
                self.device.tracer, TRACE_SOURCE, "txn-abort", txn.txn_id,
                detail="requested",
            )

    def _finish(self, txn: Transaction, status: TxnStatus) -> None:
        txn.status = status
        self._active.pop(txn.txn_id, None)
        if status is TxnStatus.ABORTED:
            # Every abort — requested or conflict — counts here, so the
            # server-wide ledger (commits + aborts vs begun txns) always
            # balances (and the live abort-rate counter matches it).
            self.aborts += 1
            if self.live is not None:
                self._live_begin.pop(txn.txn_id, None)
                self.live.count("txn-abort", now=self._clock())

    def _live_wal_delta(self) -> int:
        """WAL bytes written since the last live charge (tap helper)."""
        blocks = self.wal.blocks_written
        delta = (blocks - self._live_wal_blocks) * self.device.block_bytes
        self._live_wal_blocks = blocks
        return delta

    def _oldest_snapshot(self) -> int:
        if not self._active:
            return self._version
        return min(txn.snapshot_version for txn in self._active.values())

    def _prune(self) -> None:
        oldest = self._oldest_snapshot()
        self.versions.prune(oldest)
        self.commit_log.prune(oldest)

    # ------------------------------------------------------------------
    # Checkpoint + recovery
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Checkpoint the WAL; returns blocks freed.

        Drains any parked group first: the checkpoint record claims
        everything up to ``self._version`` is applied, so parked
        (durable-pending) commits must be synced and applied before the
        claim is written.
        """
        with self._lock:
            self._check_alive()
            self._sync_group(checkpoint_ok=False)
            with span("serve.wal"):
                try:
                    freed = self.wal.checkpoint(
                        self._version, self._next_txn_id - 1
                    )
                except DeviceFault:
                    self._crashed = True
                    raise
            self.checkpoints += 1
            self._commits_since_checkpoint = 0
            emit_txn_event(
                self.device.tracer, TRACE_SOURCE, "checkpoint", 0,
                detail=f"version={self._version} freed={freed}",
            )
            if self.live is not None:
                now = self._clock()
                self.live.count("checkpoint", now=now)
                self.live.count("wal-bytes", self._live_wal_delta(), now=now)
            return freed

    def recover(self) -> RecoveryReport:
        """Replay the WAL after a crash; returns what was redone.

        Must be called on a *fresh* server (no commits yet) over the
        crashed device.  Redo is idempotent — a ``put`` upserts and a
        ``del`` deletes-if-present — so it does not matter how far the
        crashed process got through its apply.
        """
        with self._lock:
            if self._version or self.commits:
                raise TransactionStateError(
                    "recover() must run on a fresh server, before any "
                    "transactions"
                )
            report = RecoveryReport()
            try:
                return self._recover_locked(report)
            except DeviceFault:
                # A crash during recovery: same rule as a crash during
                # commit — restart with another fresh server.
                self._crashed = True
                raise

    def _recover_locked(self, report: RecoveryReport) -> RecoveryReport:
            with span("serve.recover"):
                # A real restart re-opens the structure first: derived
                # in-memory bookkeeping died with the crashed process.
                self.method.reopen()
                records, truncated = self.wal.replay()
                report.records_scanned = len(records)
                report.truncated = truncated
                report.checkpoint_version = WriteAheadLog.last_checkpoint(
                    records
                )
                resumed = report.checkpoint_version
                max_txn_id = 0
                for record in records:
                    if record.txn_id > max_txn_id:
                        max_txn_id = record.txn_id
                for version, txn_id, redo in self.wal.iter_committed(
                    records, after_version=report.checkpoint_version
                ):
                    final: Dict[int, object] = {}
                    for record in redo:
                        final[record.key] = (
                            ABSENT if record.kind == DELETE else record.value
                        )
                    for key, value in final.items():
                        old = self.method.get(key)
                        if value is ABSENT:
                            if old is not None:
                                self.method.delete(key)
                        elif old is None:
                            self.method.insert(key, value)
                        else:
                            self.method.update(key, value)
                    report.replayed_versions.append(version)
                    report.replayed_txns.append(txn_id)
                    resumed = max(resumed, version)
                self._version = resumed
                self._assigned_version = resumed
                self._next_txn_id = max_txn_id + 1
                report.resumed_version = resumed
            emit_txn_event(
                self.device.tracer, TRACE_SOURCE, "recover", 0,
                detail=(
                    f"replayed={report.transactions_replayed} "
                    f"version={resumed} truncated={truncated}"
                ),
            )
            # Bound the next recovery and drop dead log blocks; also
            # repairs a torn tail (the checkpoint sync rewrites it with
            # only its valid prefix plus the new record).
            report.blocks_freed = self.checkpoint()
            return report
