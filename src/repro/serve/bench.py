"""Deterministic multi-client benchmark for the serving tier.

``run_bench`` drives N zipfian clients against one :class:`Server` and
reports per-client p50/p99 commit latency plus the method's RUM triple.
Two design decisions keep it bit-reproducible under a fixed seed:

* **Logical interleaving.**  Clients are coroutine-style state machines
  advanced one step at a time by a seeded scheduler — real threads would
  make the interleaving (and thus conflicts, latencies, and I/O order)
  non-deterministic.  Every client's entire transaction script is also
  pre-generated from its own seeded RNG, so *what* a client does is
  independent of *when* the scheduler runs it.
* **Simulated latency.**  Latency is the device's ``simulated_time``
  delta between a transaction's begin and its successful commit — the
  cost-model-priced I/O the transaction (and the commits interleaved
  with it) performed, not wall-clock noise.

Each committed transaction's writes are folded into an in-memory oracle
in commit order; the report compares the final structure against the
oracle record-for-record and runs the method's own ``audit()``, so a
bench run is also a correctness check of the OCC/WAL machinery under
contention.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.interfaces import AccessMethod
from repro.core.rum import RUMAccumulator, RUMProfile
from repro.obs.live import LiveRegistry
from repro.obs.metrics import Histogram
from repro.serve.server import Server, Session, SyncPolicy
from repro.serve.txn import TransactionConflict
from repro.serve.versions import ABSENT
from repro.workloads.distributions import make_distribution

#: Give up on a transaction after this many validation conflicts.
MAX_RETRIES = 25

#: Transaction script op tags.
_GET, _RANGE, _PUT, _DELETE = "get", "range", "put", "del"


@dataclass
class ClientStats:
    """One client's outcome: commits, conflicts, latency percentiles."""

    client_id: int
    committed: int = 0
    conflicts: int = 0
    abandoned: int = 0
    latencies: List[float] = field(default_factory=list)

    @property
    def p50(self) -> float:
        return _percentile(self.latencies, 0.50)

    @property
    def p99(self) -> float:
        return _percentile(self.latencies, 0.99)


@dataclass
class BenchReport:
    """Everything ``run_bench`` measured."""

    method: str
    clients: List[ClientStats]
    profile: RUMProfile
    #: Final-state divergences between structure and oracle (0 = clean).
    oracle_divergences: int
    #: Structural audit violations after the run ([] = clean).
    audit_violations: List[str]
    total_commits: int
    total_conflicts: int
    simulated_time: float
    wal_syncs: int
    checkpoints: int
    #: Log blocks the WAL wrote — the durability share of the UO
    #: numerator group commit divides by ~N.
    wal_blocks_written: int = 0
    #: Group syncs fired (== total write commits under per-commit).
    group_syncs: int = 0
    #: The server's :attr:`SyncPolicy.label` for this run.
    sync_policy: str = "every-commit"
    #: Per-window live frames (:meth:`LiveRegistry.snapshot`) when the
    #: bench ran with ``live_window``; ``None`` otherwise.
    live_frames: Optional[List[dict]] = None

    @property
    def clean(self) -> bool:
        return self.oracle_divergences == 0 and not self.audit_violations

    @property
    def overall_p50(self) -> float:
        return _percentile(self._all_latencies(), 0.50)

    @property
    def overall_p99(self) -> float:
        return _percentile(self._all_latencies(), 0.99)

    def _all_latencies(self) -> List[float]:
        merged: List[float] = []
        for client in self.clients:
            merged.extend(client.latencies)
        return merged


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile; 0.0 for an empty sample.

    Routed through the shared :class:`~repro.obs.metrics.Histogram` so
    the serve bench and ``repro stats`` cannot diverge on what a
    percentile means (it used to hand-roll a zero-based ``round``
    variant that disagreed with the tables on small samples).
    """
    if not values:
        return 0.0
    return Histogram.from_samples(values).percentile(q)


def _build_scripts(
    clients: int,
    txns_per_client: int,
    ops_per_txn: int,
    key_space: int,
    seed: int,
    distribution: str,
) -> List[List[List[Tuple]]]:
    """Pre-generate every client's transaction script.

    Keys are drawn zipfian (or per ``distribution``) over ``key_space``
    consecutive integers; op mix is 50% point reads, 10% short range
    scans, 30% puts, 10% deletes — enough writes to make OCC validation
    do real work at 8+ clients.
    """
    scripts: List[List[List[Tuple]]] = []
    for client in range(clients):
        rng = random.Random(seed * 7919 + client * 104729)
        dist = make_distribution(distribution, rng)
        txns: List[List[Tuple]] = []
        for txn_index in range(txns_per_client):
            ops: List[Tuple] = []
            for _ in range(ops_per_txn):
                key = dist.pick_index(key_space)
                roll = rng.random()
                if roll < 0.50:
                    ops.append((_GET, key))
                elif roll < 0.60:
                    lo = max(0, key - rng.randrange(1, 8))
                    ops.append((_RANGE, lo, key))
                elif roll < 0.90:
                    value = client * 1_000_000 + txn_index * 1_000 + key
                    ops.append((_PUT, key, value))
                else:
                    ops.append((_DELETE, key))
            txns.append(ops)
        scripts.append(txns)
    return scripts


class _Client:
    """State machine advanced one operation per scheduler tick."""

    def __init__(
        self,
        session: Session,
        script: List[List[Tuple]],
        stats: ClientStats,
        accumulator: RUMAccumulator,
        oracle: Dict[int, int],
    ) -> None:
        self.session = session
        self.script = script
        self.stats = stats
        self.accumulator = accumulator
        self.oracle = oracle
        self.txn_index = 0
        self.op_index = 0
        self.retries = 0
        self.begin_time = 0.0
        #: Write count of a parked (unacked) commit, or None.
        self.parked_writes: Optional[int] = None

    @property
    def done(self) -> bool:
        return self.txn_index >= len(self.script) and not self.waiting

    @property
    def waiting(self) -> bool:
        """Parked on an unacked group-commit ticket."""
        return self.parked_writes is not None

    def _now(self) -> float:
        return self.session.server.device.counters.simulated_time

    def step(self, force_sync: bool = False) -> None:
        """Run one step: begin, one op, the commit attempt, or a poll.

        A client whose commit parked spends its steps polling the group
        (modeling the timer thread) until its ticket is acked; the
        scheduler passes ``force_sync=True`` when every live client is
        parked and the policy alone would never fire — the stall a real
        group-commit timer exists to break.
        """
        server = self.session.server
        if self.waiting:
            self._poll(force_sync)
            return
        if not self.session.in_txn:
            self.begin_time = self._now()
            self.session.begin()
            self.op_index = 0
            return
        ops = self.script[self.txn_index]
        if self.op_index < len(ops):
            self._run_op(ops[self.op_index])
            self.op_index += 1
            return
        txn = self.session.txn
        writes = dict(txn.writes)
        before = server.device.snapshot()
        try:
            self.session.commit()
        except TransactionConflict:
            self.stats.conflicts += 1
            self.retries += 1
            if self.retries > MAX_RETRIES:
                self.stats.abandoned += 1
                self.retries = 0
                self.txn_index += 1
            return
        # Validation is final: the writes will apply (in version order)
        # even if the ack is still pending, so the oracle folds now —
        # park order is version order.
        for key, value in writes.items():
            if value is ABSENT:
                self.oracle.pop(key, None)
            else:
                self.oracle[key] = value
        if self.session.commit_pending:
            # Parked: the append cost nothing durable yet.  This
            # client's write counts (and latency) are recorded when it
            # observes the ack, so the aggregate UO stays exact.
            self.parked_writes = len(writes)
            return
        if writes:
            # Acked in-line — under a batching policy this commit
            # triggered the group sync, so this step's device delta
            # carries the whole group's sync + apply I/O, attributed
            # here with this client's own record count (the parked
            # members add their counts on their ~free ack polls).
            self.accumulator.record_update(
                server.device.stats_since(before), records_updated=len(writes)
            )
            self.accumulator.sample_space(server.method)
        self._finish_commit(self.session.last_ticket.acked_at)

    def _poll(self, force_sync: bool) -> None:
        """One waiting step: nudge the group, observe the ack if any."""
        server = self.session.server
        before = server.device.snapshot()
        server.poll_group(force=force_sync)
        ticket = self.session.pending
        if not self.session.reap():
            return
        # Acked: this poll's delta is the group I/O if this very poll
        # fired the sync, ~zero otherwise; either way the client's own
        # write count lands in the denominator exactly once.
        self.accumulator.record_update(
            server.device.stats_since(before),
            records_updated=self.parked_writes,
        )
        self.accumulator.sample_space(server.method)
        self.parked_writes = None
        self._finish_commit(ticket.acked_at)

    def _finish_commit(self, acked_at: float) -> None:
        self.stats.committed += 1
        self.stats.latencies.append(acked_at - self.begin_time)
        self.retries = 0
        self.txn_index += 1

    def _run_op(self, op: Tuple) -> None:
        device = self.session.server.device
        if op[0] == _GET:
            before = device.snapshot()
            self.session.get(op[1])
            self.accumulator.record_read(
                device.stats_since(before), records_retrieved=1
            )
        elif op[0] == _RANGE:
            before = device.snapshot()
            records = self.session.range(op[1], op[2])
            self.accumulator.record_read(
                device.stats_since(before), records_retrieved=len(records)
            )
        elif op[0] == _PUT:
            self.session.put(op[1], op[2])
        else:
            self.session.delete(op[1])


def run_bench(
    method: AccessMethod,
    clients: int = 8,
    txns_per_client: int = 40,
    ops_per_txn: int = 4,
    records: int = 256,
    seed: int = 1234,
    distribution: str = "zipfian",
    checkpoint_every: int = 32,
    server: Optional[Server] = None,
    sync_policy: Optional[SyncPolicy] = None,
    live_window: Optional[float] = None,
) -> BenchReport:
    """Drive ``clients`` concurrent zipfian clients; measure and verify.

    ``method`` must be empty: the bench bulk-loads ``records`` seed
    records (dense keys, like the workload generator's preload) before
    opening the server.  Pass a pre-built ``server`` to override the
    server configuration, or just ``sync_policy`` to run the same bench
    under a different group-commit policy.  ``live_window`` (a
    simulated-time width) attaches a
    :class:`~repro.obs.live.LiveRegistry` to the server — per-window
    begin→ack latency histograms, abort counts, group-commit occupancy
    and WAL bytes land in :attr:`BenchReport.live_frames`.
    """
    initial = [(key, key * 1_000 + 1) for key in range(records)]
    method.bulk_load(initial)
    oracle: Dict[int, int] = dict(initial)
    live = LiveRegistry(live_window) if live_window else None
    srv = server if server is not None else Server(
        method,
        checkpoint_every=checkpoint_every,
        sync_policy=sync_policy,
        live=live,
    )
    accumulator = RUMAccumulator()
    accumulator.sample_space(method)
    key_space = records + records // 4  # a tail of fresh keys to insert
    scripts = _build_scripts(
        clients, txns_per_client, ops_per_txn, key_space, seed, distribution
    )
    stats = [ClientStats(client_id=i) for i in range(clients)]
    machines = [
        _Client(srv.connect(), scripts[i], stats[i], accumulator, oracle)
        for i in range(clients)
    ]
    scheduler = random.Random(seed)
    live = list(machines)
    while live:
        # When every live client is parked on an unacked ticket nobody
        # can fill the group further: the scheduled client's poll forces
        # the sync (the group-commit timer firing), breaking the stall
        # deterministically.
        stalled = all(machine.waiting for machine in live)
        machine = live[scheduler.randrange(len(live))]
        machine.step(force_sync=stalled)
        if machine.done:
            live.remove(machine)

    divergences = _compare_with_oracle(method, oracle, key_space)
    violations = method.audit()
    hierarchy = getattr(srv.device, "hierarchy", None)
    if hierarchy is not None:
        # A hierarchy-mounted run must also balance the chain's books —
        # conservation and coherence with the WAL traffic included.
        violations = list(violations) + hierarchy.audit()
    profile = accumulator.finish(method)
    return BenchReport(
        method=method.name,
        clients=stats,
        profile=profile,
        oracle_divergences=divergences,
        audit_violations=violations,
        total_commits=sum(s.committed for s in stats),
        total_conflicts=sum(s.conflicts for s in stats),
        simulated_time=srv.device.counters.simulated_time,
        wal_syncs=srv.wal.syncs,
        checkpoints=srv.checkpoints,
        wal_blocks_written=srv.wal.blocks_written,
        group_syncs=srv.group_syncs,
        sync_policy=srv.sync_policy.label,
        live_frames=srv.live.snapshot() if srv.live is not None else None,
    )


def _compare_with_oracle(
    method: AccessMethod, oracle: Dict[int, int], key_space: int
) -> int:
    """Record-level diff between the structure and the oracle."""
    expected = sorted(oracle.items())
    actual = method.range_query(0, key_space + 1)
    divergences = 0
    expected_map = dict(expected)
    actual_map = dict(actual)
    for key in set(expected_map) | set(actual_map):
        if expected_map.get(key) != actual_map.get(key):
            divergences += 1
    return divergences
