"""Deterministic workload generation.

:class:`WorkloadGenerator` maintains the set of live keys as the stream it
generates mutates the (virtual) dataset, so updates and deletes always
target existing keys and inserts always use fresh keys — the streams are
valid against any access method that starts from the same bulk load.
"""

from __future__ import annotations

import random
from bisect import bisect
from itertools import accumulate, chain
from typing import Iterator, List, Tuple

from repro.workloads.distributions import KeyDistribution, make_distribution
from repro.workloads.spec import Operation, OpKind, WorkloadSpec

#: Draw granularity used when :meth:`WorkloadGenerator.operations` flattens
#: the batch producer.  Invisible to consumers (the stream is identical,
#: only materialized this many operations at a time).
_FLATTEN_BATCH = 1024


class WorkloadGenerator:
    """Generates the initial dataset and the operation stream of a spec."""

    def __init__(self, spec: WorkloadSpec) -> None:
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.distribution: KeyDistribution = make_distribution(
            spec.distribution, self.rng
        )
        # Live keys, kept sorted so range queries can be anchored at a
        # chosen selectivity and deletes can maintain order in O(log n).
        self._keys: List[int] = []
        self._next_key = 0
        #: True once :meth:`operations` has handed out its stream.  The
        #: stream mutates generator state as it goes, so it is single
        #: use; consumers check this to fail fast instead of replaying
        #: a stale key set.
        self.consumed = False

    # ------------------------------------------------------------------
    def initial_data(self) -> List[Tuple[int, int]]:
        """The bulk-load dataset: ``initial_records`` sequential keys.

        Keys are dense integers ``0, 2, 4, ...`` (stride 2) so that the
        generator can also produce guaranteed-miss point queries on odd
        keys when a benchmark asks for negative lookups.
        """
        if self._keys:
            raise RuntimeError("initial_data may only be generated once")
        count = self.spec.initial_records
        self._keys = [2 * i for i in range(count)]
        self._next_key = 2 * count
        return [(key, self._value_for(key)) for key in self._keys]

    def operations(self) -> Iterator[Operation]:
        """The operation stream described by the spec (single use).

        Yields exactly ``spec.operations`` operations: degenerate draws
        (a read/update/delete when the live key set has drained and the
        mix has no insert weight) are emitted as guaranteed-miss point
        queries rather than silently dropped.
        """
        return chain.from_iterable(self.operation_batches(_FLATTEN_BATCH))

    def operation_batches(self, size: int) -> Iterator[List[Operation]]:
        """The same stream as :meth:`operations`, in lists of ``size``.

        The batched producer the batch-first measurement pipeline
        consumes: each yielded list holds ``size`` operations (the final
        one possibly fewer), totalling exactly ``spec.operations``.  The
        stream is byte-identical to :meth:`operations` — both are drawn
        by the same code, and the kind draw replicates
        ``random.choices``'s per-call arithmetic so seeds keep producing
        the streams they always have.  Single use, like
        :meth:`operations`.
        """
        if size <= 0:
            raise ValueError(f"batch size must be positive, got {size}")
        if self.consumed:
            # Reuse would replay over mutated key state and produce a
            # stream no seed ever specified; same error whether the
            # prior stream came from operations() or operation_batches(),
            # and whether or not it was iterated to the end.
            raise ValueError(
                "the supplied WorkloadGenerator has already produced its "
                "operation stream; streams mutate generator state, so build "
                "a fresh WorkloadGenerator(spec) for each run"
            )
        if not self._keys and self.spec.initial_records:
            raise RuntimeError("call initial_data() before operations()")
        self.consumed = True
        return self._batch_stream(size)

    def _batch_stream(self, size: int) -> Iterator[List[Operation]]:
        kinds, weights = zip(*self.spec.mix.items())
        # One kind draw consumes exactly one rng.random(), with the same
        # float arithmetic as rng.choices(kinds, weights=weights)[0]
        # (cumulative weights + bisect) — hoisted out of the loop so a
        # draw is one C-level call instead of a list rebuild per op.
        cum_weights = list(accumulate(weights))
        total = cum_weights[-1] + 0.0
        hi = len(kinds) - 1
        draw = self.rng.random
        emit = self._emit
        keys = self._keys
        insert_fallback = OpKind.INSERT if self.spec.inserts > 0 else None
        remaining = self.spec.operations
        while remaining > 0:
            count = size if size < remaining else remaining
            batch: List[Operation] = []
            append = batch.append
            for _ in range(count):
                kind = kinds[bisect(cum_weights, draw() * total, 0, hi)]
                # Degenerate fallback: reads/updates/deletes need live
                # keys; redirect to inserts while the mix has them.
                if not keys and kind is not OpKind.INSERT:
                    if insert_fallback is not None:
                        kind = insert_fallback
                append(emit(kind))
            remaining -= count
            yield batch

    # ------------------------------------------------------------------
    def _emit(self, kind: OpKind) -> Operation:
        if kind is OpKind.INSERT:
            key = self._next_key
            self._next_key += 2
            self._insert_sorted(key)
            return Operation(OpKind.INSERT, key, self._value_for(key))
        if not self._keys:
            # Drained key set and an insert-free mix: the slot must still
            # count, so emit a guaranteed miss (live keys are even, so an
            # odd key can never hit) instead of dropping it — dropped
            # slots once made streams shorter than ``spec.operations``,
            # skewing every per-op denominator.
            return Operation(OpKind.POINT_QUERY, self._next_key + 1)
        if kind is OpKind.POINT_QUERY:
            return Operation(OpKind.POINT_QUERY, self.distribution.pick(self._keys))
        if kind is OpKind.RANGE_QUERY:
            return self._range_operation()
        if kind is OpKind.UPDATE:
            key = self.distribution.pick(self._keys)
            return Operation(OpKind.UPDATE, key, self._value_for(key) + 1)
        if kind is OpKind.DELETE:
            index = self.distribution.pick_index(len(self._keys))
            key = self._keys.pop(index)
            return Operation(OpKind.DELETE, key)
        raise ValueError(f"unhandled operation kind {kind}")  # pragma: no cover

    def _range_operation(self) -> Operation:
        span = max(1, int(len(self._keys) * self.spec.range_fraction))
        start = self.distribution.pick_index(len(self._keys))
        start = min(start, len(self._keys) - 1)
        end = min(start + span - 1, len(self._keys) - 1)
        return Operation(
            OpKind.RANGE_QUERY, self._keys[start], high_key=self._keys[end]
        )

    def _insert_sorted(self, key: int) -> None:
        # Keys are handed out monotonically, so appending keeps order.
        self._keys.append(key)

    @staticmethod
    def _value_for(key: int) -> int:
        """Deterministic value derivation, so oracles can recompute it."""
        return key * 1000 + 1


def generate_operations(spec: WorkloadSpec) -> Tuple[List[Tuple[int, int]], List[Operation]]:
    """Convenience: materialize both the dataset and the full stream."""
    generator = WorkloadGenerator(spec)
    data = generator.initial_data()
    return data, list(generator.operations())
