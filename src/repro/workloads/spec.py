"""Workload specification types.

A :class:`WorkloadSpec` describes an operation mix (fractions of point
queries, range queries, inserts, updates, deletes), a key distribution
and range-query sizing.  Specs are declarative and hashable so benchmark
parameter sweeps can be tabulated.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional


class OpKind(enum.Enum):
    """The five operation types of the paper's workload model."""

    POINT_QUERY = "point_query"
    RANGE_QUERY = "range_query"
    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"

    @property
    def is_read(self) -> bool:
        return self in (OpKind.POINT_QUERY, OpKind.RANGE_QUERY)

    @property
    def is_write(self) -> bool:
        return not self.is_read


@dataclass(frozen=True)
class Operation:
    """One operation in a workload stream.

    ``high_key`` is only meaningful for range queries; ``value`` only for
    inserts and updates.
    """

    kind: OpKind
    key: int
    value: int = 0
    high_key: int = 0

    def __post_init__(self) -> None:
        if self.kind is OpKind.RANGE_QUERY and self.high_key < self.key:
            raise ValueError(
                f"range query with high_key {self.high_key} < key {self.key}"
            )


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a workload.

    Parameters
    ----------
    point_queries, range_queries, inserts, updates, deletes:
        Operation-mix fractions; they must sum to 1 (within tolerance).
    operations:
        Number of operations to generate.
    initial_records:
        Size of the bulk-loaded dataset the stream runs against.
    range_fraction:
        Range query selectivity: result size as a fraction of the live
        dataset (the paper's ``m`` relative to ``N``).
    distribution:
        Key-distribution name resolved by the generator
        ("uniform", "zipfian", "sequential", "latest", "clustered").
    seed:
        Seed for full determinism.
    """

    point_queries: float = 1.0
    range_queries: float = 0.0
    inserts: float = 0.0
    updates: float = 0.0
    deletes: float = 0.0
    operations: int = 1000
    initial_records: int = 10_000
    range_fraction: float = 0.001
    distribution: str = "uniform"
    seed: int = 7

    def __post_init__(self) -> None:
        total = (
            self.point_queries
            + self.range_queries
            + self.inserts
            + self.updates
            + self.deletes
        )
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"operation mix must sum to 1.0, got {total}")
        for label, fraction in self.mix.items():
            if fraction < 0:
                raise ValueError(f"negative fraction for {label}: {fraction}")
        if self.operations < 0:
            raise ValueError("operations must be non-negative")
        if self.initial_records < 0:
            raise ValueError("initial_records must be non-negative")
        if not 0 <= self.range_fraction <= 1:
            raise ValueError("range_fraction must be in [0, 1]")

    @property
    def mix(self) -> Dict[OpKind, float]:
        return {
            OpKind.POINT_QUERY: self.point_queries,
            OpKind.RANGE_QUERY: self.range_queries,
            OpKind.INSERT: self.inserts,
            OpKind.UPDATE: self.updates,
            OpKind.DELETE: self.deletes,
        }

    def scaled(self, initial_records: int, operations: Optional[int] = None) -> "WorkloadSpec":
        """A copy of this spec at a different dataset size."""
        return WorkloadSpec(
            point_queries=self.point_queries,
            range_queries=self.range_queries,
            inserts=self.inserts,
            updates=self.updates,
            deletes=self.deletes,
            operations=operations if operations is not None else self.operations,
            initial_records=initial_records,
            range_fraction=self.range_fraction,
            distribution=self.distribution,
            seed=self.seed,
        )


#: Named mixes used throughout the benchmarks.  ``balanced`` is the
#: common workload of the Figure-1 reproduction: every structure is
#: measured under the same mixture of reads and writes.
MIXES: Dict[str, WorkloadSpec] = {
    "read-only": WorkloadSpec(point_queries=0.8, range_queries=0.2),
    "read-mostly": WorkloadSpec(
        point_queries=0.7, range_queries=0.1, inserts=0.1, updates=0.1
    ),
    "balanced": WorkloadSpec(
        point_queries=0.35,
        range_queries=0.05,
        inserts=0.3,
        updates=0.2,
        deletes=0.1,
    ),
    "write-heavy": WorkloadSpec(
        point_queries=0.1, inserts=0.6, updates=0.25, deletes=0.05
    ),
    "insert-only": WorkloadSpec(point_queries=0.0, inserts=1.0),
    "scan-heavy": WorkloadSpec(point_queries=0.2, range_queries=0.8),
}
