"""Key distributions for workload generation.

Each distribution draws keys from a *live key population* maintained by
the generator, so queries and updates always target keys that exist (or
deliberately miss, for negative-lookup experiments).  All randomness is
seeded; runs are bit-for-bit reproducible.
"""

from __future__ import annotations

import bisect
import math
import random
from abc import ABC, abstractmethod
from typing import List, Sequence


class KeyDistribution(ABC):
    """Picks keys out of an ordered population."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng

    @abstractmethod
    def pick_index(self, population_size: int) -> int:
        """Return an index into the population, ``0 <= i < size``."""

    def pick(self, population: Sequence[int]) -> int:
        """Return a key from ``population`` (which must be non-empty)."""
        if not population:
            raise ValueError("cannot pick from an empty key population")
        return population[self.pick_index(len(population))]


class UniformKeys(KeyDistribution):
    """Every live key equally likely."""

    def pick_index(self, population_size: int) -> int:
        return self.rng.randrange(population_size)


class SequentialKeys(KeyDistribution):
    """Cycle through the population in order (pure sequential access)."""

    def __init__(self, rng: random.Random) -> None:
        super().__init__(rng)
        self._cursor = 0

    def pick_index(self, population_size: int) -> int:
        index = self._cursor % population_size
        self._cursor += 1
        return index


class ZipfianKeys(KeyDistribution):
    """Zipf-distributed popularity over the population.

    Uses the rejection-inversion sampler of Hörmann & Derflinger so no
    per-population-size precomputation is needed; skew ``theta`` defaults
    to the YCSB-standard 0.99.
    """

    def __init__(self, rng: random.Random, theta: float = 0.99) -> None:
        super().__init__(rng)
        if not 0 < theta < 1:
            raise ValueError("zipfian skew theta must be in (0, 1)")
        self.theta = theta
        self._size = 0
        self._zetan = 0.0

    def _zeta(self, n: int) -> float:
        return sum(1.0 / (i ** self.theta) for i in range(1, n + 1))

    def pick_index(self, population_size: int) -> int:
        # Tiny populations degenerate (the eta denominator vanishes);
        # uniform choice is exact enough for n <= 2.
        if population_size <= 2:
            return self.rng.randrange(population_size)
        # Classic YCSB zipfian sampler; recompute zeta lazily when the
        # population grows (inserts extend it).
        if population_size != self._size:
            self._zetan = self._zeta(population_size)
            self._size = population_size
        theta = self.theta
        alpha = 1.0 / (1.0 - theta)
        zeta2 = self._zeta(min(2, population_size))
        eta = (1.0 - (2.0 / population_size) ** (1.0 - theta)) / (
            1.0 - zeta2 / self._zetan
        ) if population_size > 1 else 1.0
        u = self.rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** theta:
            return 1 % population_size
        index = int(population_size * ((eta * u) - eta + 1.0) ** alpha)
        return min(index, population_size - 1)


class LatestKeys(KeyDistribution):
    """Skewed toward the most recently inserted keys (YCSB "latest")."""

    def __init__(self, rng: random.Random, theta: float = 0.99) -> None:
        super().__init__(rng)
        self._zipf = ZipfianKeys(rng, theta)

    def pick_index(self, population_size: int) -> int:
        offset = self._zipf.pick_index(population_size)
        return population_size - 1 - offset


class ClusteredKeys(KeyDistribution):
    """Accesses cluster around a slowly drifting hot spot.

    Models scan-like locality: a Gaussian around a center that random
    walks across the key space, re-creating the "clustered" access
    pattern sparse indexes exploit.
    """

    def __init__(self, rng: random.Random, spread: float = 0.02) -> None:
        super().__init__(rng)
        if spread <= 0:
            raise ValueError("spread must be positive")
        self.spread = spread
        self._center = rng.random()

    def pick_index(self, population_size: int) -> int:
        self._center += self.rng.gauss(0.0, 0.005)
        self._center %= 1.0
        position = self.rng.gauss(self._center, self.spread) % 1.0
        return min(int(position * population_size), population_size - 1)


_DISTRIBUTIONS = {
    "uniform": UniformKeys,
    "sequential": SequentialKeys,
    "zipfian": ZipfianKeys,
    "latest": LatestKeys,
    "clustered": ClusteredKeys,
}


def make_distribution(name: str, rng: random.Random) -> KeyDistribution:
    """Construct a distribution by name."""
    try:
        cls = _DISTRIBUTIONS[name]
    except KeyError:
        known = ", ".join(sorted(_DISTRIBUTIONS))
        raise ValueError(f"unknown distribution {name!r}; known: {known}") from None
    return cls(rng)


def distribution_names() -> List[str]:
    """Names of every available key distribution."""
    return sorted(_DISTRIBUTIONS)
