"""Workload traces: save and replay operation streams.

A trace is the materialized form of a workload — the bulk-load dataset
plus the exact operation sequence — written as JSON lines.  Traces make
experiments portable and diff-able: capture a generated stream once,
commit it, and replay it against any access method (or any future
version of one) for bit-identical comparisons.

Format: the first line is a header object; subsequent lines are either
``{"r": [key, value]}`` (one bulk-load record) or operation objects
``{"op": kind, "k": key, "v": value, "h": high_key}`` with the unused
fields omitted.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Tuple, Union

from repro.workloads.spec import Operation, OpKind

_VERSION = 1

Record = Tuple[int, int]


def save_trace(
    path: str,
    initial_data: Iterable[Record],
    operations: Iterable[Operation],
) -> None:
    """Write a trace file containing the dataset and the stream."""
    with open(path, "w") as handle:
        handle.write(json.dumps({"trace": _VERSION}) + "\n")
        for key, value in initial_data:
            handle.write(json.dumps({"r": [key, value]}) + "\n")
        for operation in operations:
            handle.write(json.dumps(_encode(operation)) + "\n")


def load_trace(path: str) -> Tuple[List[Record], List[Operation]]:
    """Read a trace file back into (initial_data, operations)."""
    initial: List[Record] = []
    operations: List[Operation] = []
    with open(path) as handle:
        header = json.loads(_required_line(handle, "header"))
        if header.get("trace") != _VERSION:
            raise ValueError(f"unsupported trace header: {header}")
        for line in handle:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            if "r" in entry:
                key, value = entry["r"]
                initial.append((key, value))
            else:
                operations.append(_decode(entry))
    return initial, operations


def _required_line(handle: IO[str], what: str) -> str:
    line = handle.readline()
    if not line:
        raise ValueError(f"trace file is missing its {what}")
    return line


def _encode(operation: Operation) -> dict:
    entry = {"op": operation.kind.value, "k": operation.key}
    if operation.kind in (OpKind.INSERT, OpKind.UPDATE):
        entry["v"] = operation.value
    if operation.kind is OpKind.RANGE_QUERY:
        entry["h"] = operation.high_key
    return entry


def _decode(entry: dict) -> Operation:
    try:
        kind = OpKind(entry["op"])
    except (KeyError, ValueError) as error:
        raise ValueError(f"malformed trace entry: {entry}") from error
    return Operation(
        kind=kind,
        key=entry["k"],
        value=entry.get("v", 0),
        high_key=entry.get("h", entry["k"] if kind is OpKind.RANGE_QUERY else 0),
    )
