"""Drive a workload against an access method and collect results.

This is the measurement harness used by the Figure-1 / Figure-3 /
conjecture benchmarks: bulk-load the initial dataset, stream the
operations, and report the measured RUM profile together with bulk-load
cost and raw I/O totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.core.interfaces import AccessMethod
from repro.core.rum import (
    RUMAccumulator,
    RUMProfile,
    measure_workload,
    measure_workload_batched,
)
from repro.obs.metrics import WorkloadMetrics
from repro.obs.spans import span, spans_active
from repro.storage.device import IOStats
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec import WorkloadSpec

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.obs.live import WindowedRUM

#: Operations handed to the measurement loop per batch when the caller
#: does not choose.  A multiple of the space-sampling cadence (16), big
#: enough to amortize per-batch bookkeeping, small enough that batches
#: of materialized operations stay cache-friendly.
DEFAULT_BATCH_SIZE = 256


@dataclass(frozen=True)
class WorkloadResult:
    """Everything measured from one (method, spec) pairing."""

    method_name: str
    spec: WorkloadSpec
    profile: RUMProfile
    bulk_load_io: IOStats
    final_records: int
    final_space_bytes: int
    #: Operations the measurement loop actually accounted.  Equal to
    #: ``spec.operations`` for generator-produced streams; fewer only
    #: when the tolerant per-op loop skipped invalid operations.
    operations_executed: int = 0

    def __str__(self) -> str:
        return (
            f"{self.method_name}: {self.profile} over {self.spec.operations} ops "
            f"({self.final_records} records, {self.final_space_bytes} bytes)"
        )


def run_workload(
    method: AccessMethod,
    spec: WorkloadSpec,
    generator: Optional[WorkloadGenerator] = None,
    metrics: Optional[WorkloadMetrics] = None,
    accumulator: Optional[RUMAccumulator] = None,
    batch_size: Optional[int] = None,
    live: Optional["WindowedRUM"] = None,
) -> WorkloadResult:
    """Bulk-load ``method`` and run the spec's operation stream against it.

    A pre-built ``generator`` can be supplied to replay an identical
    stream against several methods (as the Figure-1 bench does); it must
    not have been consumed yet.  A caller-owned ``metrics`` object, when
    supplied, accumulates per-op-type histograms (blocks touched and
    simulated time per point query / insert / range scan / ...) over the
    measured phase — the bulk load is excluded, as in the profile.  A
    caller-owned (fresh) ``accumulator`` exposes the integer byte counts
    behind the final ratios (see :func:`~repro.core.rum.measure_workload`).

    Measurement is batch-first: operations stream through
    :func:`~repro.core.rum.measure_workload_batched` in batches of
    ``batch_size`` (default :data:`DEFAULT_BATCH_SIZE`), which produces a
    byte-identical profile to the per-op loop while amortizing dispatch
    and counter bookkeeping.  Pass ``batch_size=1`` (or ``0``) to force
    the per-op loop.  Instrumented runs (metrics, spans) take the per-op
    loop automatically, whatever the batch size.

    When span collection is active the bulk load runs inside an
    ``op.bulk_load`` span, so load-phase I/O and allocations are
    attributed separately from the measured operations.

    A :class:`~repro.obs.live.WindowedRUM` passed as ``live`` streams
    per-window RO/UO/MO while the workload runs (see
    :mod:`repro.obs.live`); like metrics, it routes measurement through
    the per-op loop so every operation's completion time is observable.
    """
    if generator is not None and generator.consumed:
        raise ValueError(
            "the supplied WorkloadGenerator has already produced its "
            "operation stream; streams mutate generator state, so build "
            "a fresh WorkloadGenerator(spec) for each run"
        )
    generator = generator or WorkloadGenerator(spec)
    data = generator.initial_data()

    before_load = method.device.snapshot()
    if spans_active():
        with span("op.bulk_load"):
            method.bulk_load(data)
            method.flush()
    else:
        method.bulk_load(data)
        method.flush()
    bulk_load_io = method.device.stats_since(before_load)

    if accumulator is None:
        accumulator = RUMAccumulator()
    if batch_size is None:
        batch_size = DEFAULT_BATCH_SIZE
    if batch_size > 1:
        profile = measure_workload_batched(
            method,
            generator.operation_batches(batch_size),
            metrics=metrics,
            accumulator=accumulator,
            live=live,
        )
    else:
        profile = measure_workload(
            method,
            generator.operations(),
            metrics=metrics,
            accumulator=accumulator,
            live=live,
        )
    stats = method.stats()
    return WorkloadResult(
        method_name=method.name,
        spec=spec,
        profile=profile,
        bulk_load_io=bulk_load_io,
        final_records=stats.records,
        final_space_bytes=stats.space_bytes,
        operations_executed=accumulator.read_ops + accumulator.update_ops,
    )
