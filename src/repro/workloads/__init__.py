"""Workload specification and generation.

The paper's analysis (Section 2) runs over "point queries, updates,
inserts, and deletes" on fixed-size records; Table 1 adds range queries of
result size ``m``.  This package generates deterministic, seeded streams
of exactly those operations with configurable operation mixes and key
distributions, and drives them against access methods to produce measured
RUM profiles.
"""

from repro.workloads.distributions import (
    ClusteredKeys,
    KeyDistribution,
    LatestKeys,
    SequentialKeys,
    UniformKeys,
    ZipfianKeys,
)
from repro.workloads.generator import WorkloadGenerator, generate_operations
from repro.workloads.spec import MIXES, Operation, OpKind, WorkloadSpec
from repro.workloads.runner import WorkloadResult, run_workload
from repro.workloads.trace import load_trace, save_trace

__all__ = [
    "ClusteredKeys",
    "KeyDistribution",
    "LatestKeys",
    "MIXES",
    "OpKind",
    "Operation",
    "SequentialKeys",
    "UniformKeys",
    "WorkloadGenerator",
    "WorkloadResult",
    "WorkloadSpec",
    "ZipfianKeys",
    "generate_operations",
    "load_trace",
    "run_workload",
    "save_trace",
]
