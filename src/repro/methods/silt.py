"""SILT-style multi-store composition (Lim et al., SOSP 2011).

The paper's Section 4 cites SILT as the structure that "combines
write-optimized logging, read-optimized immutable hashing, and, a sorted
store, careful[ly] designed around the memory hierarchy to balance the
tradeoffs of its various levels."  This is that three-stage pipeline:

1. **LogStore** — incoming writes append to a small log (UO at the
   append floor) with an in-memory key directory;
2. **HashStores** — sealed logs convert into immutable hash tables
   (one-block point reads, no order);
3. **SortedStore** — accumulated hash stores periodically merge into
   one sorted, densely-packed store (minimal MO, range-capable).

Point reads probe log -> hash stores (newest first) -> sorted store.
Each stage trades differently: the log is write-optimal, the hash
stores read-optimal per probe, the sorted store space-optimal — the
composition balances all three better than any single stage could,
while still obeying the conjecture in aggregate (the benchmarks check
it with everything else).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.core.runs import probe_run, scan_run
from repro.filters.bloom import _mix
from repro.storage.device import SimulatedDevice
from repro.storage.layout import POINTER_BYTES, RECORD_BYTES, records_per_block

from repro.core.sentinels import TOMBSTONE as _TOMBSTONE


@dataclass
class _HashStore:
    """An immutable bucketized hash table over device blocks."""

    buckets: List[int]  # block ids, one per bucket
    records: int
    min_key: int
    max_key: int


class SILTStore(AccessMethod):
    """Log store -> hash stores -> sorted store.

    Parameters
    ----------
    log_records:
        Appends absorbed by the log before it seals into a hash store.
    merge_stores:
        Hash-store count that triggers the merge into the sorted store.
    """

    name = "silt"
    capabilities = Capabilities(ordered=True, updatable=True)

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        log_records: int = 256,
        merge_stores: int = 4,
    ) -> None:
        super().__init__(device)
        if log_records < 1:
            raise ValueError("log_records must be positive")
        if merge_stores < 1:
            raise ValueError("merge_stores must be positive")
        self.log_records = log_records
        self.merge_stores = merge_stores
        self._per_block = records_per_block(self.device.block_bytes)
        # Stage 1: the log — blocks plus an in-memory key directory
        # (key -> (block, slot)), charged to space.
        self._log_blocks: List[int] = []
        self._log_directory: Dict[int, Tuple[int, int]] = {}
        self._log_tail: List[Tuple[int, object]] = []
        # Stage 2: immutable hash stores, newest last.
        self._hash_stores: List[_HashStore] = []
        # Stage 3: the sorted store.
        self._sorted_blocks: List[int] = []
        self._sorted_fences: List[int] = []
        self._live_keys: set = set()

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        records = self._sorted_unique(items)
        self._write_sorted(records)
        self._live_keys = {key for key, _ in records}
        self._record_count = len(records)

    def get(self, key: int) -> Optional[int]:
        # Stage 1: the log directory answers from memory, reading only
        # the one log block that holds the entry (in-flight tail entries
        # are still in the write buffer: free).
        position = self._log_directory.get(key)
        if position is not None:
            value = self._log_value(position)
            return None if value is _TOMBSTONE else value
        # Stage 2: immutable hash stores, newest first — one bucket read.
        for store in reversed(self._hash_stores):
            if key < store.min_key or key > store.max_key:
                continue
            bucket = store.buckets[_mix(key, 0x517) % len(store.buckets)]
            for record_key, value in self.device.read(bucket):
                if record_key == key:
                    return None if value is _TOMBSTONE else value
        # Stage 3: the sorted store — fence-guided single block read.
        return self._probe_sorted(key)

    def range_query(self, lo: int, hi: int) -> List[Record]:
        newest: Dict[int, object] = {}
        for key, position in self._log_directory.items():
            if lo <= key <= hi:
                newest[key] = self._log_value(position)
        for store in reversed(self._hash_stores):
            if hi < store.min_key or lo > store.max_key:
                continue
            for bucket in store.buckets:
                for key, value in self.device.read(bucket):
                    if lo <= key <= hi and key not in newest:
                        newest[key] = value
        for key, value in self._scan_sorted(lo, hi):
            if key not in newest:
                newest[key] = value
        return sorted(
            (key, value) for key, value in newest.items() if value is not _TOMBSTONE
        )

    def insert(self, key: int, value: int) -> None:
        if key in self._live_keys:
            raise ValueError(f"duplicate key {key}")
        self._append(key, value)
        self._live_keys.add(key)
        self._record_count += 1

    def update(self, key: int, value: int) -> None:
        if key not in self._live_keys:
            raise KeyError(key)
        self._append(key, value)

    def delete(self, key: int) -> None:
        if key not in self._live_keys:
            raise KeyError(key)
        self._append(key, _TOMBSTONE)
        self._live_keys.discard(key)
        self._record_count -= 1

    def flush(self) -> None:
        if self._log_tail:
            self._write_log_tail()

    # ------------------------------------------------------------------
    def space_bytes(self) -> int:
        directory = len(self._log_directory) * (8 + POINTER_BYTES)
        fences = len(self._sorted_fences) * 8
        return self.device.allocated_bytes + directory + fences

    @property
    def hash_store_count(self) -> int:
        return len(self._hash_stores)

    @property
    def log_entries(self) -> int:
        return len(self._log_directory)

    # ------------------------------------------------------------------
    # Stage 1: the log
    # ------------------------------------------------------------------
    def _append(self, key: int, value: object) -> None:
        self._log_tail.append((key, value))
        self._log_directory[key] = ("tail", len(self._log_tail) - 1)
        if len(self._log_tail) >= self._per_block:
            self._write_log_tail()
        if len(self._log_directory) >= self.log_records:
            self._seal_log()

    def _log_value(self, position: Tuple) -> object:
        """Resolve a directory entry to its value (tail or log block)."""
        block_id, slot = position
        if block_id == "tail":
            return self._log_tail[slot][1]
        return self.device.read(block_id)[slot][1]

    def _write_log_tail(self) -> None:
        block_id = self.device.allocate(kind="silt-log")
        self.device.write(
            block_id, list(self._log_tail), used_bytes=len(self._log_tail) * RECORD_BYTES
        )
        self._log_blocks.append(block_id)
        for slot, (key, _) in enumerate(self._log_tail):
            # Remap only the slot the directory actually points to — a
            # key updated twice inside one tail must keep its *newest*
            # slot, not be rebound to an earlier occurrence.
            if self._log_directory.get(key) == ("tail", slot):
                self._log_directory[key] = (block_id, slot)
        self._log_tail = []

    def _seal_log(self) -> None:
        """Convert the log into an immutable hash store (stage 1 -> 2)."""
        self.flush()
        # Newest version per key, straight from the directory.
        entries: List[Tuple[int, object]] = []
        for key, (block_id, slot) in self._log_directory.items():
            entries.append((key, self.device.read(block_id)[slot][1]))
        for block_id in self._log_blocks:
            self.device.free(block_id)
        self._log_blocks = []
        self._log_directory = {}
        if entries:
            self._hash_stores.append(self._build_hash_store(entries))
        if len(self._hash_stores) >= self.merge_stores:
            self._merge_into_sorted()

    # ------------------------------------------------------------------
    # Stage 2: immutable hash stores
    # ------------------------------------------------------------------
    def _build_hash_store(self, entries: List[Tuple[int, object]]) -> _HashStore:
        # Size the table so no bucket overflows its block, doubling on
        # hash-variance collisions (the real SILT guarantees occupancy
        # with cuckoo displacement; resizing is our simpler equivalent).
        bucket_count = max(1, -(-len(entries) * 3 // (2 * self._per_block)))
        while True:
            groups: List[List[Tuple[int, object]]] = [
                [] for _ in range(bucket_count)
            ]
            for key, value in entries:
                groups[_mix(key, 0x517) % bucket_count].append((key, value))
            if max(len(group) for group in groups) <= self._per_block:
                break
            bucket_count *= 2
        buckets: List[int] = []
        for group in groups:
            block_id = self.device.allocate(kind="silt-hash")
            self.device.write(block_id, group, used_bytes=len(group) * RECORD_BYTES)
            buckets.append(block_id)
        keys = [key for key, _ in entries]
        return _HashStore(
            buckets=buckets,
            records=len(entries),
            min_key=min(keys),
            max_key=max(keys),
        )

    # ------------------------------------------------------------------
    # Stage 3: the sorted store
    # ------------------------------------------------------------------
    def _merge_into_sorted(self) -> None:
        newest: Dict[int, object] = {}
        for store in reversed(self._hash_stores):
            for bucket in store.buckets:
                for key, value in self.device.read(bucket):
                    if key not in newest:
                        newest[key] = value
            for bucket in store.buckets:
                self.device.free(bucket)
        self._hash_stores = []
        for key, value in self._drain_sorted():
            if key not in newest:
                newest[key] = value
        records = sorted(
            (key, value) for key, value in newest.items() if value is not _TOMBSTONE
        )
        self._write_sorted(records)

    def _write_sorted(self, records: List[Record]) -> None:
        for start in range(0, len(records), self._per_block):
            chunk = records[start : start + self._per_block]
            block_id = self.device.allocate(kind="silt-sorted")
            self.device.write(block_id, chunk, used_bytes=len(chunk) * RECORD_BYTES)
            self._sorted_blocks.append(block_id)
            self._sorted_fences.append(chunk[0][0])

    def _drain_sorted(self) -> List[Record]:
        records: List[Record] = []
        for block_id in self._sorted_blocks:
            records.extend(self.device.read(block_id))
            self.device.free(block_id)
        self._sorted_blocks = []
        self._sorted_fences = []
        return records

    def _probe_sorted(self, key: int) -> Optional[int]:
        found, value = probe_run(
            self.device, self._sorted_blocks, self._sorted_fences, key
        )
        if found:
            return None if value is _TOMBSTONE else value
        return None

    def _scan_sorted(self, lo: int, hi: int) -> List[Record]:
        return scan_run(self.device, self._sorted_blocks, self._sorted_fences, lo, hi)
