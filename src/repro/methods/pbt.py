"""Partitioned B-tree (Graefe, CIDR 2003) — write-optimized via partitions.

A PBT keeps multiple partitions inside one logical B-tree (modelled here
as a list of B+-Trees on a shared device, newest partition last).
Inserts always go to the small *current* partition, so they enjoy the
shallow height and cheap splits of a tree a fraction of the dataset's
size; queries must probe every partition (newest first), paying read
amplification proportional to the partition count.  Merging partitions
("the number of partitions in PBT" — one of the paper's Section-5 knob
examples) moves the structure back toward the read-optimized corner.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.methods.btree import BPlusTree
from repro.storage.device import SimulatedDevice


class PartitionedBTree(AccessMethod):
    """A stack of B+-Tree partitions over one device.

    Parameters
    ----------
    partition_records:
        Inserts accumulate in the current partition until it reaches this
        size, then a fresh partition starts.
    max_partitions:
        When exceeded, all partitions merge into one (read-optimizing
        maintenance).  ``None`` disables auto-merging.
    """

    name = "pbt"
    capabilities = Capabilities(ordered=True, updatable=True, checks_duplicates=False)

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        partition_records: int = 2048,
        max_partitions: Optional[int] = 8,
    ) -> None:
        super().__init__(device)
        if partition_records < 1:
            raise ValueError("partition_records must be positive")
        if max_partitions is not None and max_partitions < 1:
            raise ValueError("max_partitions must be positive or None")
        self.partition_records = partition_records
        self.max_partitions = max_partitions
        self._partitions: List[BPlusTree] = []

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        records = self._sorted_unique(items)
        if not records:
            return
        partition = self._new_partition()
        partition.bulk_load(records)
        self._record_count = len(records)

    def get(self, key: int) -> Optional[int]:
        for partition in reversed(self._partitions):
            value = partition.get(key)
            if value is not None:
                return value
        return None

    def range_query(self, lo: int, hi: int) -> List[Record]:
        merged = {}
        for partition in reversed(self._partitions):
            for key, value in partition.range_query(lo, hi):
                if key not in merged:
                    merged[key] = value
        return sorted(merged.items())

    def insert(self, key: int, value: int) -> None:
        current = self._current_partition()
        current.insert(key, value)
        self._record_count += 1
        if (
            self.max_partitions is not None
            and len(self._partitions) > self.max_partitions
        ):
            self.merge_partitions()

    def update(self, key: int, value: int) -> None:
        for partition in reversed(self._partitions):
            try:
                partition.update(key, value)
                return
            except KeyError:
                continue
        raise KeyError(key)

    def delete(self, key: int) -> None:
        for partition in reversed(self._partitions):
            try:
                partition.delete(key)
                self._record_count -= 1
                return
            except KeyError:
                continue
        raise KeyError(key)

    # ------------------------------------------------------------------
    def maintenance(self) -> None:
        """Merge every partition into one read-optimized tree."""
        self.merge_partitions()

    def merge_partitions(self) -> None:
        """Merge every partition into a single read-optimized tree."""
        if len(self._partitions) <= 1:
            return
        merged = {}
        for partition in reversed(self._partitions):
            for key, value in partition.range_query(
                -(1 << 62), (1 << 62)
            ):
                if key not in merged:
                    merged[key] = value
        # Free every old partition's blocks by rebuilding on a clean slate.
        for partition in self._partitions:
            self._free_tree(partition)
        self._partitions = []
        fresh = self._new_partition()
        fresh.bulk_load(sorted(merged.items()))

    @property
    def partitions(self) -> int:
        return len(self._partitions)

    # ------------------------------------------------------------------
    def _current_partition(self) -> BPlusTree:
        if not self._partitions or len(self._partitions[-1]) >= self.partition_records:
            return self._new_partition()
        return self._partitions[-1]

    def _new_partition(self) -> BPlusTree:
        partition = BPlusTree(device=self.device)
        self._partitions.append(partition)
        return partition

    def _free_tree(self, tree: BPlusTree) -> None:
        """Release all blocks a partition allocated (walk from its root)."""
        root = tree._root
        if root is None:
            return
        stack = [root]
        while stack:
            block_id = stack.pop()
            node = self.device.peek(block_id)
            children = getattr(node, "children", None)
            if children:
                stack.extend(children)
            self.device.free(block_id)
