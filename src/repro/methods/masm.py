"""MaSM — Materialized Sort-Merge (Athanassoulis et al., SIGMOD 2011).

MaSM targets online updates in data warehouses: the main data stays
read-optimized (sorted, scan-friendly) while updates land in a bounded
update buffer and are spilled as *materialized sorted runs* on fast
storage; queries merge the runs with the main data on the fly, and a
periodic long merge folds the runs back into the main.  The paper lists
it among write-optimized differential structures (left corner of
Figure 1).

Here the main is a sorted extent of blocks, update runs are sorted block
sequences with in-memory fence keys, and ``merge_updates`` performs the
long merge.  The run-count knob ("the number of sorted runs in MaSM")
slides the structure along the R-U edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.core.runs import probe_run, scan_run
from repro.storage.device import SimulatedDevice
from repro.storage.layout import RECORD_BYTES, records_per_block

#: Deletion marker inside runs and the buffer.
from repro.core.sentinels import TOMBSTONE as _TOMBSTONE


@dataclass
class _UpdateRun:
    """One materialized sorted run of updates."""

    block_ids: List[int]
    fence_keys: List[int]  # first key per block (in memory, tiny)
    records: int


class MaSMColumn(AccessMethod):
    """Sorted main data plus materialized sorted update runs."""

    name = "masm"
    capabilities = Capabilities(ordered=True, updatable=True)

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        buffer_records: int = 256,
        max_runs: int = 8,
    ) -> None:
        super().__init__(device)
        if buffer_records < 1:
            raise ValueError("buffer_records must be positive")
        if max_runs < 1:
            raise ValueError("max_runs must be positive")
        self.buffer_records = buffer_records
        self.max_runs = max_runs
        self._per_block = records_per_block(self.device.block_bytes)
        self._main_blocks: List[int] = []
        self._main_fences: List[int] = []
        self._buffer: Dict[int, object] = {}
        self._runs: List[_UpdateRun] = []  # oldest first
        self._live_keys: set = set()

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        records = self._sorted_unique(items)
        self._write_main(records)
        self._live_keys = {key for key, _ in records}
        self._record_count = len(records)

    def get(self, key: int) -> Optional[int]:
        if key in self._buffer:
            value = self._buffer[key]
            return None if value is _TOMBSTONE else value
        for run in reversed(self._runs):
            found, value = self._probe_run(run, key)
            if found:
                return None if value is _TOMBSTONE else value
        return self._probe_main(key)

    def range_query(self, lo: int, hi: int) -> List[Record]:
        newest: Dict[int, object] = {}
        for key, value in self._buffer.items():
            if lo <= key <= hi:
                newest[key] = value
        for run in reversed(self._runs):
            for key, value in self._scan_run(run, lo, hi):
                if key not in newest:
                    newest[key] = value
        for key, value in self._scan_main(lo, hi):
            if key not in newest:
                newest[key] = value
        return sorted(
            (key, value) for key, value in newest.items() if value is not _TOMBSTONE
        )

    def insert(self, key: int, value: int) -> None:
        if key in self._live_keys:
            raise ValueError(f"duplicate key {key}")
        self._put(key, value)
        self._live_keys.add(key)
        self._record_count += 1

    def update(self, key: int, value: int) -> None:
        if key not in self._live_keys:
            raise KeyError(key)
        self._put(key, value)

    def delete(self, key: int) -> None:
        if key not in self._live_keys:
            raise KeyError(key)
        self._put(key, _TOMBSTONE)
        self._live_keys.discard(key)
        self._record_count -= 1

    # ------------------------------------------------------------------
    def space_bytes(self) -> int:
        fence_bytes = 8 * (
            len(self._main_fences) + sum(len(run.fence_keys) for run in self._runs)
        )
        return (
            self.device.allocated_bytes
            + len(self._buffer) * RECORD_BYTES
            + fence_bytes
        )

    def flush(self) -> None:
        if self._buffer:
            self._spill_buffer()

    def maintenance(self) -> None:
        """Run the long merge if any differential state is pending."""
        if self._buffer or self._runs:
            self.merge_updates()

    @property
    def run_count(self) -> int:
        return len(self._runs)

    # ------------------------------------------------------------------
    def merge_updates(self) -> None:
        """The long merge: fold buffer + runs back into the main data."""
        newest: Dict[int, object] = dict(self._buffer)
        self._buffer = {}
        for run in reversed(self._runs):
            for block_id in run.block_ids:
                for key, value in self.device.read(block_id):
                    if key not in newest:
                        newest[key] = value
        for run in self._runs:
            for block_id in run.block_ids:
                self.device.free(block_id)
        self._runs = []
        merged: List[Record] = []
        for key, value in self._iter_main():
            if key in newest:
                replacement = newest.pop(key)
                if replacement is not _TOMBSTONE:
                    merged.append((key, replacement))
            else:
                merged.append((key, value))
        for key, value in newest.items():
            if value is not _TOMBSTONE:
                merged.append((key, value))
        merged.sort(key=lambda record: record[0])
        for block_id in self._main_blocks:
            self.device.free(block_id)
        self._main_blocks = []
        self._main_fences = []
        self._write_main(merged)

    # ------------------------------------------------------------------
    def _put(self, key: int, value: object) -> None:
        self._buffer[key] = value
        if len(self._buffer) >= self.buffer_records:
            self._spill_buffer()

    def _spill_buffer(self) -> None:
        records = sorted(self._buffer.items())
        self._buffer = {}
        block_ids: List[int] = []
        fences: List[int] = []
        for start in range(0, len(records), self._per_block):
            chunk = records[start : start + self._per_block]
            block_id = self.device.allocate(kind="masm-run")
            self.device.write(block_id, chunk, used_bytes=len(chunk) * RECORD_BYTES)
            block_ids.append(block_id)
            fences.append(chunk[0][0])
        self._runs.append(
            _UpdateRun(block_ids=block_ids, fence_keys=fences, records=len(records))
        )
        if len(self._runs) > self.max_runs:
            self.merge_updates()

    def _write_main(self, records: List[Record]) -> None:
        for start in range(0, len(records), self._per_block):
            chunk = records[start : start + self._per_block]
            block_id = self.device.allocate(kind="masm-main")
            self.device.write(block_id, chunk, used_bytes=len(chunk) * RECORD_BYTES)
            self._main_blocks.append(block_id)
            self._main_fences.append(chunk[0][0])

    def _iter_main(self) -> List[Record]:
        records: List[Record] = []
        for block_id in self._main_blocks:
            records.extend(self.device.read(block_id))
        return records

    def _probe_main(self, key: int) -> Optional[int]:
        found, value = probe_run(self.device, self._main_blocks, self._main_fences, key)
        return value if found else None

    def _scan_main(self, lo: int, hi: int) -> List[Record]:
        return scan_run(self.device, self._main_blocks, self._main_fences, lo, hi)

    def _probe_run(self, run: _UpdateRun, key: int) -> Tuple[bool, object]:
        return probe_run(self.device, run.block_ids, run.fence_keys, key)

    def _scan_run(self, run: _UpdateRun, lo: int, hi: int) -> List[Tuple[int, object]]:
        return scan_run(self.device, run.block_ids, run.fence_keys, lo, hi)
