"""Positional Differential updates (Héman et al., SIGMOD 2010).

The Positional Delta Tree keeps a *read-optimized, immutable* main copy
of the data and absorbs all modifications in a small memory-resident
differential structure ordered by position; scans merge the two on the
fly and a periodic *checkpoint* rewrites the main with the deltas
applied.  The paper places PDT among the write-optimized differential
structures of Figure 1.

The main here is a sorted extent of blocks; the delta is an ordered map
from key to pending change, held in memory and charged to the structure's
space footprint (that memory *is* the PDT's memory overhead).  Reads
merge for free CPU-wise but the delta's space grows until
``checkpoint()`` — the exact MO-for-UO trade the paper describes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.core.runs import probe_run, scan_run
from repro.storage.device import SimulatedDevice
from repro.storage.layout import RECORD_BYTES, records_per_block

#: Delta entry tags.
_INS = "insert"
_UPD = "update"
_DEL = "delete"

#: Budgeted bytes per delta entry (record + tag + tree pointers).
DELTA_ENTRY_BYTES = RECORD_BYTES + 1 + 16


class PositionalDeltaColumn(AccessMethod):
    """Immutable sorted main + in-memory delta tree + checkpointing."""

    name = "pdt"
    capabilities = Capabilities(ordered=True, updatable=True)

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        checkpoint_records: int = 4096,
    ) -> None:
        super().__init__(device)
        if checkpoint_records < 1:
            raise ValueError("checkpoint_records must be positive")
        self.checkpoint_records = checkpoint_records
        self._per_block = records_per_block(self.device.block_bytes)
        self._main_blocks: List[int] = []
        self._main_fences: List[int] = []
        self._delta: Dict[int, Tuple[str, Optional[int]]] = {}

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        records = self._sorted_unique(items)
        self._write_main(records)
        self._record_count = len(records)

    def get(self, key: int) -> Optional[int]:
        entry = self._delta.get(key)
        if entry is not None:
            tag, value = entry
            return None if tag == _DEL else value
        return self._probe_main(key)

    def range_query(self, lo: int, hi: int) -> List[Record]:
        merged: Dict[int, Optional[int]] = {}
        for key, value in self._scan_main(lo, hi):
            merged[key] = value
        for key, (tag, value) in self._delta.items():
            if lo <= key <= hi:
                if tag == _DEL:
                    merged.pop(key, None)
                else:
                    merged[key] = value
        return sorted((key, value) for key, value in merged.items())

    def insert(self, key: int, value: int) -> None:
        if self.get_quiet(key) is not None:
            raise ValueError(f"duplicate key {key}")
        self._delta[key] = (_INS, value)
        self._record_count += 1
        self._maybe_checkpoint()

    def update(self, key: int, value: int) -> None:
        if self.get_quiet(key) is None:
            raise KeyError(key)
        tag = _INS if self._delta.get(key, ("", None))[0] == _INS else _UPD
        self._delta[key] = (tag, value)
        self._maybe_checkpoint()

    def delete(self, key: int) -> None:
        if self.get_quiet(key) is None:
            raise KeyError(key)
        if self._delta.get(key, ("", None))[0] == _INS and not self._in_main(key):
            # Insert never reached the main copy; cancel it outright.
            del self._delta[key]
        else:
            self._delta[key] = (_DEL, None)
        self._record_count -= 1
        self._maybe_checkpoint()

    # ------------------------------------------------------------------
    def space_bytes(self) -> int:
        return (
            self.device.allocated_bytes
            + len(self._delta) * DELTA_ENTRY_BYTES
            + len(self._main_fences) * 8
        )

    @property
    def pending_deltas(self) -> int:
        return len(self._delta)

    def flush(self) -> None:
        """Checkpoint pending deltas (the PDT's durability point)."""
        if self._delta:
            self.checkpoint()

    def maintenance(self) -> None:
        """Checkpoint pending deltas into the main copy."""
        if self._delta:
            self.checkpoint()

    def checkpoint(self) -> None:
        """Rewrite the main with all deltas applied (the long merge)."""
        merged: Dict[int, int] = {}
        for key, value in self._drain_main():
            merged[key] = value
        for key, (tag, value) in self._delta.items():
            if tag == _DEL:
                merged.pop(key, None)
            else:
                merged[key] = value
        self._delta = {}
        self._write_main(sorted(merged.items()))

    # ------------------------------------------------------------------
    def get_quiet(self, key: int) -> Optional[int]:
        """Presence check without charging I/O for the delta probe.

        The main probe still costs I/O if the delta cannot answer.
        """
        entry = self._delta.get(key)
        if entry is not None:
            tag, value = entry
            return None if tag == _DEL else value
        return self._probe_main(key)

    def _in_main(self, key: int) -> bool:
        return self._probe_main(key) is not None

    def _maybe_checkpoint(self) -> None:
        if len(self._delta) >= self.checkpoint_records:
            self.checkpoint()

    def _write_main(self, records: List[Record]) -> None:
        for start in range(0, len(records), self._per_block):
            chunk = records[start : start + self._per_block]
            block_id = self.device.allocate(kind="pdt-main")
            self.device.write(block_id, chunk, used_bytes=len(chunk) * RECORD_BYTES)
            self._main_blocks.append(block_id)
            self._main_fences.append(chunk[0][0])

    def _drain_main(self) -> List[Record]:
        records: List[Record] = []
        for block_id in self._main_blocks:
            records.extend(self.device.read(block_id))
            self.device.free(block_id)
        self._main_blocks = []
        self._main_fences = []
        return records

    def _probe_main(self, key: int) -> Optional[int]:
        found, value = probe_run(self.device, self._main_blocks, self._main_fences, key)
        return value if found else None

    def _scan_main(self, lo: int, hi: int) -> List[Record]:
        return scan_run(self.device, self._main_blocks, self._main_fences, lo, hi)
