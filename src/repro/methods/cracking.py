"""Database cracking (Idreos et al., CIDR 2007) — the adaptive middle.

Cracking physically reorganizes the column *as a side effect of queries*:
each range query partitions ("cracks") the pieces its bounds fall into,
so frequently queried regions become ever more finely sorted.  The read
overhead starts at full-scan level and converges toward binary search,
while the reorganization writes show up as update overhead and the
growing cracker index as memory overhead — the gradual RUM migration the
paper describes for adaptive access methods (middle of Figure 1; the E12
benchmark plots the trajectory).

Layout: one unsorted array of records across device blocks, an in-memory
cracker index of piece boundaries (charged to the space footprint), and
a pending-updates pool merged on a size threshold (the simple
"ripple-free" update strategy).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.storage.device import SimulatedDevice
from repro.storage.layout import KEY_BYTES, POINTER_BYTES, RECORD_BYTES, records_per_block

#: Budgeted bytes per cracker-index entry (boundary key + position).
CRACK_ENTRY_BYTES = KEY_BYTES + POINTER_BYTES


class CrackedColumn(AccessMethod):
    """A query-adaptive cracked column."""

    name = "cracking"
    capabilities = Capabilities(
        ordered=True, updatable=True, adaptive=True, checks_duplicates=False
    )

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        pending_limit: int = 1024,
    ) -> None:
        super().__init__(device)
        if pending_limit < 1:
            raise ValueError("pending_limit must be positive")
        self.pending_limit = pending_limit
        self._per_block = records_per_block(self.device.block_bytes)
        self._blocks: List[int] = []
        self._size = 0  # records in the cracked array
        # Cracker index: boundary keys and the array position where the
        # half-open piece [boundary, next boundary) starts.  Invariant:
        # every record in [positions[i], positions[i+1]) has
        # boundaries[i] <= key < boundaries[i+1].
        self._boundaries: List[int] = []
        self._positions: List[int] = []
        # Pending updates not yet merged into the array.
        self._pending: Dict[int, Optional[int]] = {}  # key -> value | None=deleted

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        records = list(items)
        self._write_array(records)
        self._record_count = len(records)

    def get(self, key: int) -> Optional[int]:
        if key in self._pending:
            return self._pending[key]
        lo_pos, hi_pos = self._crack(key, key + 1)
        for record_key, value in self._read_span(lo_pos, hi_pos):
            if record_key == key:
                return value
        return None

    def range_query(self, lo: int, hi: int) -> List[Record]:
        lo_pos, hi_pos = self._crack(lo, hi + 1)
        matches = [
            (key, value)
            for key, value in self._read_span(lo_pos, hi_pos)
            if lo <= key <= hi and key not in self._pending
        ]
        for key, value in self._pending.items():
            if lo <= key <= hi and value is not None:
                matches.append((key, value))
        matches.sort(key=lambda record: record[0])
        return matches

    def insert(self, key: int, value: int) -> None:
        self._pending[key] = value
        self._record_count += 1
        self._maybe_merge_pending()

    def update(self, key: int, value: int) -> None:
        if not self._exists(key):
            raise KeyError(key)
        self._pending[key] = value
        self._maybe_merge_pending()

    def delete(self, key: int) -> None:
        if not self._exists(key):
            raise KeyError(key)
        self._pending[key] = None
        self._record_count -= 1
        self._maybe_merge_pending()

    # ------------------------------------------------------------------
    def space_bytes(self) -> int:
        cracker = len(self._boundaries) * CRACK_ENTRY_BYTES
        pending = len(self._pending) * RECORD_BYTES
        return self.device.allocated_bytes + cracker + pending

    @property
    def pieces(self) -> int:
        """Number of cracked pieces (1 means still fully unsorted)."""
        return len(self._boundaries) + 1

    # ------------------------------------------------------------------
    # Cracking machinery
    # ------------------------------------------------------------------
    def _crack(self, lo: int, hi_exclusive: int) -> Tuple[int, int]:
        """Ensure piece boundaries exist at ``lo`` and ``hi_exclusive``;
        return the array span [lo_pos, hi_pos) that holds keys in range."""
        if self._size == 0:
            return 0, 0
        lo_pos = self._crack_at(lo)
        hi_pos = self._crack_at(hi_exclusive)
        return lo_pos, hi_pos

    def _crack_at(self, key: int) -> int:
        """Partition the piece containing ``key`` so that a boundary at
        ``key`` exists; return that boundary's array position."""
        index = bisect.bisect_right(self._boundaries, key) - 1
        if index >= 0 and self._boundaries[index] == key:
            return self._positions[index]
        piece_lo = self._positions[index] if index >= 0 else 0
        piece_hi = (
            self._positions[index + 1]
            if index + 1 < len(self._positions)
            else self._size
        )
        if piece_lo >= piece_hi:
            cut = piece_lo
        else:
            records = self._read_span(piece_lo, piece_hi)
            left = [record for record in records if record[0] < key]
            right = [record for record in records if record[0] >= key]
            self._write_span(piece_lo, left + right)
            cut = piece_lo + len(left)
        insert_at = index + 1
        self._boundaries.insert(insert_at, key)
        self._positions.insert(insert_at, cut)
        return cut

    # ------------------------------------------------------------------
    # Array storage
    # ------------------------------------------------------------------
    def _write_array(self, records: List[Record]) -> None:
        for block_id in self._blocks:
            self.device.free(block_id)
        self._blocks = []
        for start in range(0, len(records), self._per_block):
            chunk = records[start : start + self._per_block]
            block_id = self.device.allocate(kind="cracked")
            self.device.write(block_id, chunk, used_bytes=len(chunk) * RECORD_BYTES)
            self._blocks.append(block_id)
        self._size = len(records)

    def _read_span(self, lo_pos: int, hi_pos: int) -> List[Record]:
        """Read records in array positions [lo_pos, hi_pos)."""
        if lo_pos >= hi_pos:
            return []
        first_block = lo_pos // self._per_block
        last_block = (hi_pos - 1) // self._per_block
        records: List[Record] = []
        for block_index in range(first_block, last_block + 1):
            records.extend(self.device.read(self._blocks[block_index]))
        offset = lo_pos - first_block * self._per_block
        return records[offset : offset + (hi_pos - lo_pos)]

    def _write_span(self, lo_pos: int, records: List[Record]) -> None:
        """Write ``records`` back to array positions starting at lo_pos."""
        if not records:
            return
        hi_pos = lo_pos + len(records)
        first_block = lo_pos // self._per_block
        last_block = (hi_pos - 1) // self._per_block
        for block_index in range(first_block, last_block + 1):
            block_lo = block_index * self._per_block
            existing = list(self.device.read(self._blocks[block_index]))
            for slot in range(len(existing)):
                position = block_lo + slot
                if lo_pos <= position < hi_pos:
                    existing[slot] = records[position - lo_pos]
            self.device.write(
                self._blocks[block_index],
                existing,
                used_bytes=len(existing) * RECORD_BYTES,
            )

    # ------------------------------------------------------------------
    # Pending updates
    # ------------------------------------------------------------------
    def _exists(self, key: int) -> bool:
        if key in self._pending:
            return self._pending[key] is not None
        # Probe without cracking (membership checks should not reorganize).
        lo_pos, hi_pos = self._span_for(key)
        return any(record_key == key for record_key, _ in self._read_span(lo_pos, hi_pos))

    def _span_for(self, key: int) -> Tuple[int, int]:
        index = bisect.bisect_right(self._boundaries, key) - 1
        piece_lo = self._positions[index] if index >= 0 else 0
        piece_hi = (
            self._positions[index + 1]
            if index + 1 < len(self._positions)
            else self._size
        )
        return piece_lo, piece_hi

    def flush(self) -> None:
        """Fold any pending updates into the array (durability point)."""
        self.merge_pending()

    def _maybe_merge_pending(self) -> None:
        if len(self._pending) < self.pending_limit:
            return
        self.merge_pending()

    def maintenance(self) -> None:
        """Fold pending updates into the cracked array."""
        self.merge_pending()

    def merge_pending(self) -> None:
        """Fold pending inserts/updates/deletes into the array.

        The array is rebuilt and the cracker index reset — the simple
        (non-ripple) strategy from the cracking-updates literature.
        """
        if not self._pending:
            return
        records = []
        for key, value in self._read_span(0, self._size):
            if key in self._pending:
                continue
            records.append((key, value))
        for key, value in self._pending.items():
            if value is not None:
                records.append((key, value))
        self._pending = {}
        self._boundaries = []
        self._positions = []
        self._write_array(records)
