"""Indexed log — Section 5's "iterative logs enhanced by probabilistic
data structures".

The paper's roadmap proposes "access methods with iterative logs
enhanced by probabilistic data structures that allows for more
efficient reads and updates by avoiding accessing unnecessary data at
the expense of additional space".

This structure is exactly that: an append-only log of fixed-size
*segments*, each carrying (a) a zone synopsis (min/max key) and (b) a
Bloom filter of its keys.  Writes remain pure appends (UO near the
Prop-2 floor); point reads walk segments newest-first but skip — at
filter cost only — every segment that cannot contain the key; range
reads skip segments by zone.  The filters and synopses are the "expense
of additional space".

Compaction ("iterative") folds cold segments together, dropping
superseded versions and tombstones, and rebuilds their filters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.filters.bloom import BloomFilter
from repro.obs.spans import span, spanned
from repro.storage.device import SimulatedDevice
from repro.storage.layout import RECORD_BYTES, records_per_block

#: Deletion marker inside segments.
from repro.core.sentinels import TOMBSTONE as _TOMBSTONE


@dataclass
class _Segment:
    """One immutable log segment with its filter and zone synopsis."""

    block_ids: List[int]
    bloom: Optional[BloomFilter]
    bloom_block: Optional[int]
    min_key: int
    max_key: int
    records: int


class IndexedLog(AccessMethod):
    """Append-only segmented log with per-segment filters.

    Parameters
    ----------
    segment_records:
        Appends buffered in memory before a segment is sealed.
    bloom_bits_per_key:
        Per-segment filter budget; 0 disables filters (degrading point
        reads toward the plain Prop-2 log).
    compact_segments:
        Extra segments tolerated beyond the minimal footprint
        (``ceil(records / segment_records)``) before the iterative
        compaction folds the log; ``None`` disables it (the log then
        grows forever, as in Prop 2).
    """

    name = "indexed-log"
    capabilities = Capabilities(ordered=True, updatable=True)

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        segment_records: int = 256,
        bloom_bits_per_key: int = 10,
        compact_segments: Optional[int] = 16,
    ) -> None:
        super().__init__(device)
        if segment_records < 1:
            raise ValueError("segment_records must be positive")
        if bloom_bits_per_key < 0:
            raise ValueError("bloom_bits_per_key must be non-negative")
        if compact_segments is not None and compact_segments < 2:
            raise ValueError("compact_segments must be at least 2 or None")
        self.segment_records = segment_records
        self.bloom_bits_per_key = bloom_bits_per_key
        self.compact_segments = compact_segments
        self._per_block = records_per_block(self.device.block_bytes)
        self._buffer: Dict[int, object] = {}
        self._segments: List[_Segment] = []  # oldest first
        self._live_keys: set = set()

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        records = list(items)
        for start in range(0, len(records), self.segment_records):
            chunk = sorted(records[start : start + self.segment_records])
            if chunk:
                self._segments.append(self._seal(chunk))
        self._live_keys = {key for key, _ in records}
        self._record_count = len(records)

    def get(self, key: int) -> Optional[int]:
        if key in self._buffer:
            value = self._buffer[key]
            return None if value is _TOMBSTONE else value
        for segment in reversed(self._segments):
            if key < segment.min_key or key > segment.max_key:
                continue  # zone skip: free
            if segment.bloom is not None and not self._consult_bloom(segment, key):
                continue
            found, value = self._probe_segment(segment, key)
            if found:
                return None if value is _TOMBSTONE else value
        return None

    def range_query(self, lo: int, hi: int) -> List[Record]:
        newest: Dict[int, object] = {}
        for key, value in self._buffer.items():
            if lo <= key <= hi:
                newest[key] = value
        for segment in reversed(self._segments):
            if hi < segment.min_key or lo > segment.max_key:
                continue
            for block_id in segment.block_ids:
                for key, value in self.device.read(block_id):
                    if lo <= key <= hi and key not in newest:
                        newest[key] = value
        return sorted(
            (key, value) for key, value in newest.items() if value is not _TOMBSTONE
        )

    def insert(self, key: int, value: int) -> None:
        if key in self._live_keys:
            raise ValueError(f"duplicate key {key}")
        self._append(key, value)
        self._live_keys.add(key)
        self._record_count += 1

    def update(self, key: int, value: int) -> None:
        if key not in self._live_keys:
            raise KeyError(key)
        self._append(key, value)

    def delete(self, key: int) -> None:
        if key not in self._live_keys:
            raise KeyError(key)
        self._append(key, _TOMBSTONE)
        self._live_keys.discard(key)
        self._record_count -= 1

    def flush(self) -> None:
        if self._buffer:
            self._seal_buffer()

    # ------------------------------------------------------------------
    def space_bytes(self) -> int:
        return self.device.allocated_bytes + len(self._buffer) * RECORD_BYTES

    @property
    def segments(self) -> int:
        return len(self._segments)

    def filter_bytes(self) -> int:
        """Space occupied by all segment Bloom filters."""
        return sum(
            segment.bloom.size_bytes
            for segment in self._segments
            if segment.bloom is not None
        )

    # ------------------------------------------------------------------
    def maintenance(self) -> None:
        """Seal the buffer and fold the log if it is above minimal size."""
        self.flush()
        minimal = max(1, -(-max(self._record_count, 1) // self.segment_records))
        if len(self._segments) > minimal:
            self.compact()

    def compact(self) -> None:
        """Iterative compaction: fold the whole log into minimal segments.

        Newest-version-wins across every segment; superseded versions
        and tombstones drop (a full fold leaves nothing older for a
        tombstone to suppress), filters are rebuilt.  This is the
        "iterative" maintenance that keeps the log from exhibiting
        Prop 2's unbounded RO/MO growth — folding only stale *suffixes*
        would be wasted work, since a log's redundancy concentrates in
        the overlap between old versions and recent churn.
        """
        if len(self._segments) < 2:
            return
        with span("ilog.compaction"):
            newest: Dict[int, object] = {}
            for segment in reversed(self._segments):
                for block_id in segment.block_ids:
                    for key, value in self.device.read(block_id):
                        if key not in newest:
                            newest[key] = value
            for segment in self._segments:
                self._free_segment(segment)
            survivors = sorted(
                (key, value) for key, value in newest.items() if value is not _TOMBSTONE
            )
            rebuilt: List[_Segment] = []
            for start in range(0, len(survivors), self.segment_records):
                chunk = survivors[start : start + self.segment_records]
                if chunk:
                    rebuilt.append(self._seal(chunk))
            self._segments = rebuilt

    # ------------------------------------------------------------------
    def _append(self, key: int, value: object) -> None:
        self._buffer[key] = value
        if len(self._buffer) >= self.segment_records:
            self._seal_buffer()

    def _seal_buffer(self) -> None:
        records = sorted(self._buffer.items())
        self._buffer = {}
        self._segments.append(self._seal(records))
        if self.compact_segments is not None:
            minimal = max(1, -(-max(self._record_count, 1) // self.segment_records))
            if len(self._segments) >= minimal + self.compact_segments:
                self.compact()

    @spanned("ilog.seal")
    def _seal(self, records: List[Tuple[int, object]]) -> _Segment:
        block_ids: List[int] = []
        for start in range(0, len(records), self._per_block):
            chunk = records[start : start + self._per_block]
            block_id = self.device.allocate(kind="log-segment")
            self.device.write(block_id, chunk, used_bytes=len(chunk) * RECORD_BYTES)
            block_ids.append(block_id)
        bloom = None
        bloom_block = None
        if self.bloom_bits_per_key > 0:
            fpr = max(1e-6, 0.6185 ** self.bloom_bits_per_key)
            bloom = BloomFilter(max(1, len(records)), fpr)
            for key, _ in records:
                bloom.add(key)
            bloom_block = self.device.allocate(kind="log-bloom")
            self.device.write(
                bloom_block,
                ("bloom", len(records)),
                used_bytes=min(bloom.size_bytes, self.device.block_bytes),
            )
        return _Segment(
            block_ids=block_ids,
            bloom=bloom,
            bloom_block=bloom_block,
            min_key=records[0][0],
            max_key=records[-1][0],
            records=len(records),
        )

    def _free_segment(self, segment: _Segment) -> None:
        for block_id in segment.block_ids:
            self.device.free(block_id)
        if segment.bloom_block is not None:
            self.device.free(segment.bloom_block)

    @spanned("ilog.bloom_probe")
    def _consult_bloom(self, segment: _Segment, key: int) -> bool:
        self.device.read(segment.bloom_block)  # filter probe: 1 read
        return segment.bloom.may_contain(key)

    @spanned("ilog.probe")
    def _probe_segment(self, segment: _Segment, key: int) -> Tuple[bool, object]:
        import bisect

        # Segments are sorted: binary-search block by first key.
        lo_block, hi_block = 0, len(segment.block_ids) - 1
        while lo_block < hi_block:
            mid = (lo_block + hi_block + 1) // 2
            records = self.device.read(segment.block_ids[mid])
            if records and records[0][0] <= key:
                lo_block = mid
            else:
                hi_block = mid - 1
        records = self.device.read(segment.block_ids[lo_block])
        keys = [record_key for record_key, _ in records]
        index = bisect.bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            return True, records[index][1]
        return False, None
