"""Adaptive merging (Graefe & Kuno, EDBT 2010) — query-driven merge sort.

Where cracking refines by partitioning, adaptive merging refines by
*merging*: the data starts as many sorted runs; each range query extracts
the qualifying key range from every run and merges it into a final,
fully-indexed partition (a B+-Tree here).  Hot ranges migrate quickly;
cold data stays in runs and costs nothing to maintain.  The paper pairs
it with cracking in the adaptive middle of Figure 1.

Reads that hit the final partition are tree-fast; reads over unmerged
ranges pay run probes *and* the merge work (charged to the read's I/O —
adaptive indexing's signature "queries pay for indexing").
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.methods.btree import BPlusTree
from repro.storage.device import SimulatedDevice
from repro.storage.layout import RECORD_BYTES, records_per_block


@dataclass
class _SortedRun:
    """An initial sorted run; records are removed as ranges migrate."""

    block_ids: List[int]
    fence_keys: List[int]
    records: int


class AdaptiveMergingColumn(AccessMethod):
    """Sorted runs that migrate into a final B+-Tree as queries touch them."""

    name = "adaptive-merging"
    capabilities = Capabilities(ordered=True, updatable=True, adaptive=True)

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        run_records: int = 4096,
    ) -> None:
        super().__init__(device)
        if run_records < 1:
            raise ValueError("run_records must be positive")
        self.run_records = run_records
        self._per_block = records_per_block(self.device.block_bytes)
        self._runs: List[_SortedRun] = []
        self._final = BPlusTree(device=self.device)
        self._merged_ranges: List[Tuple[int, int]] = []  # disjoint, sorted

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        records = list(items)
        # Run generation: sort run-sized chunks independently (one pass),
        # exactly how adaptive merging initializes.
        for start in range(0, len(records), self.run_records):
            chunk = sorted(
                records[start : start + self.run_records], key=lambda r: r[0]
            )
            self._runs.append(self._write_run(chunk))
        self._record_count = len(records)

    def get(self, key: int) -> Optional[int]:
        if self._range_is_merged(key, key):
            return self._final.get(key)
        self._merge_range(key, key)
        return self._final.get(key)

    def range_query(self, lo: int, hi: int) -> List[Record]:
        if not self._range_is_merged(lo, hi):
            self._merge_range(lo, hi)
        return self._final.range_query(lo, hi)

    def insert(self, key: int, value: int) -> None:
        # New data goes straight to the final partition; the merged-range
        # bookkeeping must cover it so reads trust the tree.
        self._merge_range(key, key)
        self._final.insert(key, value)
        self._record_count += 1

    def update(self, key: int, value: int) -> None:
        if not self._range_is_merged(key, key):
            self._merge_range(key, key)
        self._final.update(key, value)

    def delete(self, key: int) -> None:
        if not self._range_is_merged(key, key):
            self._merge_range(key, key)
        self._final.delete(key)
        self._record_count -= 1

    # ------------------------------------------------------------------
    def space_bytes(self) -> int:
        ranges = len(self._merged_ranges) * 2 * 8
        return self.device.allocated_bytes + ranges

    @property
    def remaining_run_records(self) -> int:
        return sum(run.records for run in self._runs)

    @property
    def merged_fraction(self) -> float:
        total = len(self._final) + self.remaining_run_records
        if total == 0:
            return 1.0
        return len(self._final) / total

    # ------------------------------------------------------------------
    # Merge machinery
    # ------------------------------------------------------------------
    def _merge_range(self, lo: int, hi: int) -> None:
        """Extract [lo, hi] from every run into the final partition."""
        extracted: List[Record] = []
        for run in self._runs:
            extracted.extend(self._extract_from_run(run, lo, hi))
        self._runs = [run for run in self._runs if run.records > 0]
        for key, value in sorted(extracted, key=lambda r: r[0]):
            self._final.insert(key, value)
        self._note_merged(lo, hi)

    def _extract_from_run(self, run: _SortedRun, lo: int, hi: int) -> List[Record]:
        if not run.block_ids:
            return []
        start = max(0, bisect.bisect_right(run.fence_keys, lo) - 1)
        extracted: List[Record] = []
        block_index = start
        while block_index < len(run.block_ids):
            block_id = run.block_ids[block_index]
            records = list(self.device.read(block_id))
            if records and records[0][0] > hi:
                break
            keep = [(k, v) for k, v in records if not lo <= k <= hi]
            taken = [(k, v) for k, v in records if lo <= k <= hi]
            if taken:
                extracted.extend(taken)
                run.records -= len(taken)
                if keep:
                    self.device.write(
                        block_id, keep, used_bytes=len(keep) * RECORD_BYTES
                    )
                    run.fence_keys[block_index] = keep[0][0]
                    block_index += 1
                else:
                    self.device.free(block_id)
                    run.block_ids.pop(block_index)
                    run.fence_keys.pop(block_index)
                    continue
            else:
                block_index += 1
            if records and records[-1][0] > hi:
                break
        return extracted

    def _write_run(self, records: List[Record]) -> _SortedRun:
        block_ids: List[int] = []
        fences: List[int] = []
        for start in range(0, len(records), self._per_block):
            chunk = records[start : start + self._per_block]
            block_id = self.device.allocate(kind="am-run")
            self.device.write(block_id, chunk, used_bytes=len(chunk) * RECORD_BYTES)
            block_ids.append(block_id)
            fences.append(chunk[0][0])
        return _SortedRun(block_ids=block_ids, fence_keys=fences, records=len(records))

    # ------------------------------------------------------------------
    # Merged-range bookkeeping (disjoint interval set)
    # ------------------------------------------------------------------
    def _range_is_merged(self, lo: int, hi: int) -> bool:
        if not self._runs:
            return True
        for merged_lo, merged_hi in self._merged_ranges:
            if merged_lo <= lo and hi <= merged_hi:
                return True
            if merged_lo > lo:
                break
        return False

    def _note_merged(self, lo: int, hi: int) -> None:
        intervals = self._merged_ranges + [(lo, hi)]
        intervals.sort()
        merged: List[Tuple[int, int]] = []
        for interval in intervals:
            if merged and interval[0] <= merged[-1][1] + 1:
                merged[-1] = (merged[-1][0], max(merged[-1][1], interval[1]))
            else:
                merged.append(interval)
        self._merged_ranges = merged
