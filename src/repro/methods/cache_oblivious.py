"""Cache-oblivious static search tree (van Emde Boas layout).

Section 4 of the paper discusses cache-oblivious access methods: they
remove the memory hierarchy from the design space (performance is
asymptotically optimal for *every* block size without knowing it) but
"achieve that by having a larger constant factor in read performance",
"have a larger memory overhead because they require more pointers", and
"are less tunable".  This module makes those three claims measurable.

The structure is a binary search tree stored in the recursive
**van Emde Boas layout**: the tree of height ``h`` is split into a top
subtree of height ``ceil(h/2)`` and its bottom subtrees, each laid out
contiguously and recursively.  A root-to-leaf path then touches
``O(log_B N)`` blocks for *any* block size B — without the structure
ever being told B.  Each node stores explicit child pointers (the extra
memory overhead the paper notes), and there is no node-size knob to tune
(the reduced tunability).

Updates: values change in place; inserts and deletes go to a small
sorted overflow that merges into a rebuilt tree when it grows past
``rebuild_fraction`` of the data — static layouts pay for mutability
with rebuilds, another facet of their low tunability.

The E15 benchmark compares this layout against a plain sorted array
(binary search: ``O(log2 N/B)`` block touches) and the block-*aware*
B+-Tree across several block sizes.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.storage.device import SimulatedDevice
from repro.storage.layout import POINTER_BYTES, RECORD_BYTES

#: Node footprint: record + two child pointers.
NODE_BYTES = RECORD_BYTES + 2 * POINTER_BYTES


class CacheObliviousTree(AccessMethod):
    """Static BST in van Emde Boas order over the device.

    Parameters
    ----------
    rebuild_fraction:
        Overflow size (relative to the tree) that triggers a rebuild.
    """

    name = "cache-oblivious"
    capabilities = Capabilities(ordered=True, updatable=True)

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        rebuild_fraction: float = 0.25,
    ) -> None:
        super().__init__(device)
        if rebuild_fraction <= 0:
            raise ValueError("rebuild_fraction must be positive")
        self.rebuild_fraction = rebuild_fraction
        self._nodes_per_block = max(1, self.device.block_bytes // NODE_BYTES)
        # The node array, vEB-ordered, sliced across device blocks.
        # nodes[i] = [key, value, left_index, right_index] (-1 = none).
        self._blocks: List[int] = []
        self._node_count = 0
        self._root_index = -1
        # Sorted overflow absorbing inserts; deletions mark tree nodes.
        self._overflow: List[Record] = []
        self._deleted: set = set()

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        records = self._sorted_unique(items)
        self._build(records)
        self._record_count = len(records)

    def get(self, key: int) -> Optional[int]:
        overflow_index = self._overflow_find(key)
        if overflow_index is not None:
            return self._overflow[overflow_index][1]
        if key in self._deleted:
            return None
        node = self._descend(key)
        if node is not None and node[0] == key:
            return node[1]
        return None

    def range_query(self, lo: int, hi: int) -> List[Record]:
        matches: List[Record] = []
        if self._root_index >= 0:
            self._collect(self._root_index, lo, hi, matches)
        for key, value in self._overflow:
            if lo <= key <= hi:
                bisect.insort(matches, (key, value))
        return matches

    def insert(self, key: int, value: int) -> None:
        if self.get(key) is not None:
            raise ValueError(f"duplicate key {key}")
        if key in self._deleted:
            # The key still occupies a tree node under a tombstone;
            # revive that node in place rather than duplicating the key
            # in the overflow.
            position = self._descend_position(key)
            self._deleted.discard(key)
            node_index, node = position
            node[1] = value
            self._write_node(node_index)
        else:
            index = bisect.bisect_left(self._overflow, (key, value))
            self._overflow.insert(index, (key, value))
        self._record_count += 1
        self._maybe_rebuild()

    def update(self, key: int, value: int) -> None:
        overflow_index = self._overflow_find(key)
        if overflow_index is not None:
            self._overflow[overflow_index] = (key, value)
            return
        if key in self._deleted:
            raise KeyError(key)
        position = self._descend_position(key)
        if position is None:
            raise KeyError(key)
        node_index, node = position
        node[1] = value
        self._write_node(node_index)

    def delete(self, key: int) -> None:
        overflow_index = self._overflow_find(key)
        if overflow_index is not None:
            self._overflow.pop(overflow_index)
            self._record_count -= 1
            return
        if key in self._deleted:
            raise KeyError(key)
        node = self._descend(key)
        if node is None or node[0] != key:
            raise KeyError(key)
        self._deleted.add(key)
        self._record_count -= 1
        self._maybe_rebuild()

    # ------------------------------------------------------------------
    def space_bytes(self) -> int:
        aux = len(self._overflow) * RECORD_BYTES + len(self._deleted) * 8
        return self.device.allocated_bytes + aux

    def maintenance(self) -> None:
        """Rebuild when any overflow or tombstones are pending."""
        if self._overflow or self._deleted:
            self.rebuild()

    def rebuild(self) -> None:
        """Fold overflow and deletions into a freshly laid-out tree."""
        records = self._all_records()
        for block_id in self._blocks:
            self.device.free(block_id)
        self._blocks = []
        self._overflow = []
        self._deleted = set()
        self._build(records)

    # ------------------------------------------------------------------
    # Construction: vEB numbering
    # ------------------------------------------------------------------
    def _build(self, records: List[Record]) -> None:
        self._node_count = len(records)
        if not records:
            self._root_index = -1
            return
        # Build the balanced BST shape over the sorted records, then
        # assign vEB positions by recursive height splitting.
        nodes: List[List[int]] = [None] * len(records)  # type: ignore[list-item]
        order: List[int] = []  # BST nodes in vEB visit order (record idx)
        placement: Dict[int, int] = {}  # record index -> vEB position

        def height_of(count: int) -> int:
            height = 0
            while (1 << height) - 1 < count:
                height += 1
            return height

        def bst_root(lo: int, hi: int) -> Optional[int]:
            if lo > hi:
                return None
            return (lo + hi) // 2

        # Recursive vEB placement over index ranges of the sorted array:
        # lay out the top subtree (of half the height) recursively, then
        # each bottom subtree recursively, appending record indexes to
        # ``order``.  Each call returns the ranges hanging below the
        # subtree's leaf level, which become the caller's bottom roots.
        def place(lo: int, hi: int, height: int) -> List[Tuple[int, int]]:
            if lo > hi or height <= 0:
                return []
            if height == 1:
                mid = (lo + hi) // 2
                order.append(mid)
                return [(lo, mid - 1), (mid + 1, hi)]
            top_height = (height + 1) // 2
            bottom_height = height - top_height
            hanging_below = []
            for range_lo, range_hi in place(lo, hi, top_height):
                hanging_below.extend(place(range_lo, range_hi, bottom_height))
            return hanging_below

        place(0, len(records) - 1, height_of(len(records)))
        for position, record_index in enumerate(order):
            placement[record_index] = position

        def link(lo: int, hi: int) -> int:
            if lo > hi:
                return -1
            mid = (lo + hi) // 2
            position = placement[mid]
            key, value = records[mid]
            nodes[position] = [key, value, link(lo, mid - 1), link(mid + 1, hi)]
            return position

        import sys

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, len(records) * 2 + 100))
        try:
            self._root_index = link(0, len(records) - 1)
        finally:
            sys.setrecursionlimit(old_limit)

        # Slice the node array across device blocks.
        for start in range(0, len(nodes), self._nodes_per_block):
            chunk = nodes[start : start + self._nodes_per_block]
            block_id = self.device.allocate(kind="veb")
            self.device.write(block_id, chunk, used_bytes=len(chunk) * NODE_BYTES)
            self._blocks.append(block_id)

    # ------------------------------------------------------------------
    # Search: each node access reads its containing block.
    # ------------------------------------------------------------------
    def _read_node(self, index: int) -> List[int]:
        block = self.device.read(self._blocks[index // self._nodes_per_block])
        return block[index % self._nodes_per_block]

    def _write_node(self, index: int) -> None:
        block_index = index // self._nodes_per_block
        payload = self.device.peek(self._blocks[block_index])
        self.device.write(
            self._blocks[block_index],
            payload,
            used_bytes=len(payload) * NODE_BYTES,
        )

    def _descend(self, key: int) -> Optional[List[int]]:
        position = self._descend_position(key)
        return position[1] if position is not None else None

    def _descend_position(self, key: int) -> Optional[Tuple[int, List[int]]]:
        # Consecutive path nodes falling in the block already in hand are
        # free — that single-block working set is exactly the locality
        # the vEB layout exists to exploit.
        index = self._root_index
        held_block = -1
        payload = None
        while index >= 0:
            block_index = index // self._nodes_per_block
            if block_index != held_block:
                payload = self.device.read(self._blocks[block_index])
                held_block = block_index
            node = payload[index % self._nodes_per_block]
            if key == node[0]:
                return index, node
            index = node[2] if key < node[0] else node[3]
        return None

    def _collect(
        self,
        index: int,
        lo: int,
        hi: int,
        matches: List[Record],
        held: Optional[List[int]] = None,
    ) -> None:
        if held is None:
            held = [-1, None]  # [block index in hand, its payload]
        block_index = index // self._nodes_per_block
        if block_index != held[0]:
            held[1] = self.device.read(self._blocks[block_index])
            held[0] = block_index
        node = held[1][index % self._nodes_per_block]
        key, value, left, right = node
        if left >= 0 and key > lo:
            self._collect(left, lo, hi, matches, held)
        if lo <= key <= hi and key not in self._deleted:
            matches.append((key, value))
        if right >= 0 and key < hi:
            self._collect(right, lo, hi, matches, held)

    # ------------------------------------------------------------------
    def _overflow_find(self, key: int) -> Optional[int]:
        index = bisect.bisect_left(self._overflow, (key, -(1 << 62)))
        if index < len(self._overflow) and self._overflow[index][0] == key:
            return index
        return None

    def _all_records(self) -> List[Record]:
        records: List[Record] = []
        if self._root_index >= 0:
            self._collect(self._root_index, -(1 << 62), 1 << 62, records)
        for key, value in self._overflow:
            bisect.insort(records, (key, value))
        return records

    def _maybe_rebuild(self) -> None:
        churn = len(self._overflow) + len(self._deleted)
        if churn > max(8, self.rebuild_fraction * max(1, self._node_count)):
            self.rebuild()
