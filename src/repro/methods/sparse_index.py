"""Sparse index — the "Sparse Index" point of Figure 1.

A sorted column plus a light-weight secondary index holding one (key,
block) entry per data block (the classic ISAM / clustered-sparse-index
design the paper groups with ZoneMaps and Small Materialized Aggregates).
Compared with a dense B+-Tree it stores a factor-B fewer entries (low
MO); compared with ZoneMaps it keeps the entries sorted, so consultation
is a binary search over index blocks rather than a full synopsis scan.

Inserts spill into per-block overflow chains (ISAM-style), which keeps
update cost low but gradually degrades read cost until ``rebuild()``
reorganizes — a miniature of the adaptive tension Section 5 discusses.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Tuple

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.storage.device import SimulatedDevice
from repro.storage.layout import (
    KEY_BYTES,
    POINTER_BYTES,
    RECORD_BYTES,
    records_per_block,
)

#: Bytes per sparse-index entry: separator key + block pointer.
ENTRY_BYTES = KEY_BYTES + POINTER_BYTES


class SparseIndexColumn(AccessMethod):
    """Sorted data blocks + sparse index + ISAM-style overflow chains."""

    name = "sparse-index"
    capabilities = Capabilities(ordered=True, updatable=True, checks_duplicates=False)

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        rebuild_overflow_ratio: float = 0.5,
    ) -> None:
        super().__init__(device)
        if rebuild_overflow_ratio <= 0:
            raise ValueError("rebuild_overflow_ratio must be positive")
        self._per_block = records_per_block(self.device.block_bytes)
        self._entries_per_block = max(1, self.device.block_bytes // ENTRY_BYTES)
        self.rebuild_overflow_ratio = rebuild_overflow_ratio
        self._data_blocks: List[int] = []
        self._overflow: List[List[int]] = []  # overflow chain per data block
        self._index_keys: List[int] = []  # first key per data block (memory)
        self._index_blocks: List[int] = []  # the same entries, on device
        self._overflow_records = 0

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        records = self._sorted_unique(items)
        self._install(records)
        self._record_count = len(records)

    def get(self, key: int) -> Optional[int]:
        position = self._locate_block(key)
        if position is None:
            return None
        records = self.device.read(self._data_blocks[position])
        index = self._find(records, key)
        if index is not None:
            return records[index][1]
        for overflow_id in self._overflow[position]:
            for record_key, value in self.device.read(overflow_id):
                if record_key == key:
                    return value
        return None

    def range_query(self, lo: int, hi: int) -> List[Record]:
        if not self._data_blocks:
            return []
        start = self._locate_block(lo)
        if start is None:
            start = 0
        matches: List[Record] = []
        for position in range(start, len(self._data_blocks)):
            records = self.device.read(self._data_blocks[position])
            if records and records[0][0] > hi and position > start:
                break
            matches.extend(
                (key, value) for key, value in records if lo <= key <= hi
            )
            for overflow_id in self._overflow[position]:
                matches.extend(
                    (key, value)
                    for key, value in self.device.read(overflow_id)
                    if lo <= key <= hi
                )
        matches.sort(key=lambda record: record[0])
        return matches

    def insert(self, key: int, value: int) -> None:
        if not self._data_blocks:
            self._install([(key, value)])
            self._record_count = 1
            return
        position = self._locate_block(key)
        if position is None:
            position = 0
        records = list(self.device.read(self._data_blocks[position]))
        if len(records) < self._per_block:
            keys = [record_key for record_key, _ in records]
            slot = bisect.bisect_left(keys, key)
            if slot < len(keys) and keys[slot] == key:
                raise ValueError(f"duplicate key {key}")
            records.insert(slot, (key, value))
            self._write_data(position, records)
            if slot == 0:
                self._index_keys[position] = key
                self._rewrite_index()
        else:
            self._append_overflow(position, (key, value))
        self._record_count += 1
        if self._overflow_records > self.rebuild_overflow_ratio * max(
            1, self._record_count
        ):
            self.rebuild()

    def update(self, key: int, value: int) -> None:
        position = self._locate_block(key)
        if position is None:
            raise KeyError(key)
        records = list(self.device.read(self._data_blocks[position]))
        index = self._find(records, key)
        if index is not None:
            records[index] = (key, value)
            self._write_data(position, records)
            return
        for overflow_id in self._overflow[position]:
            chain_records = list(self.device.read(overflow_id))
            for chain_index, (record_key, _) in enumerate(chain_records):
                if record_key == key:
                    chain_records[chain_index] = (key, value)
                    self.device.write(
                        overflow_id,
                        chain_records,
                        used_bytes=len(chain_records) * RECORD_BYTES,
                    )
                    return
        raise KeyError(key)

    def delete(self, key: int) -> None:
        position = self._locate_block(key)
        if position is None:
            raise KeyError(key)
        records = list(self.device.read(self._data_blocks[position]))
        index = self._find(records, key)
        if index is not None:
            records.pop(index)
            self._write_data(position, records)
            self._record_count -= 1
            return
        for overflow_id in self._overflow[position]:
            chain_records = list(self.device.read(overflow_id))
            for chain_index, (record_key, _) in enumerate(chain_records):
                if record_key == key:
                    chain_records.pop(chain_index)
                    self.device.write(
                        overflow_id,
                        chain_records,
                        used_bytes=len(chain_records) * RECORD_BYTES,
                    )
                    self._overflow_records -= 1
                    self._record_count -= 1
                    return
        raise KeyError(key)

    def maintenance(self) -> None:
        """Fold overflow chains back into the primary layout."""
        if self._overflow_records:
            self.rebuild()

    def rebuild(self) -> None:
        """Merge overflow chains back into a clean sorted layout."""
        records: List[Record] = []
        for position, block_id in enumerate(self._data_blocks):
            records.extend(self.device.read(block_id))
            for overflow_id in self._overflow[position]:
                records.extend(self.device.read(overflow_id))
        records.sort(key=lambda record: record[0])
        self._teardown()
        self._install(records)

    # ------------------------------------------------------------------
    @property
    def overflow_records(self) -> int:
        return self._overflow_records

    def index_bytes(self) -> int:
        """Device space occupied by the sparse index blocks."""
        return len(self._index_blocks) * self.device.block_bytes

    # ------------------------------------------------------------------
    # Invariant audit
    # ------------------------------------------------------------------
    def _audit_structure(self) -> List[str]:
        """Stride coverage: separators strictly increase, every record in
        stride ``i`` (data block plus its overflow chain) falls inside
        ``[index_keys[i], index_keys[i+1])`` — stride 0 is unbounded
        below — and the on-device index blocks mirror the in-memory
        entries exactly."""
        violations: List[str] = []
        device = self.device
        if not (
            len(self._data_blocks) == len(self._overflow) == len(self._index_keys)
        ):
            violations.append(
                f"parallel arrays disagree: {len(self._data_blocks)} data "
                f"blocks, {len(self._overflow)} overflow chains, "
                f"{len(self._index_keys)} separators"
            )
            return violations
        if any(
            left >= right
            for left, right in zip(self._index_keys, self._index_keys[1:])
        ):
            violations.append("index separators are not strictly increasing")
        for kind, expected in (
            ("sparse-data", list(self._data_blocks)),
            ("sparse-overflow", [b for chain in self._overflow for b in chain]),
            ("sparse-index", list(self._index_blocks)),
        ):
            if len(set(expected)) != len(expected):
                violations.append(f"{kind} block id referenced twice")
            on_device = {
                block_id
                for block_id in device.iter_block_ids()
                if device.kind_of(block_id) == kind
            }
            if on_device != set(expected):
                violations.append(
                    f"{kind} mismatch: tracked-only "
                    f"{sorted(set(expected) - on_device)}, device-only "
                    f"{sorted(on_device - set(expected))}"
                )
        total = 0
        overflow_total = 0
        last = len(self._data_blocks) - 1
        for position, data_id in enumerate(self._data_blocks):
            lo = None if position == 0 else self._index_keys[position]
            hi = None if position == last else self._index_keys[position + 1]
            stride_blocks = [("data", data_id)] + [
                ("overflow", block_id) for block_id in self._overflow[position]
            ]
            for role, block_id in stride_blocks:
                if not device.is_allocated(block_id):
                    continue
                payload = device.peek(block_id)
                if payload is None:
                    payload = []
                if not isinstance(payload, list):
                    violations.append(
                        f"stride {position}: {role} block {block_id} payload "
                        f"is not a record list"
                    )
                    continue
                if len(payload) > self._per_block:
                    violations.append(
                        f"stride {position}: {role} block {block_id} holds "
                        f"{len(payload)} records, capacity {self._per_block}"
                    )
                declared = device.used_bytes_of(block_id)
                if declared != len(payload) * RECORD_BYTES:
                    violations.append(
                        f"stride {position}: {role} block {block_id} declares "
                        f"{declared}B != {len(payload)} records x {RECORD_BYTES}B"
                    )
                try:
                    keys = [record_key for record_key, _ in payload]
                except (TypeError, ValueError):
                    violations.append(
                        f"stride {position}: {role} block {block_id} malformed"
                    )
                    continue
                if role == "data" and keys != sorted(set(keys)):
                    violations.append(
                        f"stride {position}: data block {block_id} keys "
                        f"are not strictly sorted"
                    )
                for key in keys:
                    if (lo is not None and key < lo) or (
                        hi is not None and key >= hi
                    ):
                        violations.append(
                            f"stride {position}: key {key} outside "
                            f"[{lo}, {hi})"
                        )
                total += len(keys)
                if role == "overflow":
                    overflow_total += len(keys)
        if overflow_total != self._overflow_records:
            violations.append(
                f"overflow chains hold {overflow_total} records, counter "
                f"says {self._overflow_records}"
            )
        if total != self._record_count:
            violations.append(
                f"strides hold {total} records, record count says "
                f"{self._record_count}"
            )
        entries = list(zip(self._index_keys, self._data_blocks))
        for block_index, block_id in enumerate(self._index_blocks):
            if not device.is_allocated(block_id):
                continue
            chunk = entries[
                block_index
                * self._entries_per_block : (block_index + 1)
                * self._entries_per_block
            ]
            payload = device.peek(block_id)
            stored = [tuple(entry) for entry in payload] if payload else []
            if stored != chunk:
                violations.append(
                    f"index block {block_id} is stale: stores {len(stored)} "
                    f"entries, memory says {len(chunk)}"
                )
            declared = device.used_bytes_of(block_id)
            if payload is not None and declared != len(payload) * ENTRY_BYTES:
                violations.append(
                    f"index block {block_id} declares {declared}B != "
                    f"{len(payload)} entries x {ENTRY_BYTES}B"
                )
        return violations

    # ------------------------------------------------------------------
    def _install(self, records: List[Record]) -> None:
        self._data_blocks = []
        self._overflow = []
        self._index_keys = []
        self._overflow_records = 0
        for start in range(0, len(records), self._per_block):
            chunk = records[start : start + self._per_block]
            with self._fresh_block("sparse-data") as block_id:
                self.device.write(
                    block_id, chunk, used_bytes=len(chunk) * RECORD_BYTES
                )
            self._data_blocks.append(block_id)
            self._overflow.append([])
            self._index_keys.append(chunk[0][0])
        self._rewrite_index()

    def _teardown(self) -> None:
        for block_id in self._data_blocks:
            self.device.free(block_id)
        for chain in self._overflow:
            for block_id in chain:
                self.device.free(block_id)
        for block_id in self._index_blocks:
            self.device.free(block_id)
        self._index_blocks = []

    def _rewrite_index(self) -> None:
        """Materialize the sparse entries into device blocks."""
        entries = list(zip(self._index_keys, self._data_blocks))
        needed = max(1, -(-len(entries) // self._entries_per_block)) if entries else 0
        while len(self._index_blocks) < needed:
            self._index_blocks.append(self.device.allocate(kind="sparse-index"))
        while len(self._index_blocks) > needed:
            self.device.free(self._index_blocks.pop())
        for block_index, block_id in enumerate(self._index_blocks):
            chunk = entries[
                block_index
                * self._entries_per_block : (block_index + 1)
                * self._entries_per_block
            ]
            self.device.write(block_id, chunk, used_bytes=len(chunk) * ENTRY_BYTES)

    def _locate_block(self, key: int) -> Optional[int]:
        """Binary search the on-device index for the covering data block."""
        if not self._index_blocks:
            return None
        # Read index blocks along a binary search over their span.
        lo_block, hi_block = 0, len(self._index_blocks) - 1
        while lo_block < hi_block:
            mid = (lo_block + hi_block + 1) // 2
            entries = self.device.read(self._index_blocks[mid])
            if entries and entries[0][0] <= key:
                lo_block = mid
            else:
                hi_block = mid - 1
        entries = self.device.read(self._index_blocks[lo_block])
        keys = [entry_key for entry_key, _ in entries]
        offset = bisect.bisect_right(keys, key) - 1
        position = lo_block * self._entries_per_block + max(0, offset)
        return min(position, len(self._data_blocks) - 1)

    def _write_data(self, position: int, records: List[Record]) -> None:
        self.device.write(
            self._data_blocks[position],
            records,
            used_bytes=len(records) * RECORD_BYTES,
        )

    def _append_overflow(self, position: int, record: Record) -> None:
        chain = self._overflow[position]
        if chain:
            last = chain[-1]
            records = list(self.device.read(last))
            if len(records) < self._per_block:
                records.append(record)
                self.device.write(
                    last, records, used_bytes=len(records) * RECORD_BYTES
                )
                self._overflow_records += 1
                return
        with self._fresh_block("sparse-overflow") as block_id:
            self.device.write(block_id, [record], used_bytes=RECORD_BYTES)
        chain.append(block_id)
        self._overflow_records += 1

    @staticmethod
    def _find(records: List[Record], key: int) -> Optional[int]:
        keys = [record_key for record_key, _ in records]
        index = bisect.bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            return index
        return None
