"""Skip list (Pugh, CACM 1990) — a read-optimized Figure-1 structure.

A probabilistic multi-level linked list with expected O(log N) search.
Nodes live in arena blocks on the device (several nodes per block, as a
slab allocator would lay them out); every pointer chase reads the block
containing the target node, so the measured read cost reflects the
pointer-heavy access pattern that distinguishes skip lists from B-Trees
(more random block touches per search, cheap local inserts).

Randomness is seeded: structures are reproducible run to run.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.obs.spans import spanned
from repro.storage.device import SimulatedDevice
from repro.storage.layout import POINTER_BYTES, RECORD_BYTES

#: A node reference: (arena block id, slot inside the block).
NodeRef = Tuple[int, int]

#: Budgeted node footprint: record + expected tower of pointers.
NODE_BYTES = RECORD_BYTES + 4 * POINTER_BYTES


class _Node:
    __slots__ = ("key", "value", "forwards")

    def __init__(self, key: int, value: int, height: int):
        self.key = key
        self.value = value
        self.forwards: List[Optional[NodeRef]] = [None] * height


class SkipList(AccessMethod):
    """Block-arena skip list.

    Parameters
    ----------
    probability:
        Level-promotion probability (0.5 is Pugh's classic choice).
    max_height:
        Tower-height cap.
    seed:
        Seed for the level generator, for deterministic structure.
    """

    name = "skiplist"
    capabilities = Capabilities(ordered=True, updatable=True)

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        probability: float = 0.5,
        max_height: int = 24,
        seed: int = 1234,
    ) -> None:
        super().__init__(device)
        if not 0.0 < probability < 1.0:
            raise ValueError("probability must be in (0, 1)")
        if max_height < 1:
            raise ValueError("max_height must be positive")
        self.probability = probability
        self.max_height = max_height
        self._rng = random.Random(seed)
        self._nodes_per_block = max(1, self.device.block_bytes // NODE_BYTES)
        # Head tower lives in memory (it is a fixed sentinel); its bytes
        # are charged in space_bytes().
        self._head: List[Optional[NodeRef]] = [None] * max_height
        self._height = 1
        self._arena_blocks: List[int] = []
        self._free_slots: List[NodeRef] = []

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        # Loading in sorted order keeps the expected structure and lets
        # us link levels in one pass.
        for key, value in self._sorted_unique(items):
            self.insert(key, value)
        # insert() bumped the count; nothing else to do.

    def get(self, key: int) -> Optional[int]:
        node = self._find_node(key)
        return node.value if node is not None else None

    def range_query(self, lo: int, hi: int) -> List[Record]:
        matches: List[Record] = []
        ref = self._find_at_least(lo)
        while ref is not None:
            node = self._load(ref)
            if node.key > hi:
                break
            matches.append((node.key, node.value))
            ref = node.forwards[0]
        return matches

    def insert(self, key: int, value: int) -> None:
        update = self._search_path(key)
        successor = update[0][1] if update[0] is not None else self._head[0]
        succ_ref = successor
        if succ_ref is not None:
            succ_node = self._load(succ_ref)
            if succ_node.key == key:
                raise ValueError(f"duplicate key {key}")
        height = self._random_height()
        previous_height = self._height
        if height > self._height:
            self._height = height
        node = _Node(key, value, height)
        ref = self._allocate_node(node)
        touched: Dict[int, None] = {}
        for level in range(height):
            predecessor = update[level] if level < len(update) else None
            if predecessor is None:
                node.forwards[level] = self._head[level]
                self._head[level] = ref
            else:
                pred_ref, _ = predecessor
                pred_node = self._load_quiet(pred_ref)
                node.forwards[level] = pred_node.forwards[level]
                pred_node.forwards[level] = ref
                touched[pred_ref[0]] = None
        touched[ref[0]] = None
        try:
            self._write_arena_blocks(touched.keys())
        except BaseException:
            # Arena payloads are shared objects, so the links above are
            # already visible even though the write never landed: unlink
            # the half-inserted node so the structure matches its
            # pre-insert state before propagating the failure.
            for level in range(height):
                predecessor = update[level] if level < len(update) else None
                if predecessor is None:
                    if self._head[level] == ref:
                        self._head[level] = node.forwards[level]
                else:
                    pred_node = self._load_quiet(predecessor[0])
                    if pred_node.forwards[level] == ref:
                        pred_node.forwards[level] = node.forwards[level]
            self._free_node(ref)
            self._height = previous_height
            raise
        self._record_count += 1

    def update(self, key: int, value: int) -> None:
        node, ref = self._find_node_ref(key)
        if node is None:
            raise KeyError(key)
        node.value = value
        self._write_arena_blocks([ref[0]])

    def delete(self, key: int) -> None:
        update = self._search_path(key)
        target = update[0][1] if update[0] is not None else self._head[0]
        if target is None:
            raise KeyError(key)
        node = self._load(target)
        if node.key != key:
            raise KeyError(key)
        touched: Dict[int, None] = {}
        for level in range(len(node.forwards)):
            predecessor = update[level] if level < len(update) else None
            if predecessor is None:
                if self._head[level] == target:
                    self._head[level] = node.forwards[level]
            else:
                pred_ref, _ = predecessor
                pred_node = self._load_quiet(pred_ref)
                if pred_node.forwards[level] == target:
                    pred_node.forwards[level] = node.forwards[level]
                    touched[pred_ref[0]] = None
        self._free_node(target)
        touched[target[0]] = None
        self._write_arena_blocks(touched.keys())
        self._record_count -= 1

    # ------------------------------------------------------------------
    def space_bytes(self) -> int:
        head_bytes = self.max_height * POINTER_BYTES
        return self.device.allocated_bytes + head_bytes

    # ------------------------------------------------------------------
    # Invariant audit
    # ------------------------------------------------------------------
    def _audit_structure(self) -> List[str]:
        """Level monotonicity: the level-0 chain is strictly key-sorted
        and holds exactly the record count; every higher level is exactly
        the subsequence of level-0 nodes whose towers reach it; arena
        slots and the free list partition every block's capacity."""
        violations: List[str] = []
        device = self.device
        if len(set(self._arena_blocks)) != len(self._arena_blocks):
            violations.append("arena block id tracked twice")
        on_device = {
            block_id
            for block_id in device.iter_block_ids()
            if device.kind_of(block_id) == "skiplist-arena"
        }
        if on_device != set(self._arena_blocks):
            violations.append(
                f"arena mismatch: tracked-only "
                f"{sorted(set(self._arena_blocks) - on_device)}, device-only "
                f"{sorted(on_device - set(self._arena_blocks))}"
            )
        if not 1 <= self._height <= self.max_height:
            violations.append(
                f"height {self._height} outside [1, {self.max_height}]"
            )
        for level in range(self._height, self.max_height):
            if self._head[level] is not None:
                violations.append(
                    f"head links at level {level}, above height {self._height}"
                )

        stored: Dict[NodeRef, _Node] = {}
        for block_id in self._arena_blocks:
            if block_id not in on_device:
                continue
            payload = device.peek(block_id)
            if payload is None:
                payload = {}
            if not isinstance(payload, dict):
                violations.append(
                    f"arena block {block_id} payload is not a slot map"
                )
                continue
            if len(payload) > self._nodes_per_block:
                violations.append(
                    f"arena block {block_id} holds {len(payload)} nodes, "
                    f"capacity {self._nodes_per_block}"
                )
            declared = device.used_bytes_of(block_id)
            if declared != len(payload) * NODE_BYTES:
                violations.append(
                    f"arena block {block_id} declares {declared}B != "
                    f"{len(payload)} nodes x {NODE_BYTES}B"
                )
            for slot, node in payload.items():
                if not isinstance(node, _Node):
                    violations.append(
                        f"arena block {block_id} slot {slot} holds {node!r}"
                    )
                    continue
                if not 1 <= len(node.forwards) <= self.max_height:
                    violations.append(
                        f"node at {(block_id, slot)} has tower height "
                        f"{len(node.forwards)}"
                    )
                stored[(block_id, slot)] = node

        free_seen: set = set()
        for ref in self._free_slots:
            if ref in free_seen:
                violations.append(f"free slot {ref} listed twice")
            free_seen.add(ref)
            if ref in stored:
                violations.append(f"free slot {ref} is occupied")
            if ref[0] not in set(self._arena_blocks):
                violations.append(
                    f"free slot {ref} points outside the arena"
                )

        # Level-0 chain: strictly increasing keys covering every node.
        chain0: List[NodeRef] = []
        seen: set = set()
        ref = self._head[0]
        previous_key: Optional[int] = None
        while ref is not None:
            if ref in seen:
                violations.append(f"cycle in level-0 chain at {ref}")
                break
            node = stored.get(ref)
            if node is None:
                violations.append(f"level 0 links to missing node {ref}")
                break
            seen.add(ref)
            if previous_key is not None and node.key <= previous_key:
                violations.append(
                    f"level-0 keys not strictly increasing at {node.key}"
                )
            previous_key = node.key
            chain0.append(ref)
            ref = node.forwards[0] if node.forwards else None
        unreachable = set(stored) - seen
        if unreachable:
            violations.append(
                f"{len(unreachable)} stored nodes unreachable at level 0: "
                f"{sorted(unreachable)[:5]}"
            )
        if len(chain0) != self._record_count:
            violations.append(
                f"level 0 holds {len(chain0)} nodes, record count says "
                f"{self._record_count}"
            )

        # Each higher level must be exactly the level-0 subsequence of
        # nodes tall enough to appear there.
        for level in range(1, self._height):
            expected = [
                chain_ref
                for chain_ref in chain0
                if len(stored[chain_ref].forwards) > level
            ]
            actual: List[NodeRef] = []
            level_seen: set = set()
            ref = self._head[level]
            broken = False
            while ref is not None:
                if ref in level_seen:
                    violations.append(f"cycle in level-{level} chain at {ref}")
                    broken = True
                    break
                level_seen.add(ref)
                node = stored.get(ref)
                if node is None:
                    violations.append(
                        f"level {level} links to missing node {ref}"
                    )
                    broken = True
                    break
                actual.append(ref)
                ref = (
                    node.forwards[level]
                    if level < len(node.forwards)
                    else None
                )
            if not broken and actual != expected:
                violations.append(
                    f"level {level} chain has {len(actual)} nodes, towers "
                    f"say {len(expected)}"
                )
        return violations

    # ------------------------------------------------------------------
    # Search machinery
    # ------------------------------------------------------------------
    @spanned("skiplist.descent")
    def _search_path(self, key: int) -> List[Optional[Tuple[NodeRef, Optional[NodeRef]]]]:
        """Per level: (predecessor ref, its successor ref), or None when
        the head is the predecessor at that level.

        ``update[level] is None`` => the first node at that level is
        >= key (or the level is empty); otherwise update[level][0] is the
        last node with key < ``key`` at that level.
        """
        update: List[Optional[Tuple[NodeRef, Optional[NodeRef]]]] = [None] * self._height
        predecessor: Optional[NodeRef] = None
        for level in range(self._height - 1, -1, -1):
            current = (
                self._load_quiet(predecessor).forwards[level]
                if predecessor is not None
                else self._head[level]
            )
            while current is not None:
                node = self._load(current)
                if node.key < key:
                    predecessor = current
                    current = node.forwards[level]
                else:
                    break
            if predecessor is not None:
                succ = self._load_quiet(predecessor).forwards[level]
                update[level] = (predecessor, succ)
        # Normalize: update[0] describes the insertion point at level 0.
        result: List[Optional[Tuple[NodeRef, Optional[NodeRef]]]] = []
        for level in range(self._height):
            entry = update[level]
            if entry is None:
                result.append(None)
            else:
                result.append(entry)
        return result

    def _find_node(self, key: int) -> Optional[_Node]:
        node, _ = self._find_node_ref(key)
        return node

    def _find_node_ref(self, key: int):
        ref = self._find_at_least(key)
        if ref is None:
            return None, None
        node = self._load(ref)
        if node.key == key:
            return node, ref
        return None, None

    @spanned("skiplist.descent")
    def _find_at_least(self, key: int) -> Optional[NodeRef]:
        """Ref of the first node with key >= ``key``."""
        predecessor: Optional[NodeRef] = None
        for level in range(self._height - 1, -1, -1):
            current = (
                self._load_quiet(predecessor).forwards[level]
                if predecessor is not None
                else self._head[level]
            )
            while current is not None:
                node = self._load(current)
                if node.key < key:
                    predecessor = current
                    current = node.forwards[level]
                else:
                    break
        if predecessor is None:
            return self._head[0]
        return self._load_quiet(predecessor).forwards[0]

    # ------------------------------------------------------------------
    # Arena allocation
    # ------------------------------------------------------------------
    def _allocate_node(self, node: _Node) -> NodeRef:
        if self._free_slots:
            block_id, slot = self._free_slots.pop()
            payload = self.device.peek(block_id)
            payload[slot] = node
            return (block_id, slot)
        if self._arena_blocks:
            last = self._arena_blocks[-1]
            payload = self.device.peek(last)
            if len(payload) < self._nodes_per_block:
                slot = self._next_slot(payload)
                payload[slot] = node
                return (last, slot)
        with self._fresh_block("skiplist-arena") as block_id:
            self.device.write(block_id, {}, used_bytes=0)
        self._arena_blocks.append(block_id)
        payload = self.device.peek(block_id)
        payload[0] = node
        return (block_id, 0)

    @staticmethod
    def _next_slot(payload: Dict[int, _Node]) -> int:
        slot = 0
        while slot in payload:
            slot += 1
        return slot

    def _free_node(self, ref: NodeRef) -> None:
        block_id, slot = ref
        payload = self.device.peek(block_id)
        payload.pop(slot, None)
        self._free_slots.append(ref)

    def _load(self, ref: NodeRef) -> _Node:
        """Read the arena block holding ``ref`` and return the node."""
        block_id, slot = ref
        payload = self.device.read(block_id)
        return payload[slot]

    def _load_quiet(self, ref: NodeRef) -> _Node:
        """Fetch a node already read on this path (no extra I/O charged).

        Used only for nodes the current operation has just traversed —
        they would sit in the operation's working set on a real system.
        """
        block_id, slot = ref
        return self.device.peek(block_id)[slot]

    @spanned("skiplist.relink")
    def _write_arena_blocks(self, block_ids) -> None:
        for block_id in block_ids:
            payload = self.device.peek(block_id)
            self.device.write(
                block_id, payload, used_bytes=len(payload) * NODE_BYTES
            )

    def _random_height(self) -> int:
        height = 1
        while height < self.max_height and self._rng.random() < self.probability:
            height += 1
        return height
