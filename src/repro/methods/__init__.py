"""Access-method implementations — one module per paper-named family.

Importing this package registers every structure in the central registry
(:mod:`repro.core.registry`), so ``create_method(name)`` works for all of
them.  See DESIGN.md Section 3.3 for the inventory and each structure's
place in the paper's Figure 1.
"""

from repro.core.registry import register_method
from repro.core.tuner import TunableAccessMethod
from repro.methods.adaptive_merging import AdaptiveMergingColumn
from repro.methods.approximate_index import ApproximateTreeIndex
from repro.methods.bitmap import BitmapIndex, BitVector, WAHBitVector
from repro.methods.btree import BPlusTree
from repro.methods.cache_oblivious import CacheObliviousTree
from repro.methods.cracking import CrackedColumn
from repro.methods.extremes import AppendOnlyLog, DenseArray, MagicArray
from repro.methods.hashindex import HashIndex
from repro.methods.indexed_log import IndexedLog
from repro.methods.lsm import LSMTree
from repro.methods.masm import MaSMColumn
from repro.methods.mirrors import FracturedMirrors
from repro.methods.morphing import MorphingMethod
from repro.methods.pbt import PartitionedBTree
from repro.methods.pdt import PositionalDeltaColumn
from repro.methods.secondary import IndexedHeap
from repro.methods.silt import SILTStore
from repro.methods.skiplist import SkipList
from repro.methods.sorted_column import SortedColumn
from repro.methods.sparse_index import SparseIndexColumn
from repro.methods.trie import RadixTrie
from repro.methods.unsorted_column import UnsortedColumn
from repro.methods.zonemap import ZoneMapColumn

#: Every registrable structure (MagicArray is set-valued and excluded —
#: it is driven directly by the Prop-1 benchmark).
_REGISTERED = (
    AdaptiveMergingColumn,
    AppendOnlyLog,
    ApproximateTreeIndex,
    BitmapIndex,
    BPlusTree,
    CacheObliviousTree,
    CrackedColumn,
    DenseArray,
    FracturedMirrors,
    HashIndex,
    IndexedHeap,
    IndexedLog,
    LSMTree,
    MorphingMethod,
    MaSMColumn,
    PartitionedBTree,
    PositionalDeltaColumn,
    RadixTrie,
    SILTStore,
    SkipList,
    SortedColumn,
    SparseIndexColumn,
    TunableAccessMethod,
    UnsortedColumn,
    ZoneMapColumn,
)

for _cls in _REGISTERED:
    register_method(_cls.name, _cls)

__all__ = [
    "AdaptiveMergingColumn",
    "AppendOnlyLog",
    "ApproximateTreeIndex",
    "BPlusTree",
    "BitVector",
    "CacheObliviousTree",
    "BitmapIndex",
    "CrackedColumn",
    "DenseArray",
    "FracturedMirrors",
    "HashIndex",
    "IndexedHeap",
    "IndexedLog",
    "LSMTree",
    "MorphingMethod",
    "MaSMColumn",
    "MagicArray",
    "PartitionedBTree",
    "PositionalDeltaColumn",
    "RadixTrie",
    "SILTStore",
    "SkipList",
    "SortedColumn",
    "SparseIndexColumn",
    "UnsortedColumn",
    "WAHBitVector",
    "ZoneMapColumn",
]
