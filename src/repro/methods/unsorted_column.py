"""Unsorted column (heap file) — the last row of the paper's Table 1.

The base data in insertion order, densely packed into blocks, with no
auxiliary structure at all.  Costs per Table 1:

* bulk creation O(1) extra work (data is written once, as-is),
* index size O(1) (there is no index),
* point query O(N/B/2) expected (scan until found),
* range query O(N/B) (full scan; output is unordered on disk),
* insert O(1) (append), update/delete O(N/B/2) search + O(1) write.

Deletes fill the hole with the globally last record so blocks stay dense.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.obs.spans import spanned
from repro.storage.device import SimulatedDevice
from repro.storage.layout import RECORD_BYTES, records_per_block


class UnsortedColumn(AccessMethod):
    """Heap file over the simulated device."""

    name = "unsorted-column"
    capabilities = Capabilities(ordered=False, updatable=True, checks_duplicates=False)

    def __init__(self, device: Optional[SimulatedDevice] = None) -> None:
        super().__init__(device)
        self._extent: List[int] = []  # block ids, in file order
        self._per_block = records_per_block(self.device.block_bytes)
        self._tail_count = 0  # records in the last block

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        batch: List[Record] = []
        seen = 0
        for record in items:
            batch.append(record)
            seen += 1
            if len(batch) == self._per_block:
                self._append_block(batch)
                batch = []
        if batch:
            self._append_block(batch)
        self._record_count = seen
        self._tail_count = len(batch) if batch else (self._per_block if seen else 0)

    def get(self, key: int) -> Optional[int]:
        location = self._locate(key)
        if location is None:
            return None
        _block_id, index, records = location
        return records[index][1]

    def _get_many(self, keys: Iterable[int]) -> List[Optional[int]]:
        """Batched scans: the linear walk of :meth:`_locate` with
        dispatch and span plumbing hoisted — blocks are read in the
        identical file order."""
        extent = self._extent
        read = self.device.read
        out: List[Optional[int]] = []
        append = out.append
        for key in keys:
            result = None
            found = False
            for block_id in extent:
                for record_key, value in read(block_id):
                    if record_key == key:
                        result = value
                        found = True
                        break
                if found:
                    break
            append(result)
        return out

    def range_query(self, lo: int, hi: int) -> List[Record]:
        matches: List[Record] = []
        for block_id in self._extent:
            records = self.device.read(block_id)
            matches.extend(
                (key, value) for key, value in records if lo <= key <= hi
            )
        matches.sort(key=lambda record: record[0])
        return matches

    def insert(self, key: int, value: int) -> None:
        self._append_record(key, value)
        self._record_count += 1

    def _put_many(self, items: Iterable[Record]) -> None:
        """Batched tail appends: :meth:`_append_record` with dispatch and
        span plumbing hoisted — one tail-block rewrite (or fresh-block
        write) per record, exactly as per-op."""
        extent = self._extent
        read = self.device.read
        per_block = self._per_block
        for key, value in items:
            if not extent or self._tail_count == per_block:
                self._append_block([(key, value)])
                self._tail_count = 1
            else:
                tail_id = extent[-1]
                records = list(read(tail_id))
                records.append((key, value))
                self._write_block(tail_id, records)
                self._tail_count += 1
            self._record_count += 1

    @spanned("unsorted.rewrite")
    def _append_record(self, key: int, value: int) -> None:
        """Tail append: rewrite the last block or open a fresh one."""
        if not self._extent or self._tail_count == self._per_block:
            self._append_block([(key, value)])
            self._tail_count = 1
        else:
            tail_id = self._extent[-1]
            records = list(self.device.read(tail_id))
            records.append((key, value))
            self._write_block(tail_id, records)
            self._tail_count += 1

    def update(self, key: int, value: int) -> None:
        location = self._locate(key)
        if location is None:
            raise KeyError(key)
        block_id, index, records = location
        records[index] = (key, value)
        self._write_block(block_id, records)

    def delete(self, key: int) -> None:
        location = self._locate(key)
        if location is None:
            raise KeyError(key)
        block_id, index, records = location
        self._fill_hole(block_id, index, records)
        self._record_count -= 1

    @spanned("unsorted.delete_compact")
    def _fill_hole(self, block_id: int, index: int, records: List[Record]) -> None:
        """Keep the heap dense after a delete at (block_id, index)."""
        tail_id = self._extent[-1]
        if block_id == tail_id:
            records.pop(index)
            if records:
                self._write_block(block_id, records)
        else:
            # Move the globally-last record into the hole to stay dense.
            tail_records = list(self.device.read(tail_id))
            records[index] = tail_records.pop()
            self._write_block(block_id, records)
            if tail_records:
                self._write_block(tail_id, tail_records)
        self._tail_count -= 1
        if self._tail_count == 0 and self._extent:
            # The tail just emptied: free it without writing the empty
            # payload first — free() retires the stale occupancy, and the
            # extra write would charge a spurious UO block write.
            self.device.free(self._extent.pop())
            self._tail_count = self._per_block if self._extent else 0

    # ------------------------------------------------------------------
    @spanned("unsorted.search")
    def _locate(self, key: int) -> Optional[Tuple[int, int, List[Record]]]:
        """Find ``key``: (block id, index in block, block's records)."""
        for block_id in self._extent:
            records = list(self.device.read(block_id))
            for index, (record_key, _) in enumerate(records):
                if record_key == key:
                    return block_id, index, records
        return None

    def _append_block(self, records: List[Record]) -> None:
        with self._fresh_block("heap") as block_id:
            self._write_block(block_id, records)
        self._extent.append(block_id)

    def _write_block(self, block_id: int, records: List[Record]) -> None:
        self.device.write(block_id, records, used_bytes=len(records) * RECORD_BYTES)

    # ------------------------------------------------------------------
    # Invariant audit
    # ------------------------------------------------------------------
    def _audit_structure(self) -> List[str]:
        """Heap density: every block full except the tail, which holds
        exactly ``_tail_count`` records; counts and occupancy agree."""
        violations: List[str] = []
        device = self.device
        extent = set(self._extent)
        if len(extent) != len(self._extent):
            violations.append("extent lists a block id more than once")
        on_device = {
            block_id
            for block_id in device.iter_block_ids()
            if device.kind_of(block_id) == "heap"
        }
        if on_device != extent:
            violations.append(
                f"extent/device mismatch: extent-only "
                f"{sorted(extent - on_device)}, device-only "
                f"{sorted(on_device - extent)}"
            )
        if not self._extent and self._tail_count:
            violations.append(f"empty extent but tail count {self._tail_count}")
        total = 0
        last = len(self._extent) - 1
        for position, block_id in enumerate(self._extent):
            if block_id not in on_device:
                continue
            payload = device.peek(block_id)
            if not isinstance(payload, list):
                violations.append(
                    f"block {block_id}: payload {type(payload).__name__} "
                    f"is not a record list"
                )
                continue
            expected = self._tail_count if position == last else self._per_block
            if len(payload) != expected:
                violations.append(
                    f"block {block_id}: holds {len(payload)} records, "
                    f"heap density requires {expected}"
                )
            declared = device.used_bytes_of(block_id)
            if declared != len(payload) * RECORD_BYTES:
                violations.append(
                    f"block {block_id}: declared {declared}B != "
                    f"{len(payload)} records x {RECORD_BYTES}B"
                )
            total += len(payload)
        if total != self._record_count:
            violations.append(
                f"extent holds {total} records, record count says "
                f"{self._record_count}"
            )
        return violations
