"""Approximate tree index (BF-Tree-style) with updatable filters.

Section 5's second RUM-aware design: "approximate (tree) indexing that
supports updates with low read performance overhead, by absorbing them
in updatable probabilistic data structures (like quotient filters)".

The structure partitions the sorted base data into fixed-size ranges and
keeps, per partition, only (a) the key bounds and (b) a quotient filter
of the partition's keys — a fraction of a dense index's size.  A point
lookup consults bounds (memory) and the filter (one block read), then
scans only partitions whose filter fires.  Because quotient filters
support deletion, inserts and deletes maintain the filters in place —
no rebuild, unlike Bloom-based designs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.filters.quotient import QuotientFilter
from repro.storage.device import SimulatedDevice
from repro.storage.layout import RECORD_BYTES, records_per_block


@dataclass
class _Partition:
    block_ids: List[int]
    min_key: int
    max_key: int
    records: int
    filter: QuotientFilter
    filter_block: int


class ApproximateTreeIndex(AccessMethod):
    """Range partitions + per-partition quotient filters."""

    name = "approximate-index"
    capabilities = Capabilities(ordered=True, updatable=True)

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        partition_records: int = 1024,
        remainder_bits: int = 8,
    ) -> None:
        super().__init__(device)
        if partition_records < 1:
            raise ValueError("partition_records must be positive")
        self.partition_records = partition_records
        self.remainder_bits = remainder_bits
        self._per_block = records_per_block(self.device.block_bytes)
        self._partitions: List[_Partition] = []

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        records = self._sorted_unique(items)
        for start in range(0, len(records), self.partition_records):
            self._partitions.append(
                self._build_partition(records[start : start + self.partition_records])
            )
        self._record_count = len(records)

    def get(self, key: int) -> Optional[int]:
        for partition in self._candidates(key):
            # Consult the filter: one block read; negative => skip the scan.
            self.device.read(partition.filter_block)
            if not partition.filter.may_contain(key):
                continue
            for block_id in partition.block_ids:
                for record_key, value in self.device.read(block_id):
                    if record_key == key:
                        return value
        return None

    def range_query(self, lo: int, hi: int) -> List[Record]:
        matches: List[Record] = []
        for partition in self._partitions:
            if partition.records == 0 or hi < partition.min_key or lo > partition.max_key:
                continue
            for block_id in partition.block_ids:
                matches.extend(
                    (key, value)
                    for key, value in self.device.read(block_id)
                    if lo <= key <= hi
                )
        matches.sort(key=lambda record: record[0])
        return matches

    def insert(self, key: int, value: int) -> None:
        partition = self._partition_for(key)
        if partition is None:
            partition = self._build_partition([(key, value)])
            self._insert_partition_sorted(partition)
        else:
            records = self._read_partition(partition)
            keys = [record_key for record_key, _ in records]
            slot = bisect.bisect_left(keys, key)
            if slot < len(keys) and keys[slot] == key:
                raise ValueError(f"duplicate key {key}")
            records.insert(slot, (key, value))
            self._rewrite_partition(partition, records)
            self._filter_add(partition, key)
        self._record_count += 1

    def update(self, key: int, value: int) -> None:
        for partition in self._candidates(key):
            records = self._read_partition(partition)
            keys = [record_key for record_key, _ in records]
            slot = bisect.bisect_left(keys, key)
            if slot < len(keys) and keys[slot] == key:
                records[slot] = (key, value)
                self._rewrite_partition(partition, records, refresh_filter=False)
                return
        raise KeyError(key)

    def delete(self, key: int) -> None:
        for partition in self._candidates(key):
            records = self._read_partition(partition)
            keys = [record_key for record_key, _ in records]
            slot = bisect.bisect_left(keys, key)
            if slot < len(keys) and keys[slot] == key:
                records.pop(slot)
                self._rewrite_partition(partition, records)
                partition.filter.remove(key)
                self._write_filter_block(partition)
                self._record_count -= 1
                return
        raise KeyError(key)

    # ------------------------------------------------------------------
    def filter_bytes(self) -> int:
        """Space occupied by all quotient filters."""
        return sum(p.filter.size_bytes for p in self._partitions)

    @property
    def partitions(self) -> int:
        return len(self._partitions)

    # ------------------------------------------------------------------
    def _build_partition(self, records: List[Record]) -> _Partition:
        quotient_bits = 1
        while (1 << quotient_bits) < 2 * max(1, self.partition_records):
            quotient_bits += 1
        qfilter = QuotientFilter(
            quotient_bits=quotient_bits, remainder_bits=self.remainder_bits
        )
        block_ids: List[int] = []
        for start in range(0, len(records), self._per_block):
            chunk = records[start : start + self._per_block]
            block_id = self.device.allocate(kind="approx-data")
            self.device.write(block_id, chunk, used_bytes=len(chunk) * RECORD_BYTES)
            block_ids.append(block_id)
        for key, _ in records:
            qfilter.add(key)
        partition = _Partition(
            block_ids=block_ids,
            min_key=records[0][0] if records else 0,
            max_key=records[-1][0] if records else -1,
            records=len(records),
            filter=qfilter,
            filter_block=self.device.allocate(kind="approx-filter"),
        )
        self._write_filter_block(partition)
        return partition

    def _write_filter_block(self, partition: _Partition) -> None:
        self.device.write(
            partition.filter_block,
            ("quotient-filter", partition.filter.items),
            used_bytes=min(partition.filter.size_bytes, self.device.block_bytes),
        )

    def _read_partition(self, partition: _Partition) -> List[Record]:
        records: List[Record] = []
        for block_id in partition.block_ids:
            records.extend(self.device.read(block_id))
        return records

    def _rewrite_partition(
        self,
        partition: _Partition,
        records: List[Record],
        refresh_filter: bool = False,
    ) -> None:
        needed = max(1, -(-len(records) // self._per_block)) if records else 0
        while len(partition.block_ids) < needed:
            partition.block_ids.append(self.device.allocate(kind="approx-data"))
        while len(partition.block_ids) > needed:
            self.device.free(partition.block_ids.pop())
        for index, block_id in enumerate(partition.block_ids):
            chunk = records[index * self._per_block : (index + 1) * self._per_block]
            self.device.write(block_id, chunk, used_bytes=len(chunk) * RECORD_BYTES)
        partition.records = len(records)
        if records:
            partition.min_key = records[0][0]
            partition.max_key = records[-1][0]
        else:
            partition.min_key, partition.max_key = 0, -1

    def _filter_add(self, partition: _Partition, key: int) -> None:
        try:
            partition.filter.add(key)
        except OverflowError:
            # Rebuild the filter one size up from the partition's keys.
            records = self._read_partition(partition)
            rebuilt = QuotientFilter(
                quotient_bits=min(30, partition.filter.quotient_bits + 1),
                remainder_bits=self.remainder_bits,
            )
            for record_key, _ in records:
                rebuilt.add(record_key)
            partition.filter = rebuilt
        self._write_filter_block(partition)

    def _partition_for(self, key: int) -> Optional[_Partition]:
        """The partition whose range should hold ``key`` (bounds-based)."""
        if not self._partitions:
            return None
        mins = [p.min_key for p in self._partitions]
        index = bisect.bisect_right(mins, key) - 1
        if index < 0:
            index = 0
        return self._partitions[index]

    def _insert_partition_sorted(self, partition: _Partition) -> None:
        mins = [p.min_key for p in self._partitions]
        index = bisect.bisect_right(mins, partition.min_key)
        self._partitions.insert(index, partition)

    def _candidates(self, key: int) -> List[_Partition]:
        return [
            partition
            for partition in self._partitions
            if partition.records and partition.min_key <= key <= partition.max_key
        ]