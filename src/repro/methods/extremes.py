"""The three extreme access methods of the paper's Propositions 1-3.

Section 2 grounds the RUM Conjecture with three deliberately impractical
designs, each achieving the theoretical minimum (ratio 1.0) for exactly
one overhead.  All three operate on devices whose block size equals one
record — the paper's model of "blocks, each one holding a value" — so the
measured ratios are exact, not inflated by block granularity:

* :class:`MagicArray` (Prop 1): value-addressed storage, min RO = 1.0,
  at the price of UO = 2.0 for value changes and unbounded MO.
* :class:`AppendOnlyLog` (Prop 2): every change is an append, min
  UO = 1.0, while RO and MO grow without bound as updates accumulate.
* :class:`DenseArray` (Prop 3): no auxiliary data at all, min MO = 1.0,
  with RO = O(N) scans and optimal in-place UO = 1.0.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.storage.device import SimulatedDevice
from repro.storage.layout import RECORD_BYTES


def record_grain_device(name: str) -> SimulatedDevice:
    """A device whose access granularity is exactly one record.

    This is the paper's Section-2 cost model: reading a value reads
    exactly that value, so amplification ratios come out as the clean
    constants of Props 1-3.
    """
    return SimulatedDevice(block_bytes=RECORD_BYTES, name=name)


class MagicArray:
    """Prop 1: the read-optimal access method (``blkid = value``).

    Stores a *set of integers*; each value occupies the block whose id
    equals the value, so a point lookup reads exactly the data it wants:
    RO = 1.0.  Consequences measured by the Prop-1 benchmark:

    * changing a value writes two blocks (empty the old, fill the new):
      UO = 2.0,
    * the array is as large as the largest value ever stored, regardless
      of how few values are live: MO is unbounded.

    The domain grows lazily: blocks are allocated up to the maximum value
    seen, empty blocks holding a ``None`` sentinel.
    """

    name = "magic-array"

    def __init__(self, device: Optional[SimulatedDevice] = None) -> None:
        self.device = device if device is not None else record_grain_device("magic")
        if self.device.block_bytes != RECORD_BYTES:
            raise ValueError("MagicArray requires a record-granularity device")
        self._allocated_through = -1  # highest block id allocated
        self._count = 0

    # ------------------------------------------------------------------
    def contains(self, value: int) -> bool:
        """Point query: one block read, always."""
        if value < 0:
            raise ValueError("MagicArray stores non-negative integers")
        if value > self._allocated_through:
            return False
        return self.device.read(value) is not None

    def insert(self, value: int) -> None:
        """Insert: one block write (after growing the domain if needed)."""
        if value < 0:
            raise ValueError("MagicArray stores non-negative integers")
        self._grow_to(value)
        self.device.write(value, value, used_bytes=RECORD_BYTES)
        self._count += 1

    def delete(self, value: int) -> None:
        """Delete: one block write (emptying the slot)."""
        if not self.contains_quiet(value):
            raise KeyError(value)
        self.device.write(value, None, used_bytes=0)
        self._count -= 1

    def change(self, old_value: int, new_value: int) -> None:
        """Logical update = move a value: exactly two block writes.

        This is the operation Prop 1 charges at UO = 2.0.
        """
        if not self.contains_quiet(old_value):
            raise KeyError(old_value)
        self._grow_to(new_value)
        self.device.write(old_value, None, used_bytes=0)
        self.device.write(new_value, new_value, used_bytes=RECORD_BYTES)

    # ------------------------------------------------------------------
    def contains_quiet(self, value: int) -> bool:
        """Presence check without charging I/O (for precondition checks)."""
        if value < 0 or value > self._allocated_through:
            return False
        return self.device.peek(value) is not None

    def _grow_to(self, value: int) -> None:
        while self._allocated_through < value:
            block_id = self.device.allocate(kind="magic")
            self._allocated_through = block_id

    @property
    def live_values(self) -> int:
        return self._count

    def base_bytes(self) -> int:
        """Logical size of the live values."""
        return self._count * RECORD_BYTES

    def space_bytes(self) -> int:
        """Total allocated domain, live or not."""
        return self.device.allocated_bytes

    def memory_overhead(self) -> float:
        """MO: allocated domain over live data (unbounded as values grow)."""
        base = self.base_bytes()
        if base == 0:
            return float("inf") if self.space_bytes() else 1.0
        return self.space_bytes() / base


class AppendOnlyLog(AccessMethod):
    """Prop 2: the update-optimal access method (an ever-growing log).

    Every insert, update and delete appends exactly one record — UO is
    the theoretical minimum, 1.0.  Reads scan the log backwards so the
    newest version of a key wins; as updates accumulate, both the scan
    cost (RO) and the log size (MO) grow without bound, exactly as
    Prop 2 states.  A tombstone value marks deletion.
    """

    name = "append-log"
    capabilities = Capabilities(ordered=True, updatable=True)

    from repro.core.sentinels import TOMBSTONE as _TOMBSTONE

    def __init__(self, device: Optional[SimulatedDevice] = None) -> None:
        super().__init__(device if device is not None else record_grain_device("log"))
        self._log: List[int] = []  # block ids, oldest first
        self._live_keys: Set[int] = set()

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        for key, value in items:
            self._append(key, value)
            self._live_keys.add(key)
        self._record_count = len(self._live_keys)

    def get(self, key: int) -> Optional[int]:
        for block_id in reversed(self._log):
            entry = self.device.read(block_id)
            entry_key, entry_value = entry
            if entry_key == key:
                return None if entry_value is self._TOMBSTONE else entry_value
        return None

    def range_query(self, lo: int, hi: int) -> List[Record]:
        # Scan the whole log newest-first, keeping the first (newest)
        # version of each key in range.
        newest = {}
        for block_id in reversed(self._log):
            entry_key, entry_value = self.device.read(block_id)
            if lo <= entry_key <= hi and entry_key not in newest:
                newest[entry_key] = entry_value
        return sorted(
            (key, value)
            for key, value in newest.items()
            if value is not self._TOMBSTONE
        )

    def insert(self, key: int, value: int) -> None:
        if key in self._live_keys:
            raise ValueError(f"duplicate key {key}")
        self._append(key, value)
        self._live_keys.add(key)
        self._record_count += 1

    def update(self, key: int, value: int) -> None:
        if key not in self._live_keys:
            raise KeyError(key)
        self._append(key, value)

    def delete(self, key: int) -> None:
        if key not in self._live_keys:
            raise KeyError(key)
        self._append(key, self._TOMBSTONE)
        self._live_keys.remove(key)
        self._record_count -= 1

    # ------------------------------------------------------------------
    def _append(self, key: int, value) -> None:
        block_id = self.device.allocate(kind="log")
        self._log.append(block_id)
        self.device.write(block_id, (key, value), used_bytes=RECORD_BYTES)

    @property
    def log_entries(self) -> int:
        return len(self._log)


class DenseArray(AccessMethod):
    """Prop 3: the memory-optimal access method (base data only).

    Records packed densely in arrival order, nothing else stored:
    MO = 1.0 exactly.  Every query scans (worst case the whole dataset:
    RO = O(N)); updates are in place and write exactly the changed
    record: UO = 1.0.  Deletes compact by moving the last record into
    the hole, preserving density.
    """

    name = "dense-array"
    capabilities = Capabilities(ordered=False, updatable=True, checks_duplicates=False)

    def __init__(self, device: Optional[SimulatedDevice] = None) -> None:
        super().__init__(
            device if device is not None else record_grain_device("dense")
        )
        self._slots: List[int] = []  # block ids in array order

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        for key, value in items:
            self._append(key, value)
        self._record_count = len(self._slots)

    def get(self, key: int) -> Optional[int]:
        for block_id in self._slots:
            entry_key, entry_value = self.device.read(block_id)
            if entry_key == key:
                return entry_value
        return None

    def range_query(self, lo: int, hi: int) -> List[Record]:
        matches = []
        for block_id in self._slots:
            entry_key, entry_value = self.device.read(block_id)
            if lo <= entry_key <= hi:
                matches.append((entry_key, entry_value))
        matches.sort()
        return matches

    def insert(self, key: int, value: int) -> None:
        self._append(key, value)
        self._record_count += 1

    def update(self, key: int, value: int) -> None:
        position = self._scan_for(key)
        if position is None:
            raise KeyError(key)
        # In-place: exactly one record-sized write.  (The search cost is
        # read overhead, not update overhead — the paper's UO counts
        # physical *updates* per logical update.)
        self.device.write(self._slots[position], (key, value), used_bytes=RECORD_BYTES)

    def delete(self, key: int) -> None:
        position = self._scan_for(key)
        if position is None:
            raise KeyError(key)
        last_id = self._slots[-1]
        if self._slots[position] != last_id:
            last_entry = self.device.read(last_id)
            self.device.write(self._slots[position], last_entry, used_bytes=RECORD_BYTES)
        self._slots.pop()
        self.device.free(last_id)
        self._record_count -= 1

    # ------------------------------------------------------------------
    def _append(self, key: int, value: int) -> None:
        block_id = self.device.allocate(kind="dense")
        self.device.write(block_id, (key, value), used_bytes=RECORD_BYTES)
        self._slots.append(block_id)

    def _scan_for(self, key: int) -> Optional[int]:
        for position, block_id in enumerate(self._slots):
            entry_key, _ = self.device.read(block_id)
            if entry_key == key:
                return position
        return None
