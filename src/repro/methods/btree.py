"""B+-Tree — the read-optimized corner of Figure 1 and Table 1's first row.

A disk-style B+-Tree: every node occupies one block, leaves are chained
for range scans, and bulk loading builds the tree bottom-up from sorted
input (after a charged external sort, the O(N/B log_{MEM/B} N/B) bulk
cost of Table 1).  Point queries read root-to-leaf, O(log_B N) blocks;
range queries add m/B sequential leaf reads; inserts and deletes pay the
same logarithmic path plus occasional splits/merges.

Tunable knobs (Section 5's "B+-Trees that have dynamically tuned
parameters, including tree height, node size, and split condition"):

* ``leaf_capacity`` / ``fanout`` — node sizes, defaulting to what fits a
  block; smaller values trade space (more, emptier nodes: MO up) for
  cheaper individual writes.
* ``split_fill`` — fraction of entries kept left on a split: 0.5 is the
  classic even split; higher values pack right-growing (sequential)
  inserts densely.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional, Tuple

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.obs.spans import spanned
from repro.storage.device import SimulatedDevice
from repro.storage.layout import (
    KEY_BYTES,
    POINTER_BYTES,
    RECORD_BYTES,
    fanout_for_block,
    records_per_block,
)


class _Leaf:
    """Leaf node payload: sorted keys, parallel values, right-sibling link."""

    __slots__ = ("keys", "values", "next_leaf")

    def __init__(self, keys: List[int], values: List[int], next_leaf: Optional[int]):
        self.keys = keys
        self.values = values
        self.next_leaf = next_leaf

    def used_bytes(self) -> int:
        return len(self.keys) * RECORD_BYTES + POINTER_BYTES


class _Internal:
    """Internal node payload: separator keys and child block ids.

    ``children[i]`` covers keys < ``keys[i]``; ``children[-1]`` covers the
    rest (len(children) == len(keys) + 1).
    """

    __slots__ = ("keys", "children")

    def __init__(self, keys: List[int], children: List[int]):
        self.keys = keys
        self.children = children

    def used_bytes(self) -> int:
        return len(self.keys) * KEY_BYTES + len(self.children) * POINTER_BYTES

    def child_for(self, key: int) -> Tuple[int, int]:
        index = bisect.bisect_right(self.keys, key)
        return index, self.children[index]


class BPlusTree(AccessMethod):
    """A block-resident B+-Tree with tunable node sizes and split policy."""

    name = "btree"
    capabilities = Capabilities(ordered=True, updatable=True)

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        leaf_capacity: Optional[int] = None,
        fanout: Optional[int] = None,
        split_fill: float = 0.5,
        sort_memory_blocks: int = 64,
    ) -> None:
        super().__init__(device)
        block = self.device.block_bytes
        # A leaf stores its records plus the next-leaf pointer, so the
        # default capacity reserves pointer space inside the block.
        default_leaf = max(2, (block - POINTER_BYTES) // RECORD_BYTES)
        self.leaf_capacity = leaf_capacity or default_leaf
        self.fanout = fanout or fanout_for_block(block)
        if self.leaf_capacity < 2:
            raise ValueError("leaf_capacity must be at least 2")
        if self.fanout < 3:
            raise ValueError("fanout must be at least 3")
        # Nodes must fit their block: catch impossible knob/block-size
        # combinations at construction rather than mid-write.
        leaf_bytes = self.leaf_capacity * RECORD_BYTES + POINTER_BYTES
        if leaf_bytes > block:
            raise ValueError(
                f"leaf_capacity {self.leaf_capacity} needs {leaf_bytes} bytes, "
                f"exceeding the {block}-byte block"
            )
        internal_bytes = (self.fanout - 1) * KEY_BYTES + self.fanout * POINTER_BYTES
        if internal_bytes > block:
            raise ValueError(
                f"fanout {self.fanout} needs {internal_bytes} bytes, "
                f"exceeding the {block}-byte block"
            )
        if not 0.1 <= split_fill <= 0.9:
            raise ValueError("split_fill must be in [0.1, 0.9]")
        self.split_fill = split_fill
        self.sort_memory_blocks = sort_memory_blocks
        self._root: Optional[int] = None
        self._height = 0  # number of levels; 1 == root is a leaf

    # ------------------------------------------------------------------
    # Bulk load
    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        records = self._external_sort(list(items))
        if not records:
            return
        # Build leaves at ~90% occupancy, chained left to right.
        per_leaf = max(2, int(self.leaf_capacity * 0.9))
        leaf_ids: List[int] = []
        leaf_first_keys: List[int] = []
        chunks = [
            records[start : start + per_leaf]
            for start in range(0, len(records), per_leaf)
        ]
        for chunk in chunks:
            leaf_ids.append(self.device.allocate(kind="btree-leaf"))
        for index, chunk in enumerate(chunks):
            next_leaf = leaf_ids[index + 1] if index + 1 < len(leaf_ids) else None
            node = _Leaf(
                [key for key, _ in chunk], [value for _, value in chunk], next_leaf
            )
            self._write_node(leaf_ids[index], node)
            leaf_first_keys.append(chunk[0][0])
        # Build internal levels bottom-up.
        level_ids, level_keys = leaf_ids, leaf_first_keys
        height = 1
        per_internal = max(2, int((self.fanout - 1) * 0.9))
        while len(level_ids) > 1:
            parent_ids: List[int] = []
            parent_keys: List[int] = []
            for start in range(0, len(level_ids), per_internal + 1):
                group_children = level_ids[start : start + per_internal + 1]
                group_keys = level_keys[start + 1 : start + len(group_children)]
                block_id = self.device.allocate(kind="btree-internal")
                self._write_node(block_id, _Internal(group_keys, group_children))
                parent_ids.append(block_id)
                parent_keys.append(level_keys[start])
            level_ids, level_keys = parent_ids, parent_keys
            height += 1
        self._root = level_ids[0]
        self._height = height
        self._record_count = len(records)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, key: int) -> Optional[int]:
        if self._root is None:
            return None
        node = self._descend(key)
        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            return node.values[index]
        return None

    def _get_many(self, keys: Iterable[int]) -> List[Optional[int]]:
        """Batched descent: the per-key walk of :meth:`get` with the
        dispatch hoisted — device reads happen in the identical order."""
        root = self._root
        if root is None:
            return [None for _ in keys]
        read = self.device.read
        bisect_right = bisect.bisect_right
        bisect_left = bisect.bisect_left
        out: List[Optional[int]] = []
        append = out.append
        for key in keys:
            node = read(root)
            while isinstance(node, _Internal):
                node = read(node.children[bisect_right(node.keys, key)])
            node_keys = node.keys
            index = bisect_left(node_keys, key)
            if index < len(node_keys) and node_keys[index] == key:
                append(node.values[index])
            else:
                append(None)
        return out

    def range_query(self, lo: int, hi: int) -> List[Record]:
        if self._root is None:
            return []
        node = self._descend(lo)
        matches: List[Record] = []
        while True:
            start = bisect.bisect_left(node.keys, lo)
            for index in range(start, len(node.keys)):
                if node.keys[index] > hi:
                    return matches
                matches.append((node.keys[index], node.values[index]))
            if node.next_leaf is None:
                return matches
            node = self._read_node(node.next_leaf)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(self, key: int, value: int) -> None:
        if self._root is None:
            with self._fresh_block("btree-leaf") as root_id:
                self._write_node(root_id, _Leaf([key], [value], None))
            self._root = root_id
            self._height = 1
            self._record_count = 1
            return
        split = self._insert_descent(key, value)
        if split is not None:
            separator, right_id = split
            with self._fresh_block("btree-internal") as new_root:
                self._write_node(
                    new_root, _Internal([separator], [self._root, right_id])
                )
            self._root = new_root
            self._height += 1
        self._record_count += 1

    def update(self, key: int, value: int) -> None:
        if self._root is None:
            raise KeyError(key)
        path = self._path_to_leaf(key)
        leaf_id = path[-1][0]
        leaf = self._read_node(leaf_id)
        index = bisect.bisect_left(leaf.keys, key)
        if index >= len(leaf.keys) or leaf.keys[index] != key:
            raise KeyError(key)
        leaf.values[index] = value
        self._write_node(leaf_id, leaf)

    def delete(self, key: int) -> None:
        if self._root is None:
            raise KeyError(key)
        removed = self._delete_descent(key)
        if not removed:
            raise KeyError(key)
        # Collapse a root that shrank to a single child.
        root_node = self._read_node(self._root)
        if isinstance(root_node, _Internal) and len(root_node.children) == 1:
            old_root = self._root
            self._root = root_node.children[0]
            self.device.free(old_root)
            self._height -= 1
        elif isinstance(root_node, _Leaf) and not root_node.keys:
            self.device.free(self._root)
            self._root = None
            self._height = 0
        self._record_count -= 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Number of levels (1 == the root is a leaf)."""
        return self._height

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _read_node(self, block_id: int):
        return self.device.read(block_id)

    def _write_node(self, block_id: int, node) -> None:
        self.device.write(block_id, node, used_bytes=node.used_bytes())

    @spanned("btree.descent")
    def _descend(self, key: int):
        """Root-to-leaf walk: the logarithmic path every operation pays."""
        node = self._read_node(self._root)
        while isinstance(node, _Internal):
            _, child = node.child_for(key)
            node = self._read_node(child)
        return node

    @spanned("btree.descent")
    def _insert_descent(self, key: int, value: int) -> Optional[Tuple[int, int]]:
        """Span entry point for insertion: the recursive walk runs inside
        one ``btree.descent`` span, with splits nested under it."""
        return self._insert_into(self._root, key, value)

    @spanned("btree.descent")
    def _delete_descent(self, key: int) -> bool:
        """Span entry point for deletion: one ``btree.descent`` span with
        any borrow/merge rebalancing nested under ``btree.merge``."""
        return self._delete_from(self._root, key, parents=[])

    @spanned("btree.descent")
    def _path_to_leaf(self, key: int) -> List[Tuple[int, int]]:
        """(block id, child index chosen) pairs from root to leaf."""
        path: List[Tuple[int, int]] = []
        block_id = self._root
        node = self._read_node(block_id)
        while isinstance(node, _Internal):
            child_index, child = node.child_for(key)
            path.append((block_id, child_index))
            block_id = child
            node = self._read_node(block_id)
        path.append((block_id, -1))
        return path

    def _insert_into(
        self, block_id: int, key: int, value: int
    ) -> Optional[Tuple[int, int]]:
        """Insert below ``block_id``; return (separator, new right id) on split."""
        node = self._read_node(block_id)
        if isinstance(node, _Leaf):
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                raise ValueError(f"duplicate key {key}")
            node.keys.insert(index, key)
            node.values.insert(index, value)
            if len(node.keys) <= self.leaf_capacity:
                self._write_node(block_id, node)
                return None
            return self._split_leaf(block_id, node)
        child_index, child = node.child_for(key)
        split = self._insert_into(child, key, value)
        if split is None:
            return None
        separator, right_id = split
        node.keys.insert(child_index, separator)
        node.children.insert(child_index + 1, right_id)
        if len(node.children) <= self.fanout:
            self._write_node(block_id, node)
            return None
        return self._split_internal(block_id, node)

    @spanned("btree.split")
    def _split_leaf(self, block_id: int, node: _Leaf) -> Tuple[int, int]:
        cut = max(1, min(len(node.keys) - 1, int(len(node.keys) * self.split_fill)))
        right = _Leaf(node.keys[cut:], node.values[cut:], node.next_leaf)
        with self._fresh_block("btree-leaf") as right_id:
            self._write_node(right_id, right)
        node.keys = node.keys[:cut]
        node.values = node.values[:cut]
        node.next_leaf = right_id
        self._write_node(block_id, node)
        return right.keys[0], right_id

    @spanned("btree.split")
    def _split_internal(self, block_id: int, node: _Internal) -> Tuple[int, int]:
        cut = max(1, min(len(node.keys) - 1, int(len(node.keys) * self.split_fill)))
        separator = node.keys[cut]
        right = _Internal(node.keys[cut + 1 :], node.children[cut + 1 :])
        with self._fresh_block("btree-internal") as right_id:
            self._write_node(right_id, right)
        node.keys = node.keys[:cut]
        node.children = node.children[: cut + 1]
        self._write_node(block_id, node)
        return separator, right_id

    # -- deletion with borrow/merge rebalancing -------------------------
    def _min_leaf_keys(self) -> int:
        return max(1, self.leaf_capacity // 2)

    def _min_children(self) -> int:
        return max(2, self.fanout // 2)

    def _delete_from(self, block_id: int, key: int, parents: List[Tuple]) -> bool:
        node = self._read_node(block_id)
        if isinstance(node, _Leaf):
            index = bisect.bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                return False
            node.keys.pop(index)
            node.values.pop(index)
            self._write_node(block_id, node)
            return True
        child_index, child = node.child_for(key)
        removed = self._delete_from(child, key, parents + [(block_id, child_index)])
        if not removed:
            return False
        self._rebalance_child(block_id, node, child_index)
        return True

    @spanned("btree.merge")
    def _rebalance_child(self, parent_id: int, parent: _Internal, child_index: int) -> None:
        child_id = parent.children[child_index]
        child = self._read_node(child_id)
        if isinstance(child, _Leaf):
            if len(child.keys) >= self._min_leaf_keys():
                return
        elif len(child.children) >= self._min_children():
            return
        # Try borrowing from the left sibling, then the right, else merge.
        if child_index > 0 and self._borrow(
            parent, parent_id, child_index, from_left=True
        ):
            return
        if child_index + 1 < len(parent.children) and self._borrow(
            parent, parent_id, child_index, from_left=False
        ):
            return
        if child_index > 0:
            self._merge_children(parent, parent_id, child_index - 1)
        elif child_index + 1 < len(parent.children):
            self._merge_children(parent, parent_id, child_index)

    def _borrow(
        self, parent: _Internal, parent_id: int, child_index: int, from_left: bool
    ) -> bool:
        sibling_index = child_index - 1 if from_left else child_index + 1
        sibling_id = parent.children[sibling_index]
        child_id = parent.children[child_index]
        sibling = self._read_node(sibling_id)
        child = self._read_node(child_id)
        if isinstance(sibling, _Leaf):
            if len(sibling.keys) <= self._min_leaf_keys():
                return False
            if from_left:
                child.keys.insert(0, sibling.keys.pop())
                child.values.insert(0, sibling.values.pop())
                parent.keys[child_index - 1] = child.keys[0]
            else:
                child.keys.append(sibling.keys.pop(0))
                child.values.append(sibling.values.pop(0))
                parent.keys[child_index] = sibling.keys[0]
        else:
            if len(sibling.children) <= self._min_children():
                return False
            if from_left:
                separator = parent.keys[child_index - 1]
                child.keys.insert(0, separator)
                child.children.insert(0, sibling.children.pop())
                parent.keys[child_index - 1] = sibling.keys.pop()
            else:
                separator = parent.keys[child_index]
                child.keys.append(separator)
                child.children.append(sibling.children.pop(0))
                parent.keys[child_index] = sibling.keys.pop(0)
        self._write_node(sibling_id, sibling)
        self._write_node(child_id, child)
        self._write_node(parent_id, parent)
        return True

    def _merge_children(self, parent: _Internal, parent_id: int, left_index: int) -> None:
        """Merge children at left_index and left_index + 1 into the left."""
        left_id = parent.children[left_index]
        right_id = parent.children[left_index + 1]
        left = self._read_node(left_id)
        right = self._read_node(right_id)
        if isinstance(left, _Leaf):
            left.keys.extend(right.keys)
            left.values.extend(right.values)
            left.next_leaf = right.next_leaf
        else:
            left.keys.append(parent.keys[left_index])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        parent.keys.pop(left_index)
        parent.children.pop(left_index + 1)
        self._write_node(left_id, left)
        self._write_node(parent_id, parent)
        self.device.free(right_id)

    # ------------------------------------------------------------------
    # Invariant audit
    # ------------------------------------------------------------------
    def _audit_structure(self) -> List[str]:
        """Key order and separator bounds, node capacities, uniform leaf
        depth, left-to-right leaf chaining, and no orphaned tree blocks."""
        violations: List[str] = []
        device = self.device
        on_device = {
            block_id
            for block_id in device.iter_block_ids()
            if device.kind_of(block_id).startswith("btree-")
        }
        if self._root is None:
            if self._record_count:
                violations.append(f"no root but record count {self._record_count}")
            if self._height:
                violations.append(f"no root but height {self._height}")
            if on_device:
                violations.append(
                    f"no root but device holds tree blocks {sorted(on_device)}"
                )
            return violations
        reachable: set = set()
        leaves: List[Tuple[int, _Leaf]] = []
        leaf_depths: set = set()
        total = 0

        def walk(block_id: int, lo: Optional[int], hi: Optional[int], depth: int):
            nonlocal total
            if block_id in reachable:
                violations.append(f"node {block_id} reachable via two paths")
                return
            reachable.add(block_id)
            if block_id not in on_device:
                violations.append(f"node {block_id} missing from device")
                return
            node = device.peek(block_id)
            declared = device.used_bytes_of(block_id)
            kind = device.kind_of(block_id)
            if isinstance(node, _Leaf):
                leaf_depths.add(depth)
                if kind != "btree-leaf":
                    violations.append(f"leaf {block_id} stored in {kind!r} block")
                if len(node.keys) != len(node.values):
                    violations.append(
                        f"leaf {block_id}: {len(node.keys)} keys vs "
                        f"{len(node.values)} values"
                    )
                if len(node.keys) > self.leaf_capacity:
                    violations.append(
                        f"leaf {block_id}: {len(node.keys)} keys exceed "
                        f"capacity {self.leaf_capacity}"
                    )
                if node.keys != sorted(set(node.keys)):
                    violations.append(f"leaf {block_id}: keys not strictly sorted")
                for key in node.keys:
                    if (lo is not None and key < lo) or (hi is not None and key >= hi):
                        violations.append(
                            f"leaf {block_id}: key {key} outside separator "
                            f"bounds [{lo}, {hi})"
                        )
                if declared != node.used_bytes():
                    violations.append(
                        f"leaf {block_id}: declared {declared}B != "
                        f"{node.used_bytes()}B of contents"
                    )
                total += len(node.keys)
                leaves.append((block_id, node))
            elif isinstance(node, _Internal):
                if kind != "btree-internal":
                    violations.append(f"internal {block_id} stored in {kind!r} block")
                if len(node.children) != len(node.keys) + 1:
                    violations.append(
                        f"internal {block_id}: {len(node.children)} children "
                        f"vs {len(node.keys)} separators"
                    )
                    return
                if len(node.children) > self.fanout:
                    violations.append(
                        f"internal {block_id}: {len(node.children)} children "
                        f"exceed fanout {self.fanout}"
                    )
                if node.keys != sorted(set(node.keys)):
                    violations.append(
                        f"internal {block_id}: separators not strictly sorted"
                    )
                for key in node.keys:
                    if (lo is not None and key < lo) or (hi is not None and key >= hi):
                        violations.append(
                            f"internal {block_id}: separator {key} outside "
                            f"[{lo}, {hi})"
                        )
                if declared != node.used_bytes():
                    violations.append(
                        f"internal {block_id}: declared {declared}B != "
                        f"{node.used_bytes()}B of contents"
                    )
                bounds = [lo] + list(node.keys) + [hi]
                for index, child in enumerate(node.children):
                    walk(child, bounds[index], bounds[index + 1], depth + 1)
            else:
                violations.append(
                    f"node {block_id}: unrecognized payload "
                    f"{type(node).__name__}"
                )

        try:
            walk(self._root, None, None, 1)
        except Exception as error:  # corrupt payloads must not crash the audit
            violations.append(f"tree walk failed: {error!r}")
            return violations
        for index, (block_id, node) in enumerate(leaves):
            expected = leaves[index + 1][0] if index + 1 < len(leaves) else None
            if node.next_leaf != expected:
                violations.append(
                    f"leaf {block_id}: next_leaf {node.next_leaf}, "
                    f"chain expects {expected}"
                )
        if leaf_depths and leaf_depths != {self._height}:
            violations.append(
                f"leaf depths {sorted(leaf_depths)} != height {self._height}"
            )
        if total != self._record_count:
            violations.append(
                f"leaves hold {total} records, record count says "
                f"{self._record_count}"
            )
        orphans = on_device - reachable
        if orphans:
            violations.append(f"orphaned tree blocks on device: {sorted(orphans)}")
        return violations

    # -- charged external sort (shared shape with SortedColumn) ---------
    def _external_sort(self, records: List[Record]) -> List[Record]:
        if not records:
            return []
        per_block = records_per_block(self.device.block_bytes)
        run_records = self.sort_memory_blocks * per_block
        runs: List[List[int]] = []
        for start in range(0, len(records), run_records):
            chunk = sorted(records[start : start + run_records], key=lambda r: r[0])
            runs.append(self._write_temp_run(chunk, per_block))
        fan_in = max(2, self.sort_memory_blocks - 1)
        while len(runs) > 1:
            merged: List[List[int]] = []
            for start in range(0, len(runs), fan_in):
                merged.append(self._merge_temp_runs(runs[start : start + fan_in], per_block))
            runs = merged
        final = self._drain_run(runs[0])
        return self._sorted_unique(final)

    def _write_temp_run(self, records: List[Record], per_block: int) -> List[int]:
        ids: List[int] = []
        for start in range(0, len(records), per_block):
            block_id = self.device.allocate(kind="sort-run")
            chunk = records[start : start + per_block]
            self.device.write(block_id, chunk, used_bytes=len(chunk) * RECORD_BYTES)
            ids.append(block_id)
        return ids

    def _merge_temp_runs(self, runs: List[List[int]], per_block: int) -> List[int]:
        import heapq

        streams = [self._drain_run(run) for run in runs]
        merged = list(heapq.merge(*streams, key=lambda r: r[0]))
        return self._write_temp_run(merged, per_block)

    def _drain_run(self, run: List[int]) -> List[Record]:
        records: List[Record] = []
        for block_id in run:
            records.extend(self.device.read(block_id))
            self.device.free(block_id)
        return records
