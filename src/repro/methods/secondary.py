"""Secondary indexing over a heap file — the paper's introduction example.

"When data is stored in a heap file without an index, we have to
perform costly scans to locate any data we are interested in.
Conversely, a tree index on top of the heap file, uses additional space
in order to substitute the scan with a more lightweight index probe."

:class:`IndexedHeap` is that composition, literally: base data lives in
an append-ordered heap of blocks; an *auxiliary* index maps each key to
its heap position (block, slot).  Point and range queries probe the
index and then read exactly the qualifying heap blocks; updates touch
the heap in place plus the index when positions change.  The RUM
overheads of the composition decompose exactly as Section 2 defines
them: the index's accesses are the read overhead's auxiliary part, its
maintenance the update overhead's, its blocks the memory overhead's.

Two index flavours:

* ``index_kind="tree"`` — a B+-Tree of (key, position) entries: range
  queries become index scans + targeted heap reads;
* ``index_kind="hash"`` — a hash directory of positions: O(1) point
  probes, ranges fall back to heap scans.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.methods.btree import BPlusTree
from repro.methods.hashindex import HashIndex
from repro.storage.device import SimulatedDevice
from repro.storage.layout import RECORD_BYTES, records_per_block


class IndexedHeap(AccessMethod):
    """Heap-file base data plus a secondary position index.

    Parameters
    ----------
    index_kind:
        ``"tree"`` (B+-Tree secondary index) or ``"hash"``.
    """

    name = "indexed-heap"
    capabilities = Capabilities(ordered=True, updatable=True)

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        index_kind: str = "tree",
    ) -> None:
        super().__init__(device)
        if index_kind not in ("tree", "hash"):
            raise ValueError("index_kind must be 'tree' or 'hash'")
        self.index_kind = index_kind
        self._per_block = records_per_block(self.device.block_bytes)
        self._heap_blocks: List[int] = []
        self._tail_count = 0
        self._free_slots: List[int] = []  # heap positions vacated by deletes
        # The auxiliary index: key -> heap position, stored as records
        # in a structure of its own on the *same* device, so its blocks
        # are part of this structure's space footprint.
        if index_kind == "tree":
            self._index: AccessMethod = BPlusTree(device=self.device)
        else:
            self._index = HashIndex(device=self.device)

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        records = list(items)
        positions: List[Tuple[int, int]] = []
        for start in range(0, len(records), self._per_block):
            chunk = records[start : start + self._per_block]
            block_id = self.device.allocate(kind="heap")
            self.device.write(block_id, chunk, used_bytes=len(chunk) * RECORD_BYTES)
            self._heap_blocks.append(block_id)
            base = start
            positions.extend(
                (key, base + offset) for offset, (key, _) in enumerate(chunk)
            )
        self._tail_count = (
            len(records) - (len(self._heap_blocks) - 1) * self._per_block
            if records
            else 0
        )
        self._index.bulk_load(positions)
        self._record_count = len(records)

    def get(self, key: int) -> Optional[int]:
        position = self._index.get(key)
        if position is None:
            return None
        row = self._read_position(position)
        return row[1] if row is not None else None

    def range_query(self, lo: int, hi: int) -> List[Record]:
        if self.index_kind == "tree":
            # Unclustered-index fetch done right: collect the qualifying
            # heap positions first, then visit each heap block once in
            # position order (the bitmap-heap-scan trick) instead of one
            # random heap read per row.
            entries = self._index.range_query(lo, hi)
            by_block: Dict[int, List[Tuple[int, int]]] = {}
            for key, position in entries:
                by_block.setdefault(position // self._per_block, []).append(
                    (position % self._per_block, key)
                )
            matches: List[Record] = []
            for block_index in sorted(by_block):
                rows = self.device.read(self._heap_blocks[block_index])
                for slot, _ in by_block[block_index]:
                    if slot < len(rows) and rows[slot] is not None:
                        matches.append(rows[slot])
            matches.sort()
            return matches
        # Hash index cannot enumerate a range: scan the heap.
        matches = []
        for block_id in self._heap_blocks:
            rows = self.device.read(block_id)
            matches.extend(
                row for row in rows if row is not None and lo <= row[0] <= hi
            )
        matches.sort()
        return matches

    def insert(self, key: int, value: int) -> None:
        if self._index.get(key) is not None:
            raise ValueError(f"duplicate key {key}")
        position = self._append_row(key, value)
        self._index.insert(key, position)
        self._record_count += 1

    def update(self, key: int, value: int) -> None:
        position = self._index.get(key)
        if position is None:
            raise KeyError(key)
        # In-place heap write; the index is untouched (positions stable).
        self._write_position(position, (key, value))

    def delete(self, key: int) -> None:
        position = self._index.get(key)
        if position is None:
            raise KeyError(key)
        self._write_position(position, None)
        self._free_slots.append(position)
        self._index.delete(key)
        self._record_count -= 1

    # ------------------------------------------------------------------
    def index_blocks(self) -> int:
        """Blocks the auxiliary index occupies (MO's auxiliary part)."""
        return self.device.allocated_blocks - len(self._heap_blocks)

    # ------------------------------------------------------------------
    def _append_row(self, key: int, value: int) -> int:
        if self._free_slots:
            position = self._free_slots.pop()
            self._write_position(position, (key, value))
            return position
        if not self._heap_blocks or self._tail_count >= self._per_block:
            block_id = self.device.allocate(kind="heap")
            self.device.write(block_id, [(key, value)], used_bytes=RECORD_BYTES)
            self._heap_blocks.append(block_id)
            self._tail_count = 1
        else:
            block_id = self._heap_blocks[-1]
            rows = list(self.device.read(block_id))
            rows.append((key, value))
            self.device.write(
                block_id,
                rows,
                used_bytes=sum(1 for row in rows if row is not None)
                * RECORD_BYTES,
            )
            self._tail_count += 1
        return (len(self._heap_blocks) - 1) * self._per_block + self._tail_count - 1

    def _read_position(self, position: int) -> Optional[Record]:
        rows = self.device.read(self._heap_blocks[position // self._per_block])
        if position % self._per_block >= len(rows):
            return None
        return rows[position % self._per_block]

    def _write_position(self, position: int, row: Optional[Record]) -> None:
        block_id = self._heap_blocks[position // self._per_block]
        rows = list(self.device.read(block_id))
        rows[position % self._per_block] = row
        live = sum(1 for entry in rows if entry is not None)
        self.device.write(block_id, rows, used_bytes=live * RECORD_BYTES)
