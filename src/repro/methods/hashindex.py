"""Hash index — the paper's Table 1 "Perfect Hash Index" row.

Records hashed into bucket blocks; the bucket directory lives in memory
(its bytes are charged to the structure's space footprint), so a point
query costs O(1) block reads — the best point-query complexity in
Table 1 — while a range query must read every bucket, O(N/B), the worst.

Two sizing modes:

* ``static`` ("perfect"): bulk load sizes the directory so every bucket
  fits one block and never chains; inserts that overflow a bucket chain
  into overflow blocks (amortized O(1)).
* ``resizable``: the directory doubles when the average load exceeds the
  threshold, rehashing all buckets (linear, but amortized O(1) per
  insert).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.filters.bloom import _mix
from repro.obs.spans import spanned
from repro.storage.device import SimulatedDevice
from repro.storage.layout import POINTER_BYTES, RECORD_BYTES, records_per_block


class HashIndex(AccessMethod):
    """Bucket-chained hash index over the device.

    Parameters
    ----------
    initial_buckets:
        Directory size before any data is loaded (resizable mode) or the
        fallback when bulk loading an empty dataset.
    load_factor_limit:
        Average records per bucket slot (relative to one block's
        capacity) that triggers a directory doubling; ``None`` freezes
        the directory ("perfect"/static mode after bulk load).
    """

    name = "hash-index"
    capabilities = Capabilities(ordered=False, updatable=True, checks_duplicates=False)

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        initial_buckets: int = 16,
        load_factor_limit: Optional[float] = 0.75,
    ) -> None:
        super().__init__(device)
        if initial_buckets < 1:
            raise ValueError("initial_buckets must be positive")
        self._per_block = records_per_block(self.device.block_bytes)
        self.load_factor_limit = load_factor_limit
        # directory[i] is the chain of block ids for bucket i.
        self._directory: List[List[int]] = []
        self._init_directory(initial_buckets)

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        records = list(items)
        # "Perfect" sizing: one block per bucket at ~2/3 occupancy.
        target = max(1, -(-len(records) * 3 // (2 * self._per_block)))
        buckets = 1
        while buckets < target:
            buckets *= 2
        self._reset_directory(buckets)
        groups: List[List[Record]] = [[] for _ in range(buckets)]
        for key, value in records:
            groups[self._bucket_of(key, buckets)].append((key, value))
        for bucket_index, group in enumerate(groups):
            self._write_chain(bucket_index, group)
        self._record_count = len(records)

    def get(self, key: int) -> Optional[int]:
        location = self._probe_location(key)
        if location is None:
            return None
        _position, _block_id, index, records = location
        return records[index][1]

    def _get_many(self, keys: Iterable[int]) -> List[Optional[int]]:
        """Batched probes: the chain walk of :meth:`_probe_location` with
        dispatch and span plumbing hoisted — bucket blocks are read in
        the identical order."""
        directory = self._directory
        buckets = len(directory)
        read = self.device.read
        out: List[Optional[int]] = []
        append = out.append
        for key in keys:
            result = None
            found = False
            for block_id in directory[_mix(key, 0xB0CE) % buckets]:
                for record_key, value in read(block_id):
                    if record_key == key:
                        result = value
                        found = True
                        break
                if found:
                    break
            append(result)
        return out

    def range_query(self, lo: int, hi: int) -> List[Record]:
        # Hashing destroys order: a range query reads every bucket.
        matches: List[Record] = []
        for chain in self._directory:
            for block_id in chain:
                matches.extend(
                    (key, value)
                    for key, value in self.device.read(block_id)
                    if lo <= key <= hi
                )
        matches.sort(key=lambda record: record[0])
        return matches

    def insert(self, key: int, value: int) -> None:
        bucket_index = self._bucket_of(key)
        chain = self._directory[bucket_index]
        if chain:
            last_id = chain[-1]
            records = list(self.device.read(last_id))
            if len(records) < self._per_block:
                records.append((key, value))
                self._write_block(last_id, records)
            else:
                self._append_to_chain(bucket_index, [(key, value)])
        else:
            self._append_to_chain(bucket_index, [(key, value)])
        self._record_count += 1
        self._maybe_grow()

    def update(self, key: int, value: int) -> None:
        location = self._probe_location(key)
        if location is None:
            raise KeyError(key)
        _position, block_id, index, records = location
        records[index] = (key, value)
        self._write_block(block_id, records)

    def delete(self, key: int) -> None:
        location = self._probe_location(key)
        if location is None:
            raise KeyError(key)
        position, block_id, index, records = location
        chain = self._directory[self._bucket_of(key)]
        records.pop(index)
        if not records and len(chain) > 1:
            self.device.free(block_id)
            chain.pop(position)
        else:
            self._write_block(block_id, records)
        self._record_count -= 1

    # ------------------------------------------------------------------
    def space_bytes(self) -> int:
        """Blocks plus the in-memory directory (one pointer per bucket)."""
        return self.device.allocated_bytes + len(self._directory) * POINTER_BYTES

    @property
    def buckets(self) -> int:
        return len(self._directory)

    def chain_lengths(self) -> List[int]:
        """Blocks per bucket — 1 everywhere means truly 'perfect'."""
        return [len(chain) for chain in self._directory]

    # ------------------------------------------------------------------
    def _init_directory(self, buckets: int) -> None:
        self._directory = [[] for _ in range(buckets)]

    def _reset_directory(self, buckets: int) -> None:
        for chain in self._directory:
            for block_id in chain:
                self.device.free(block_id)
        self._init_directory(buckets)

    def _bucket_of(self, key: int, buckets: Optional[int] = None) -> int:
        return _mix(key, 0xB0CE) % (buckets or len(self._directory))

    @spanned("hash.probe")
    def _probe_location(
        self, key: int
    ) -> Optional[Tuple[int, int, int, List[Record]]]:
        """Walk the key's bucket chain; return (chain position, block id,
        index in block, block's records) for the first match."""
        for position, block_id in enumerate(self._directory[self._bucket_of(key)]):
            records = list(self.device.read(block_id))
            for index, (record_key, _) in enumerate(records):
                if record_key == key:
                    return position, block_id, index, records
        return None

    def _append_to_chain(self, bucket_index: int, records: List[Record]) -> None:
        with self._fresh_block("bucket") as block_id:
            self._write_block(block_id, records)
        self._directory[bucket_index].append(block_id)

    def _write_chain(self, bucket_index: int, records: List[Record]) -> None:
        for start in range(0, len(records), self._per_block):
            self._append_to_chain(bucket_index, records[start : start + self._per_block])
        if not records:
            # Pre-allocate one block per bucket so probes cost exactly one
            # read even for empty buckets, as a real static hash table does.
            self._append_to_chain(bucket_index, [])

    def _write_block(self, block_id: int, records: List[Record]) -> None:
        self.device.write(block_id, records, used_bytes=len(records) * RECORD_BYTES)

    # ------------------------------------------------------------------
    # Invariant audit
    # ------------------------------------------------------------------
    def _audit_structure(self) -> List[str]:
        """Bucket-chain integrity: every record hashes to the chain it
        sits in, no empty blocks linger in multi-block chains, and the
        directory's blocks are exactly the device's bucket blocks."""
        violations: List[str] = []
        device = self.device
        referenced = [block_id for chain in self._directory for block_id in chain]
        if len(set(referenced)) != len(referenced):
            violations.append("bucket block id referenced twice")
        on_device = {
            block_id
            for block_id in device.iter_block_ids()
            if device.kind_of(block_id) == "bucket"
        }
        if on_device != set(referenced):
            violations.append(
                f"chain/device mismatch: chains-only "
                f"{sorted(set(referenced) - on_device)}, device-only "
                f"{sorted(on_device - set(referenced))}"
            )
        total = 0
        for bucket_index, chain in enumerate(self._directory):
            for block_id in chain:
                if block_id not in on_device:
                    continue
                payload = device.peek(block_id)
                if payload is None:
                    payload = []
                if not isinstance(payload, list):
                    violations.append(
                        f"bucket {bucket_index}: block {block_id} payload "
                        f"is not a record list"
                    )
                    continue
                if len(payload) > self._per_block:
                    violations.append(
                        f"bucket {bucket_index}: block {block_id} holds "
                        f"{len(payload)} records, capacity {self._per_block}"
                    )
                if not payload and len(chain) > 1:
                    violations.append(
                        f"bucket {bucket_index}: empty block {block_id} "
                        f"in a multi-block chain"
                    )
                declared = device.used_bytes_of(block_id)
                if declared != len(payload) * RECORD_BYTES:
                    violations.append(
                        f"bucket {bucket_index}: block {block_id} declares "
                        f"{declared}B != {len(payload)} records x {RECORD_BYTES}B"
                    )
                try:
                    for key, _ in payload:
                        home = self._bucket_of(key)
                        if home != bucket_index:
                            violations.append(
                                f"bucket {bucket_index}: key {key} hashes "
                                f"to bucket {home}"
                            )
                except (TypeError, ValueError):
                    violations.append(
                        f"bucket {bucket_index}: block {block_id} malformed"
                    )
                total += len(payload)
        if total != self._record_count:
            violations.append(
                f"chains hold {total} records, record count says "
                f"{self._record_count}"
            )
        if self.load_factor_limit is not None:
            capacity = len(self._directory) * self._per_block
            if capacity and self._record_count / capacity > self.load_factor_limit:
                violations.append(
                    f"load factor {self._record_count / capacity:.3f} "
                    f"exceeds limit {self.load_factor_limit}"
                )
        return violations

    def _maybe_grow(self) -> None:
        if self.load_factor_limit is None:
            return
        capacity = len(self._directory) * self._per_block
        if capacity and self._record_count / capacity <= self.load_factor_limit:
            return
        self._grow()

    @spanned("hash.rehash")
    def _grow(self) -> None:
        # Double the directory and rehash everything (linear, amortized
        # O(1) per insert — the textbook resizable hashing cost).
        records: List[Record] = []
        for chain in self._directory:
            for block_id in chain:
                records.extend(self.device.read(block_id))
        new_buckets = len(self._directory) * 2
        self._reset_directory(new_buckets)
        groups: List[List[Record]] = [[] for _ in range(new_buckets)]
        for key, value in records:
            groups[self._bucket_of(key, new_buckets)].append((key, value))
        for bucket_index, group in enumerate(groups):
            self._write_chain(bucket_index, group)
