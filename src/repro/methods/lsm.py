"""Log-Structured Merge tree (O'Neil et al., 1996) — write-optimized corner.

The canonical differential structure of the paper's Section 4: updates
are absorbed in a memory buffer and migrated down a hierarchy of
exponentially larger sorted runs, so one logical update costs far less
than an in-place structure — at the price of read amplification (every
run may need probing) and space amplification (obsolete versions linger
until compaction).

Implemented knobs:

* ``size_ratio`` — the paper's T: capacity ratio between adjacent levels.
  Larger T means fewer levels (better reads) but more rewriting per merge
  (worse writes): the knob that slides the LSM along the R-U edge.
* ``compaction`` — ``"leveled"`` (one run per level, RocksDB-style,
  read-leaning) or ``"tiered"`` (up to T runs per level, write-leaning).
* ``bloom_bits_per_key`` — per-run Bloom filters; 0 disables them.  The
  E9 ablation: filters add memory overhead and cut read overhead.

Every run stores its records in contiguous data blocks with block-fence
keys and an optional Bloom filter, both *materialized in device blocks*
so that consulting them costs I/O and occupies space, as on a real
system.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.filters.bloom import BloomFilter
from repro.obs.spans import span, spanned
from repro.storage.device import SimulatedDevice
from repro.storage.layout import KEY_BYTES, RECORD_BYTES, records_per_block

#: Tombstone marker: a deleted key's "value" inside runs and memtable.
from repro.core.sentinels import TOMBSTONE


@dataclass
class _Run:
    """One immutable sorted run: data blocks + fences + optional filter."""

    data_blocks: List[int]
    fence_blocks: List[int]
    fence_directory: List[int]  # first fence key per fence block (in memory)
    bloom_blocks: List[int]
    bloom: Optional[BloomFilter]
    records: int
    min_key: int
    max_key: int


class LSMTree(AccessMethod):
    """A leveled or tiered LSM tree over the simulated device."""

    name = "lsm"
    capabilities = Capabilities(ordered=True, updatable=True)

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        memtable_records: int = 512,
        size_ratio: int = 4,
        compaction: str = "leveled",
        bloom_bits_per_key: int = 10,
    ) -> None:
        super().__init__(device)
        if memtable_records < 1:
            raise ValueError("memtable_records must be positive")
        if size_ratio < 2:
            raise ValueError("size_ratio (T) must be at least 2")
        if compaction not in ("leveled", "tiered"):
            raise ValueError("compaction must be 'leveled' or 'tiered'")
        if bloom_bits_per_key < 0:
            raise ValueError("bloom_bits_per_key must be non-negative")
        self.memtable_records = memtable_records
        self.size_ratio = size_ratio
        self.compaction = compaction
        self.bloom_bits_per_key = bloom_bits_per_key
        self._per_block = records_per_block(self.device.block_bytes)
        self._fences_per_block = max(1, self.device.block_bytes // KEY_BYTES)
        self._memtable: Dict[int, object] = {}
        self._levels: List[List[_Run]] = []  # levels[i] = runs, oldest first
        self._live_keys: Set[int] = set()

    # ------------------------------------------------------------------
    # Workload operations
    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        records = self._sorted_unique(items)
        if not records:
            return
        # Load straight into the bottommost level as one big run — the
        # standard bulk path, costing one sequential write of the data.
        level = 0
        capacity = self.memtable_records
        while capacity < len(records):
            capacity *= self.size_ratio
            level += 1
        while len(self._levels) <= level:
            self._levels.append([])
        self._levels[level].append(self._build_run(records))
        self._live_keys = {key for key, _ in records}
        self._record_count = len(records)

    def get(self, key: int) -> Optional[int]:
        if key in self._memtable:
            value = self._memtable[key]
            return None if value is TOMBSTONE else value
        for level_runs in self._levels:
            for run in reversed(level_runs):  # newest run first
                found, value = self._probe_run(run, key)
                if found:
                    return None if value is TOMBSTONE else value
        return None

    def _get_many(self, keys: Iterable[int]) -> List[Optional[int]]:
        """Batched probes: the memtable check and run walk of :meth:`get`
        with dispatch and span plumbing hoisted — filter, fence and data
        block reads happen in the identical order."""
        memtable = self._memtable
        levels = self._levels
        read = self.device.read
        bisect_right = bisect.bisect_right
        bisect_left = bisect.bisect_left
        fences_per_block = self._fences_per_block
        out: List[Optional[int]] = []
        append = out.append
        for key in keys:
            if key in memtable:
                value = memtable[key]
                append(None if value is TOMBSTONE else value)
                continue
            result = None
            found = False
            for level_runs in levels:
                for run in reversed(level_runs):  # newest run first
                    if key < run.min_key or key > run.max_key:
                        continue
                    bloom = run.bloom
                    if bloom is not None:
                        read(run.bloom_blocks[self._bloom_chunk_for(run, key)])
                        if not bloom.may_contain(key):
                            continue
                    fence_index = max(
                        0, bisect_right(run.fence_directory, key) - 1
                    )
                    fences = read(run.fence_blocks[fence_index])
                    position = max(0, bisect_right(fences, key) - 1)
                    records = read(
                        run.data_blocks[
                            fence_index * fences_per_block + position
                        ]
                    )
                    record_keys = [record_key for record_key, _ in records]
                    index = bisect_left(record_keys, key)
                    if index < len(record_keys) and record_keys[index] == key:
                        value = records[index][1]
                        result = None if value is TOMBSTONE else value
                        found = True
                        break
                if found:
                    break
            append(result)
        return out

    def range_query(self, lo: int, hi: int) -> List[Record]:
        # Newest-version-wins merge across memtable and every run.
        newest: Dict[int, object] = {}
        for key, value in self._memtable.items():
            if lo <= key <= hi:
                newest[key] = value
        for level_runs in self._levels:
            for run in reversed(level_runs):
                for key, value in self._scan_run(run, lo, hi):
                    if key not in newest:
                        newest[key] = value
        return sorted(
            (key, value)
            for key, value in newest.items()
            if value is not TOMBSTONE
        )

    def insert(self, key: int, value: int) -> None:
        if key in self._live_keys:
            raise ValueError(f"duplicate key {key}")
        self._put(key, value)
        self._live_keys.add(key)
        self._record_count += 1

    def _put_many(self, items: Iterable[Record]) -> None:
        """Batched inserts: the memtable fill of :meth:`insert` with
        dispatch hoisted.  Flushes (and anything touching the device)
        still go through :meth:`_put`, so the I/O stream is identical."""
        live = self._live_keys
        threshold = self.memtable_records
        memtable = self._memtable
        count = len(memtable)
        for key, value in items:
            if key in live:
                raise ValueError(f"duplicate key {key}")
            if count + 1 >= threshold or key in memtable:
                # Flush imminent (or a tombstone being overwritten):
                # take the per-op path, then re-alias the — possibly
                # replaced — memtable dict.
                self._put(key, value)
                memtable = self._memtable
                count = len(memtable)
            else:
                memtable[key] = value
                count += 1
            live.add(key)
            self._record_count += 1

    def update(self, key: int, value: int) -> None:
        if key not in self._live_keys:
            raise KeyError(key)
        self._put(key, value)

    def delete(self, key: int) -> None:
        if key not in self._live_keys:
            raise KeyError(key)
        self._put(key, TOMBSTONE)
        self._live_keys.discard(key)
        self._record_count -= 1

    # ------------------------------------------------------------------
    # Space accounting: device blocks plus the in-memory memtable.
    # ------------------------------------------------------------------
    def space_bytes(self) -> int:
        return self.device.allocated_bytes + len(self._memtable) * RECORD_BYTES

    # ------------------------------------------------------------------
    # Introspection for benchmarks
    # ------------------------------------------------------------------
    @property
    def levels(self) -> int:
        return len(self._levels)

    def runs_per_level(self) -> List[int]:
        """Run count at each level, top to bottom."""
        return [len(level_runs) for level_runs in self._levels]

    def bloom_space_bytes(self) -> int:
        """Device space occupied by Bloom-filter blocks."""
        blocks = sum(
            len(run.bloom_blocks)
            for level_runs in self._levels
            for run in level_runs
        )
        return blocks * self.device.block_bytes

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    @spanned("lsm.put")
    def _put(self, key: int, value: object) -> None:
        absent = key not in self._memtable
        previous = self._memtable.get(key)
        self._memtable[key] = value
        if len(self._memtable) >= self.memtable_records:
            try:
                self._flush_memtable()
            except BaseException:
                # A device fault aborted the flush before it cleared the
                # memtable; roll this operation's entry back so the
                # structure is exactly as it was before the call.
                if key in self._memtable:
                    if absent:
                        del self._memtable[key]
                    else:
                        self._memtable[key] = previous
                raise

    def flush(self) -> None:
        """Force the memtable down to level 0 (used before measuring MO)."""
        if self._memtable:
            self._flush_memtable()

    @spanned("lsm.flush")
    def _flush_memtable(self) -> None:
        records = sorted(self._memtable.items())
        if not self._levels:
            self._levels.append([])
        self._push_run(0, records)
        # Cleared only after the push succeeds: a fault mid-flush must
        # not lose the buffered updates.
        self._memtable = {}

    def _push_run(self, level: int, records: List[Tuple[int, object]]) -> None:
        """Install ``records`` as a run at ``level``, compacting as needed."""
        while len(self._levels) <= level:
            self._levels.append([])
        if self.compaction == "leveled":
            existing = self._levels[level]
            if existing:
                # Merging with resident runs is compaction work: the
                # span covers the drain, the rewrite and any cascade it
                # triggers, so per-level compaction bytes separate from
                # the flush's own run write (E7 attribution).
                with span(f"lsm.compaction.L{level}"):
                    merged = self._merge_record_lists(
                        [records]
                        + [self._drain_run(run) for run in reversed(existing)],
                        drop_tombstones=self._is_bottom(level),
                    )
                    self._levels[level] = []
                    self._install_merged(level, merged)
            else:
                merged = records
                if self._is_bottom(level):
                    merged = [
                        (key, value)
                        for key, value in merged
                        if value is not TOMBSTONE
                    ]
                self._install_merged(level, merged)
        else:  # tiered
            if records:
                self._levels[level].append(self._build_run(records))
            if len(self._levels[level]) >= self.size_ratio:
                with span(f"lsm.compaction.L{level}"):
                    runs = self._levels[level]
                    self._levels[level] = []
                    merged = self._merge_record_lists(
                        [self._drain_run(run) for run in reversed(runs)],
                        drop_tombstones=self._is_bottom(level + 1),
                    )
                    self._push_run(level + 1, merged)

    def _install_merged(
        self, level: int, merged: List[Tuple[int, object]]
    ) -> None:
        """Install a merged record list at ``level`` or cascade it down."""
        if len(merged) > self._level_capacity(level):
            # Over capacity: the run cascades down, deepening the
            # tree if needed (capacities grow by T per level, so the
            # recursion terminates).
            self._push_run(level + 1, merged)
        elif merged:
            self._levels[level].append(self._build_run(merged))

    def _is_bottom(self, level: int) -> bool:
        """True when no lower level holds data (tombstones can be dropped)."""
        for lower in range(level + 1, len(self._levels)):
            if self._levels[lower]:
                return False
        return True

    def _level_capacity(self, level: int) -> int:
        return self.memtable_records * (self.size_ratio ** (level + 1))

    @staticmethod
    def _merge_record_lists(
        lists_newest_first: List[List[Tuple[int, object]]], drop_tombstones: bool
    ) -> List[Tuple[int, object]]:
        """Merge sorted runs; the earliest list wins on key collisions."""
        merged: Dict[int, object] = {}
        for records in lists_newest_first:
            for key, value in records:
                if key not in merged:
                    merged[key] = value
        result = sorted(merged.items())
        if drop_tombstones:
            result = [(k, v) for k, v in result if v is not TOMBSTONE]
        return result

    # ------------------------------------------------------------------
    # Run storage
    # ------------------------------------------------------------------
    def _build_run(self, records: List[Tuple[int, object]]) -> _Run:
        data_blocks: List[int] = []
        fences: List[int] = []
        for start in range(0, len(records), self._per_block):
            chunk = records[start : start + self._per_block]
            with self._fresh_block("lsm-data") as block_id:
                self.device.write(
                    block_id, chunk, used_bytes=len(chunk) * RECORD_BYTES
                )
            data_blocks.append(block_id)
            fences.append(chunk[0][0])
        fence_blocks: List[int] = []
        fence_directory: List[int] = []
        for start in range(0, len(fences), self._fences_per_block):
            chunk = fences[start : start + self._fences_per_block]
            with self._fresh_block("lsm-fence") as block_id:
                self.device.write(block_id, chunk, used_bytes=len(chunk) * KEY_BYTES)
            fence_blocks.append(block_id)
            fence_directory.append(chunk[0])
        bloom: Optional[BloomFilter] = None
        bloom_blocks: List[int] = []
        if self.bloom_bits_per_key > 0:
            fpr = max(1e-6, 0.6185 ** self.bloom_bits_per_key)  # (1/2^ln2)^bits
            bloom = BloomFilter(max(1, len(records)), fpr)
            for key, _ in records:
                bloom.add(key)
            n_bloom_blocks = max(
                1, -(-bloom.size_bytes // self.device.block_bytes)
            )
            for index in range(n_bloom_blocks):
                with self._fresh_block("lsm-bloom") as block_id:
                    self.device.write(
                        block_id,
                        ("bloom-chunk", index),
                        used_bytes=min(
                            self.device.block_bytes,
                            bloom.size_bytes - index * self.device.block_bytes,
                        ),
                    )
                bloom_blocks.append(block_id)
        return _Run(
            data_blocks=data_blocks,
            fence_blocks=fence_blocks,
            fence_directory=fence_directory,
            bloom_blocks=bloom_blocks,
            bloom=bloom,
            records=len(records),
            min_key=records[0][0],
            max_key=records[-1][0],
        )

    # ------------------------------------------------------------------
    # Invariant audit
    # ------------------------------------------------------------------
    def _audit_structure(self) -> List[str]:
        """Run sortedness and fence/filter consistency, per-level run
        counts and capacities, Bloom no-false-negatives, and agreement
        between the reconstructed newest-wins view and the live-key set."""
        violations: List[str] = []
        device = self.device
        referenced: Set[int] = set()
        run_records: List[Tuple[int, int, List[Tuple[int, object]]]] = []
        for level, level_runs in enumerate(self._levels):
            if self.compaction == "leveled" and len(level_runs) > 1:
                violations.append(
                    f"level {level}: {len(level_runs)} runs at rest; "
                    f"leveled compaction allows 1"
                )
            if self.compaction == "tiered" and len(level_runs) >= self.size_ratio:
                violations.append(
                    f"level {level}: {len(level_runs)} runs at rest; "
                    f"tiered compaction allows < {self.size_ratio}"
                )
            for run_index, run in enumerate(level_runs):
                label = f"level {level} run {run_index}"
                if run.records > self._level_capacity(level):
                    violations.append(
                        f"{label}: {run.records} records exceed level "
                        f"capacity {self._level_capacity(level)}"
                    )
                records = self._audit_run(label, run, referenced, violations)
                run_records.append((level, run_index, records))
        on_device = {
            block_id
            for block_id in device.iter_block_ids()
            if device.kind_of(block_id).startswith("lsm-")
        }
        if on_device != referenced:
            violations.append(
                f"run/device block mismatch: runs-only "
                f"{sorted(referenced - on_device)}, device-only "
                f"{sorted(on_device - referenced)}"
            )
        # Newest-wins reconstruction: memtable, then levels top-down,
        # newest run first within a level — the read path's precedence.
        by_position = {
            (level, index): records for level, index, records in run_records
        }
        merged: Dict[int, object] = dict(self._memtable)
        for level, level_runs in enumerate(self._levels):
            for run_index in range(len(level_runs) - 1, -1, -1):
                for key, value in by_position.get((level, run_index), []):
                    if key not in merged:
                        merged[key] = value
        live = {key for key, value in merged.items() if value is not TOMBSTONE}
        if live != self._live_keys:
            only_recon = sorted(live - self._live_keys)[:5]
            only_tracked = sorted(self._live_keys - live)[:5]
            violations.append(
                f"live-key mismatch: reconstructed {len(live)} vs tracked "
                f"{len(self._live_keys)} (reconstructed-only {only_recon}, "
                f"tracked-only {only_tracked})"
            )
        if len(self._live_keys) != self._record_count:
            violations.append(
                f"{len(self._live_keys)} live keys vs record count "
                f"{self._record_count}"
            )
        return violations

    def _audit_run(
        self,
        label: str,
        run: _Run,
        referenced: Set[int],
        violations: List[str],
    ) -> List[Tuple[int, object]]:
        """Audit one run; returns its records (newest-wins merge input)."""
        device = self.device
        records: List[Tuple[int, object]] = []
        block_firsts: List[int] = []
        for block_id in run.data_blocks + run.fence_blocks + run.bloom_blocks:
            if block_id in referenced:
                violations.append(f"{label}: block {block_id} shared between runs")
            referenced.add(block_id)
        for block_id in run.data_blocks:
            if not device.is_allocated(block_id):
                violations.append(f"{label}: data block {block_id} not allocated")
                continue
            if device.kind_of(block_id) != "lsm-data":
                violations.append(
                    f"{label}: data block {block_id} has kind "
                    f"{device.kind_of(block_id)!r}"
                )
            payload = device.peek(block_id)
            if not isinstance(payload, list) or not payload:
                violations.append(
                    f"{label}: data block {block_id} payload is not a "
                    f"non-empty record list"
                )
                continue
            if len(payload) > self._per_block:
                violations.append(
                    f"{label}: data block {block_id} holds {len(payload)} "
                    f"records, capacity {self._per_block}"
                )
            declared = device.used_bytes_of(block_id)
            if declared != len(payload) * RECORD_BYTES:
                violations.append(
                    f"{label}: data block {block_id} declares {declared}B "
                    f"!= {len(payload)} records x {RECORD_BYTES}B"
                )
            try:
                block_firsts.append(payload[0][0])
                records.extend(payload)
            except (TypeError, IndexError):
                violations.append(f"{label}: data block {block_id} malformed")
        keys = []
        try:
            keys = [key for key, _ in records]
        except (TypeError, ValueError):
            violations.append(f"{label}: malformed records")
        if keys:
            if keys != sorted(set(keys)):
                violations.append(f"{label}: keys not strictly sorted")
            if keys[0] != run.min_key or keys[-1] != run.max_key:
                violations.append(
                    f"{label}: key span [{keys[0]}, {keys[-1]}] != declared "
                    f"[{run.min_key}, {run.max_key}]"
                )
        if len(records) != run.records:
            violations.append(
                f"{label}: holds {len(records)} records, declares {run.records}"
            )
        if not records:
            violations.append(f"{label}: empty run should have been dropped")
        # Fences: every data block's first key, chunked into fence blocks.
        expected_chunks = [
            block_firsts[start : start + self._fences_per_block]
            for start in range(0, len(block_firsts), self._fences_per_block)
        ]
        if len(run.fence_blocks) != len(expected_chunks):
            violations.append(
                f"{label}: {len(run.fence_blocks)} fence blocks, expected "
                f"{len(expected_chunks)}"
            )
        else:
            for block_id, chunk in zip(run.fence_blocks, expected_chunks):
                if not device.is_allocated(block_id):
                    violations.append(f"{label}: fence block {block_id} not allocated")
                    continue
                if device.peek(block_id) != chunk:
                    violations.append(
                        f"{label}: fence block {block_id} disagrees with "
                        f"data block first keys"
                    )
            if run.fence_directory != [chunk[0] for chunk in expected_chunks]:
                violations.append(f"{label}: fence directory stale")
        # Bloom filter: presence matches the knob; no false negatives.
        if self.bloom_bits_per_key > 0:
            if run.bloom is None or not run.bloom_blocks:
                violations.append(f"{label}: Bloom filter missing despite knob")
            else:
                misses = [key for key in keys if not run.bloom.may_contain(key)]
                if misses:
                    violations.append(
                        f"{label}: Bloom false negatives for keys {misses[:5]}"
                    )
        elif run.bloom is not None or run.bloom_blocks:
            violations.append(f"{label}: Bloom filter present despite knob 0")
        return records

    def _drain_run(self, run: _Run) -> List[Tuple[int, object]]:
        """Read a run's records (charged) and free all its blocks."""
        records: List[Tuple[int, object]] = []
        for block_id in run.data_blocks:
            records.extend(self.device.read(block_id))
            self.device.free(block_id)
        for block_id in run.fence_blocks + run.bloom_blocks:
            self.device.free(block_id)
        return records

    @spanned("lsm.probe")
    def _probe_run(self, run: _Run, key: int) -> Tuple[bool, object]:
        """(found, value) for ``key`` in one run, charging filter I/O."""
        if key < run.min_key or key > run.max_key:
            return False, None
        if run.bloom is not None:
            if not self._consult_bloom(run, key):
                return False, None
        # Fence search: directory (memory) -> one fence block read.
        fence_index = bisect.bisect_right(run.fence_directory, key) - 1
        fence_index = max(0, fence_index)
        fences = self.device.read(run.fence_blocks[fence_index])
        position = bisect.bisect_right(fences, key) - 1
        position = max(0, position)
        data_index = fence_index * self._fences_per_block + position
        records = self.device.read(run.data_blocks[data_index])
        keys = [record_key for record_key, _ in records]
        index = bisect.bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            return True, records[index][1]
        return False, None

    def _scan_run(self, run: _Run, lo: int, hi: int) -> List[Tuple[int, object]]:
        if hi < run.min_key or lo > run.max_key:
            return []
        fence_index = max(0, bisect.bisect_right(run.fence_directory, lo) - 1)
        fences = self.device.read(run.fence_blocks[fence_index])
        position = max(0, bisect.bisect_right(fences, lo) - 1)
        data_index = fence_index * self._fences_per_block + position
        matches: List[Tuple[int, object]] = []
        for block_index in range(data_index, len(run.data_blocks)):
            records = self.device.read(run.data_blocks[block_index])
            if records and records[0][0] > hi:
                break
            matches.extend(
                (key, value) for key, value in records if lo <= key <= hi
            )
            if records and records[-1][0] > hi:
                break
        return matches

    @spanned("lsm.bloom_probe")
    def _consult_bloom(self, run: _Run, key: int) -> bool:
        """Consult the filter: one block read (pick the chunk the key's
        first bit position falls into, as a partitioned filter would)."""
        chunk = self._bloom_chunk_for(run, key)
        self.device.read(run.bloom_blocks[chunk])
        return run.bloom.may_contain(key)

    def _bloom_chunk_for(self, run: _Run, key: int) -> int:
        if len(run.bloom_blocks) == 1:
            return 0
        return hash(key) % len(run.bloom_blocks)
