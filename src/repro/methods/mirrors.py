"""Fractured mirrors — multiple physical layouts of the same data.

Section 1 of the paper: "the read cost can be minimized by storing data
in multiple different physical layouts [4, 17, 46], each layout being
appropriate for minimizing the read cost for a particular workload.
Update and space costs, however, increase because now there are
multiple data copies."  (Reference 46 is Ramamurthy et al.'s *fractured
mirrors*.)

:class:`FracturedMirrors` keeps two complete replicas on one device:

* a **hash mirror** — O(1) point probes;
* a **tree mirror** (B+-Tree) — ordered, range-fast.

Every read routes to the mirror built for it (point -> hash, range ->
tree); every write applies to *both* mirrors, doubling the update
overhead; both copies occupy space, roughly doubling the memory
overhead.  The E18 benchmark verifies all three effects — the purest
possible demonstration of buying R with U and M.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.methods.btree import BPlusTree
from repro.methods.hashindex import HashIndex
from repro.storage.device import SimulatedDevice


class FracturedMirrors(AccessMethod):
    """One logical relation, two physical layouts, reads pick their mirror."""

    name = "fractured-mirrors"
    capabilities = Capabilities(ordered=True, updatable=True)

    def __init__(self, device: Optional[SimulatedDevice] = None) -> None:
        super().__init__(device)
        self._hash_mirror = HashIndex(device=self.device)
        self._tree_mirror = BPlusTree(device=self.device)

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        records = list(items)
        self._hash_mirror.bulk_load(records)
        self._tree_mirror.bulk_load(list(records))
        self._record_count = len(self._tree_mirror)

    def get(self, key: int) -> Optional[int]:
        # Point reads route to the hash mirror: one bucket read.
        return self._hash_mirror.get(key)

    def range_query(self, lo: int, hi: int) -> List[Record]:
        # Range reads route to the ordered mirror.
        return self._tree_mirror.range_query(lo, hi)

    def insert(self, key: int, value: int) -> None:
        # Both copies pay: the defining cost of mirroring.
        self._tree_mirror.insert(key, value)  # raises on duplicates
        self._hash_mirror.insert(key, value)
        self._record_count += 1

    def update(self, key: int, value: int) -> None:
        self._tree_mirror.update(key, value)
        self._hash_mirror.update(key, value)

    def delete(self, key: int) -> None:
        self._tree_mirror.delete(key)
        self._hash_mirror.delete(key)
        self._record_count -= 1

    # ------------------------------------------------------------------
    def space_bytes(self) -> int:
        # Both mirrors live on the shared device; add the hash
        # directory's in-memory bytes the hash mirror accounts for.
        directory_bytes = self._hash_mirror.space_bytes() - self.device.allocated_bytes
        return self.device.allocated_bytes + max(0, directory_bytes)
