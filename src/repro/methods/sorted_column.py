"""Sorted column — the paper's Table 1 "Sorted column" row.

The base data kept fully sorted in a contiguous extent of blocks, with no
auxiliary structure.  Costs per Table 1:

* bulk creation O(N/B log_{MEM/B}(N/B)) (external sort; we charge the
  sort's I/O by writing sorted runs and merging them),
* index size O(1) (no auxiliary data),
* point query O(log2 N) (binary search over the extent),
* range query O(log2 N + m) (search + sequential scan),
* insert/delete O(N/B/2) expected (shift half the records),
* update-in-place O(log2 N) search + one block write.

The structure "adds structure to the data" rather than auxiliary data —
the paper's example that ordering itself trades update cost for read
cost.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.obs.spans import spanned
from repro.storage.device import SimulatedDevice
from repro.storage.layout import RECORD_BYTES, records_per_block


class SortedColumn(AccessMethod):
    """Fully sorted dense array of records over the device.

    Parameters
    ----------
    sort_memory_blocks:
        Size of the (simulated) sort buffer used during bulk load; the
        external merge sort's fan-in, the paper's MEM parameter.
    """

    name = "sorted-column"
    capabilities = Capabilities(ordered=True, updatable=True)

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        sort_memory_blocks: int = 64,
    ) -> None:
        super().__init__(device)
        if sort_memory_blocks < 2:
            raise ValueError("sort_memory_blocks must be at least 2")
        self._extent: List[int] = []
        self._per_block = records_per_block(self.device.block_bytes)
        self.sort_memory_blocks = sort_memory_blocks

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        records = self._external_sort(list(items))
        self._write_extent(records)
        self._record_count = len(records)

    def get(self, key: int) -> Optional[int]:
        block_index = self._search_block(key)
        if block_index is None:
            return None
        records = self.device.read(self._extent[block_index])
        index = self._find_in_block(records, key)
        if index is None:
            return None
        return records[index][1]

    def _get_many(self, keys: Iterable[int]) -> List[Optional[int]]:
        """Batched lookups: the block binary search of :meth:`get` with
        dispatch and span plumbing hoisted — midpoint blocks are read in
        the identical order."""
        extent = self._extent
        if not extent:
            return [None for _ in keys]
        read = self.device.read
        bisect_left = bisect.bisect_left
        last = len(extent) - 1
        out: List[Optional[int]] = []
        append = out.append
        for key in keys:
            lo, hi = 0, last
            while lo < hi:
                mid = (lo + hi) // 2
                records = read(extent[mid])
                if not records:
                    hi = mid
                elif records[-1][0] < key:
                    lo = mid + 1
                else:
                    hi = mid
            records = read(extent[lo])
            block_keys = [record_key for record_key, _ in records]
            index = bisect_left(block_keys, key)
            if index < len(block_keys) and block_keys[index] == key:
                append(records[index][1])
            else:
                append(None)
        return out

    def range_query(self, lo: int, hi: int) -> List[Record]:
        if not self._extent:
            return []
        start = self._search_block(lo)
        matches: List[Record] = []
        for block_index in range(start, len(self._extent)):
            records = self.device.read(self._extent[block_index])
            if records and records[0][0] > hi:
                break
            matches.extend(
                (key, value) for key, value in records if lo <= key <= hi
            )
            if records and records[-1][0] > hi:
                break
        return matches

    def insert(self, key: int, value: int) -> None:
        # Shift every record after the insertion point one slot right —
        # the linear update cost the paper attributes to sorted data.
        self._shift_insert(key, value)
        self._record_count += 1

    def update(self, key: int, value: int) -> None:
        block_index = self._search_block(key)
        if block_index is None:
            raise KeyError(key)
        block_id = self._extent[block_index]
        records = list(self.device.read(block_id))
        index = self._find_in_block(records, key)
        if index is None:
            raise KeyError(key)
        records[index] = (key, value)
        self._write_block(block_id, records)

    def delete(self, key: int) -> None:
        block_index = self._search_block(key)
        if block_index is None:
            raise KeyError(key)
        records = list(self.device.read(self._extent[block_index]))
        index = self._find_in_block(records, key)
        if index is None:
            raise KeyError(key)
        records.pop(index)
        self._compact_after_delete(block_index, records)
        self._record_count -= 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _external_sort(self, records: List[Record]) -> List[Record]:
        """Sort via simulated external merge sort, charging its I/O.

        Run generation writes sorted runs of ``sort_memory_blocks``
        blocks; merge passes with fan-in MEM/B - 1 read and rewrite all
        data, reproducing the O(N/B log_{MEM/B} N/B) bulk-load cost.
        """
        if not records:
            return []
        run_records = self.sort_memory_blocks * self._per_block
        runs: List[List[int]] = []
        for start in range(0, len(records), run_records):
            chunk = sorted(records[start : start + run_records], key=lambda r: r[0])
            runs.append(self._write_temp_run(chunk))
        fan_in = max(2, self.sort_memory_blocks - 1)
        while len(runs) > 1:
            merged_runs: List[List[int]] = []
            for start in range(0, len(runs), fan_in):
                group = runs[start : start + fan_in]
                merged_runs.append(self._merge_runs(group))
            runs = merged_runs
        final = self._read_and_free_run(runs[0])
        return self._sorted_unique(final)

    def _write_temp_run(self, records: List[Record]) -> List[int]:
        block_ids: List[int] = []
        for start in range(0, len(records), self._per_block):
            block_id = self.device.allocate(kind="sort-run")
            chunk = records[start : start + self._per_block]
            self._write_block(block_id, chunk)
            block_ids.append(block_id)
        return block_ids

    def _merge_runs(self, runs: List[List[int]]) -> List[int]:
        import heapq

        streams = [self._read_and_free_run(run) for run in runs]
        merged = list(heapq.merge(*streams, key=lambda r: r[0]))
        return self._write_temp_run(merged)

    def _read_and_free_run(self, run: List[int]) -> List[Record]:
        records: List[Record] = []
        for block_id in run:
            records.extend(self.device.read(block_id))
            self.device.free(block_id)
        return records

    def _write_extent(self, records: List[Record]) -> None:
        for start in range(0, len(records), self._per_block):
            block_id = self.device.allocate(kind="sorted")
            self._write_block(block_id, records[start : start + self._per_block])
            self._extent.append(block_id)

    @spanned("sorted.delete_compact")
    def _compact_after_delete(
        self, block_index: int, records: List[Record]
    ) -> None:
        """Shift everything after the hole one slot left, block by block."""
        for later in range(block_index + 1, len(self._extent)):
            later_records = list(self.device.read(self._extent[later]))
            if later_records:
                records.append(later_records.pop(0))
            self._write_block(self._extent[later - 1], records)
            records = later_records
        if records:
            self._write_block(self._extent[-1], records)
        else:
            # The trailing block just emptied: free it directly.  Writing
            # the empty payload first would charge a block write that
            # serves no purpose — free() already retires the block's
            # declared occupancy.
            self.device.free(self._extent.pop())

    @spanned("sorted.search")
    def _search_block(self, key: int) -> Optional[int]:
        """Binary search over blocks by reading midpoints.

        Returns the index of the first block whose max key is >= ``key``
        — the only block that can hold ``key``, and where a range scan
        starting at ``key`` must begin.  When ``key`` is above every
        stored key the *last* block's index is returned, so point
        callers must still verify membership inside the block (range
        callers scan an empty tail and stop).  ``None`` only when the
        extent is empty.  Charges one block read per probe: O(log2 N/B).
        """
        if not self._extent:
            return None
        lo, hi = 0, len(self._extent) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            records = self.device.read(self._extent[mid])
            if not records:
                hi = mid
                continue
            if records[-1][0] < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    @staticmethod
    def _find_in_block(records: List[Record], key: int) -> Optional[int]:
        keys = [record_key for record_key, _ in records]
        index = bisect.bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            return index
        return None

    @spanned("sorted.rewrite")
    def _shift_insert(self, key: int, value: int) -> None:
        if not self._extent:
            with self._fresh_block("sorted") as block_id:
                self._write_block(block_id, [(key, value)])
            self._extent.append(block_id)
            return
        block_index = self._search_block(key)
        carry: Optional[Record] = (key, value)
        for index in range(block_index, len(self._extent)):
            block_id = self._extent[index]
            records = list(self.device.read(block_id))
            keys = [record_key for record_key, _ in records]
            position = bisect.bisect_left(keys, carry[0])
            if position < len(keys) and keys[position] == carry[0]:
                raise ValueError(f"duplicate key {carry[0]}")
            records.insert(position, carry)
            if len(records) > self._per_block:
                carry = records.pop()
            else:
                carry = None
            self._write_block(block_id, records)
            if carry is None:
                return
        with self._fresh_block("sorted") as block_id:
            self._write_block(block_id, [carry])
        self._extent.append(block_id)

    def _write_block(self, block_id: int, records: List[Record]) -> None:
        self.device.write(block_id, records, used_bytes=len(records) * RECORD_BYTES)

    # ------------------------------------------------------------------
    # Invariant audit
    # ------------------------------------------------------------------
    def _audit_structure(self) -> List[str]:
        """Extent density: every block full except the trailing one,
        keys globally sorted, declared occupancy matching contents."""
        violations: List[str] = []
        device = self.device
        extent = set(self._extent)
        if len(extent) != len(self._extent):
            violations.append("extent lists a block id more than once")
        on_device = {
            block_id
            for block_id in device.iter_block_ids()
            if device.kind_of(block_id) == "sorted"
        }
        if on_device != extent:
            violations.append(
                f"extent/device mismatch: extent-only "
                f"{sorted(extent - on_device)}, device-only "
                f"{sorted(on_device - extent)}"
            )
        total = 0
        previous_key: Optional[int] = None
        last = len(self._extent) - 1
        for position, block_id in enumerate(self._extent):
            if block_id not in on_device:
                continue
            payload = device.peek(block_id)
            if not isinstance(payload, list):
                violations.append(
                    f"block {block_id}: payload {type(payload).__name__} "
                    f"is not a record list"
                )
                continue
            try:
                keys = [record[0] for record in payload]
            except (TypeError, IndexError):
                violations.append(f"block {block_id}: malformed records")
                continue
            if len(payload) > self._per_block:
                violations.append(
                    f"block {block_id}: {len(payload)} records exceed "
                    f"capacity {self._per_block}"
                )
            if position < last and len(payload) != self._per_block:
                violations.append(
                    f"block {block_id}: non-trailing block holds "
                    f"{len(payload)} records; density requires {self._per_block}"
                )
            if position == last and not payload:
                violations.append(f"block {block_id}: empty trailing block not freed")
            declared = device.used_bytes_of(block_id)
            if declared != len(payload) * RECORD_BYTES:
                violations.append(
                    f"block {block_id}: declared {declared}B != "
                    f"{len(payload)} records x {RECORD_BYTES}B"
                )
            for key in keys:
                if previous_key is not None and key <= previous_key:
                    violations.append(
                        f"block {block_id}: key {key} out of order "
                        f"(follows {previous_key})"
                    )
                previous_key = key
            total += len(payload)
        if total != self._record_count:
            violations.append(
                f"extent holds {total} records, record count says "
                f"{self._record_count}"
            )
        return violations
