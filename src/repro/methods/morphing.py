"""Morphing access method — Section 5's "combining multiple shapes".

The paper's roadmap proposes "morphing access methods, combining
multiple shapes at once" and "adding structure to data gradually with
incoming queries, and building supporting index structures when further
data reorganization becomes infeasible".

:class:`MorphingMethod` holds its data in one of three *shapes* and
migrates between them based on the operation mix it observes:

* ``"log"`` — an unsorted heap: optimal ingest, scan reads;
* ``"sorted"`` — a sorted column: log-time reads, linear updates, no
  auxiliary space;
* ``"indexed"`` — a B+-Tree: fastest reads, paying space and per-update
  block writes.

Writes pull the structure toward ``log``; reads push it toward
``sorted`` and then ``indexed``.  A morph is a full reorganization whose
I/O is charged to the operation that triggered it — amortized over the
window that justified it, exactly like adaptive indexing's
queries-pay-for-structure discipline.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.methods.btree import BPlusTree
from repro.methods.sorted_column import SortedColumn
from repro.methods.unsorted_column import UnsortedColumn
from repro.storage.device import SimulatedDevice

#: Shape escalation order, write-friendly to read-friendly.
SHAPES = ("log", "sorted", "indexed")


class MorphingMethod(AccessMethod):
    """A structure that changes shape with the workload.

    Parameters
    ----------
    initial_shape:
        One of ``"log"``, ``"sorted"``, ``"indexed"``.
    window:
        Operations between morph decisions.
    read_threshold:
        Read fraction above which the shape escalates toward
        read-optimized; below ``1 - read_threshold`` it de-escalates.
    """

    name = "morphing"
    capabilities = Capabilities(
        ordered=True, updatable=True, adaptive=True, checks_duplicates=False
    )

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        initial_shape: str = "log",
        window: int = 200,
        read_threshold: float = 0.6,
    ) -> None:
        super().__init__(device)
        if initial_shape not in SHAPES:
            raise ValueError(f"initial_shape must be one of {SHAPES}")
        if window < 1:
            raise ValueError("window must be positive")
        if not 0.5 <= read_threshold <= 1.0:
            raise ValueError("read_threshold must be in [0.5, 1.0]")
        self.window = window
        self.read_threshold = read_threshold
        self._shape = initial_shape
        self._inner = self._make_inner(initial_shape)
        self._reads = 0
        self._writes = 0
        self._since_decision = 0
        self.morph_history: List[str] = [initial_shape]

    # ------------------------------------------------------------------
    @property
    def shape(self) -> str:
        return self._shape

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        self._inner.bulk_load(items)
        self._record_count = len(self._inner)

    def get(self, key: int) -> Optional[int]:
        self._observe(read=True)
        return self._inner.get(key)

    def range_query(self, lo: int, hi: int) -> List[Record]:
        self._observe(read=True)
        return self._inner.range_query(lo, hi)

    def insert(self, key: int, value: int) -> None:
        self._observe(read=False)
        self._inner.insert(key, value)
        self._record_count += 1

    def update(self, key: int, value: int) -> None:
        self._observe(read=False)
        self._inner.update(key, value)

    def delete(self, key: int) -> None:
        self._observe(read=False)
        self._inner.delete(key)
        self._record_count -= 1

    def flush(self) -> None:
        self._inner.flush()

    def space_bytes(self) -> int:
        return self._inner.space_bytes()

    # ------------------------------------------------------------------
    def morph_to(self, shape: str) -> None:
        """Reorganize into ``shape`` now (also callable explicitly)."""
        if shape not in SHAPES:
            raise ValueError(f"unknown shape {shape!r}")
        if shape == self._shape:
            return
        records = self._inner.range_query(-(1 << 62), 1 << 62)
        self._free_inner()
        self._shape = shape
        self._inner = self._make_inner(shape)
        self._inner.bulk_load(records)
        self.morph_history.append(shape)

    # ------------------------------------------------------------------
    def _observe(self, read: bool) -> None:
        if read:
            self._reads += 1
        else:
            self._writes += 1
        self._since_decision += 1
        if self._since_decision >= self.window:
            self._decide()
            self._reads = 0
            self._writes = 0
            self._since_decision = 0

    def _decide(self) -> None:
        total = self._reads + self._writes
        if total == 0:
            return
        read_fraction = self._reads / total
        index = SHAPES.index(self._shape)
        if read_fraction >= self.read_threshold and index < len(SHAPES) - 1:
            self.morph_to(SHAPES[index + 1])
        elif read_fraction <= 1.0 - self.read_threshold and index > 0:
            self.morph_to(SHAPES[index - 1])

    def _make_inner(self, shape: str) -> AccessMethod:
        if shape == "log":
            return UnsortedColumn(self.device)
        if shape == "sorted":
            return SortedColumn(self.device)
        return BPlusTree(self.device)

    def _free_inner(self) -> None:
        """Release every block the inner structure holds."""
        inner = self._inner
        if isinstance(inner, BPlusTree):
            root = inner._root
            if root is not None:
                stack = [root]
                while stack:
                    block_id = stack.pop()
                    node = self.device.peek(block_id)
                    children = getattr(node, "children", None)
                    if children:
                        stack.extend(children)
                    self.device.free(block_id)
        elif isinstance(inner, (UnsortedColumn, SortedColumn)):
            for block_id in list(inner._extent):
                self.device.free(block_id)
