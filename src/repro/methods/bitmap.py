"""Bitmap index with WAH compression and an update-friendly variant.

The paper invokes bitmap indexes twice: compressed bitmaps are its prime
example of trading *computation* for space ("the use of compression in
bitmap indexes", Section 1), and "update-friendly bitmap indexes, where
updates are absorbed using additional, highly compressible, bitvectors
which are gradually merged" is one of its Section-5 RUM-aware designs.
Both are implemented here:

* :class:`BitVector` — plain uncompressed bitset.
* :class:`WAHBitVector` — Word-Aligned Hybrid compression (the FastBit
  scheme): 31-bit literal words and run-length fill words.
* :class:`BitmapIndex` — a low-cardinality secondary index over a base
  row store: one bitmap per distinct value, an existence bitmap for
  deletes, and (in update-friendly mode) per-value *delta* bitvectors
  that absorb updates and merge when they grow.

The benchmark E10 compares compressed vs uncompressed space and the cost
of value lookups; the update-friendly mode is the E10 companion ablation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.storage.device import SimulatedDevice
from repro.storage.layout import RECORD_BYTES, records_per_block

_WORD_BITS = 31  # payload bits per WAH word (1 flag bit + 31 data bits)


class BitVector:
    """A growable uncompressed bitset."""

    def __init__(self) -> None:
        self._bits = bytearray()
        self.length = 0

    def set(self, position: int, value: bool = True) -> None:
        """Set (or with value=False, clear) one bit."""
        if position < 0:
            raise ValueError("bit positions are non-negative")
        byte = position >> 3
        while byte >= len(self._bits):
            self._bits.append(0)
        if value:
            self._bits[byte] |= 1 << (position & 7)
        else:
            self._bits[byte] &= ~(1 << (position & 7))
        self.length = max(self.length, position + 1)

    def get(self, position: int) -> bool:
        """Whether the bit at ``position`` is set."""
        byte = position >> 3
        if byte >= len(self._bits):
            return False
        return bool(self._bits[byte] & (1 << (position & 7)))

    def positions(self) -> List[int]:
        """Sorted list of set-bit positions."""
        result = []
        for byte_index, byte in enumerate(self._bits):
            if not byte:
                continue
            base = byte_index << 3
            for bit in range(8):
                if byte & (1 << bit):
                    result.append(base + bit)
        return result

    def count(self) -> int:
        """Number of set bits."""
        return sum(bin(byte).count("1") for byte in self._bits)

    @property
    def size_bytes(self) -> int:
        return len(self._bits)


class WAHBitVector:
    """Word-Aligned Hybrid compressed bitvector (Wu et al., FastBit).

    Encoding: a list of 32-bit words.  A *literal* word stores 31 raw
    bits; a *fill* word stores a run of identical 31-bit groups (bit
    value + run length).  Long runs of zeros — the common case for
    low-cardinality bitmaps — compress to a single word.
    """

    def __init__(self) -> None:
        # Decoded model: sorted set of positions, plus the encoded form
        # regenerated lazily.  Encoding is what space accounting uses;
        # operations decode/re-encode, charging the CPU the paper notes.
        self._positions: Set[int] = set()
        self.length = 0

    def set(self, position: int, value: bool = True) -> None:
        """Set (or with value=False, clear) one bit."""
        if position < 0:
            raise ValueError("bit positions are non-negative")
        if value:
            self._positions.add(position)
        else:
            self._positions.discard(position)
        self.length = max(self.length, position + 1)

    def get(self, position: int) -> bool:
        """Whether the bit at ``position`` is set."""
        return position in self._positions

    def positions(self) -> List[int]:
        """Sorted list of set-bit positions."""
        return sorted(self._positions)

    def count(self) -> int:
        """Number of set bits."""
        return len(self._positions)

    def encode(self) -> List[int]:
        """Produce the WAH word stream for the current contents."""
        words: List[int] = []
        total_groups = (self.length + _WORD_BITS - 1) // _WORD_BITS or 0
        positions = self.positions()
        cursor = 0
        pending_fill_bit: Optional[int] = None
        pending_fill_len = 0

        def flush_fill() -> None:
            nonlocal pending_fill_bit, pending_fill_len
            if pending_fill_len:
                # Fill word: top bit 1, next bit the fill value, rest length.
                words.append(
                    (1 << 31) | (pending_fill_bit << 30) | pending_fill_len
                )
                pending_fill_bit = None
                pending_fill_len = 0

        for group in range(total_groups):
            group_lo = group * _WORD_BITS
            group_hi = group_lo + _WORD_BITS
            literal = 0
            while cursor < len(positions) and positions[cursor] < group_hi:
                literal |= 1 << (positions[cursor] - group_lo)
                cursor += 1
            if literal == 0:
                if pending_fill_bit == 0:
                    pending_fill_len += 1
                else:
                    flush_fill()
                    pending_fill_bit, pending_fill_len = 0, 1
            elif literal == (1 << _WORD_BITS) - 1:
                if pending_fill_bit == 1:
                    pending_fill_len += 1
                else:
                    flush_fill()
                    pending_fill_bit, pending_fill_len = 1, 1
            else:
                flush_fill()
                words.append(literal)
        flush_fill()
        return words

    @classmethod
    def decode(cls, words: List[int], length: int) -> "WAHBitVector":
        """Rebuild a bitvector from its WAH word stream."""
        vector = cls()
        group = 0
        for word in words:
            if word >> 31:
                fill_bit = (word >> 30) & 1
                run = word & ((1 << 30) - 1)
                if fill_bit:
                    for g in range(group, group + run):
                        base = g * _WORD_BITS
                        for bit in range(_WORD_BITS):
                            vector._positions.add(base + bit)
                group += run
            else:
                base = group * _WORD_BITS
                for bit in range(_WORD_BITS):
                    if word & (1 << bit):
                        vector._positions.add(base + bit)
                group += 1
        vector.length = length
        # Trim phantom bits beyond the logical length.
        vector._positions = {p for p in vector._positions if p < length}
        return vector

    @property
    def size_bytes(self) -> int:
        return 4 * len(self.encode())


class BitmapIndex(AccessMethod):
    """Secondary bitmap index over an append-ordered base row store.

    The *key* is the record id; the *value* is the indexed low-cardinality
    attribute.  Besides the standard :class:`AccessMethod` operations, the
    class offers :meth:`lookup_value` — the query bitmaps exist for.

    Parameters
    ----------
    compressed:
        Use WAH-compressed bitmaps (True) or plain bitsets (False) —
        the E10 ablation switch.
    update_friendly:
        Absorb bit changes into small per-value delta vectors, merging
        them into the main bitmap only when they exceed
        ``delta_merge_bits`` set bits (the paper's Section-5 design).
    """

    name = "bitmap"
    capabilities = Capabilities(ordered=False, updatable=True, checks_duplicates=False)
    # WAH compression can legitimately pack records below RECORD_BYTES
    # apiece, so the generic space-covers-records audit does not apply.
    audit_space_covers_records = False

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        compressed: bool = True,
        update_friendly: bool = False,
        delta_merge_bits: int = 64,
    ) -> None:
        super().__init__(device)
        self.compressed = compressed
        self.update_friendly = update_friendly
        self.delta_merge_bits = delta_merge_bits
        self._per_block = records_per_block(self.device.block_bytes)
        self._base_blocks: List[int] = []
        self._rows = 0  # total row slots, including dead rows
        self._vectors: Dict[int, object] = {}  # value -> bitmap
        self._deltas: Dict[int, Tuple[BitVector, BitVector]] = {}  # (sets, clears)
        self._live = self._new_vector()  # existence bitmap
        self._bitmap_blocks: Dict[int, List[int]] = {}  # value -> device blocks
        self._free_positions: List[int] = []  # row slots vacated by deletes

    # ------------------------------------------------------------------
    # AccessMethod operations (key = record id)
    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        rows = list(items)
        for start in range(0, len(rows), self._per_block):
            chunk = rows[start : start + self._per_block]
            block_id = self.device.allocate(kind="bitmap-base")
            self.device.write(block_id, chunk, used_bytes=len(chunk) * RECORD_BYTES)
            self._base_blocks.append(block_id)
        for position, (key, value) in enumerate(rows):
            # Bulk bits go straight into the main bitmaps (no deltas).
            if value not in self._vectors:
                self._vectors[value] = self._new_vector()
            self._vectors[value].set(position, True)
            self._live.set(position, True)
        self._rows = len(rows)
        self._record_count = self._rows
        self._materialize_all()

    def get(self, key: int) -> Optional[int]:
        position = self._position_of(key)
        if position is None:
            return None
        row = self._read_row(position)
        return row[1] if row is not None else None

    def range_query(self, lo: int, hi: int) -> List[Record]:
        matches: List[Record] = []
        for block_index, block_id in enumerate(self._base_blocks):
            rows = self.device.read(block_id)
            base = block_index * self._per_block
            for offset, row in enumerate(rows):
                if row is None:
                    continue
                key, value = row
                if lo <= key <= hi and self._is_live(base + offset):
                    matches.append((key, value))
        matches.sort(key=lambda record: record[0])
        return matches

    def insert(self, key: int, value: int) -> None:
        # Reuse a slot vacated by a delete before growing the row store,
        # keeping the footprint bounded under churn.
        if self._free_positions:
            position = self._free_positions.pop()
            self._write_row(position, (key, value))
        else:
            position = self._append_row(key, value)
        self._record_count += 1
        self._set_bit(value, position, True)
        self._live.set(position, True)
        self._materialize(value)

    def update(self, key: int, value: int) -> None:
        position = self._position_of(key)
        if position is None:
            raise KeyError(key)
        row = self._read_row(position)
        old_value = row[1]
        self._write_row(position, (key, value))
        if old_value != value:
            self._set_bit(old_value, position, False)
            self._set_bit(value, position, True)
            self._materialize(old_value)
            self._materialize(value)

    def delete(self, key: int) -> None:
        position = self._position_of(key)
        if position is None:
            raise KeyError(key)
        row = self._read_row(position)
        self._set_bit(row[1], position, False)
        self._live.set(position, False)
        self._write_row(position, None)
        self._free_positions.append(position)
        self._record_count -= 1
        self._materialize(row[1])

    # ------------------------------------------------------------------
    # The bitmap query
    # ------------------------------------------------------------------
    def lookup_value(self, value: int) -> List[Record]:
        """All live records whose attribute equals ``value``.

        Reads the value's bitmap blocks, then exactly the base blocks
        holding matching rows — the bitmap read pattern.
        """
        for block_id in self._bitmap_blocks.get(value, []):
            self.device.read(block_id)
        positions = self._effective_positions(value)
        matches: List[Record] = []
        touched_blocks: Dict[int, List] = {}
        for position in positions:
            block_index = position // self._per_block
            if block_index not in touched_blocks:
                touched_blocks[block_index] = self.device.read(
                    self._base_blocks[block_index]
                )
            row = touched_blocks[block_index][position % self._per_block]
            if row is not None:
                matches.append(row)
        matches.sort(key=lambda record: record[0])
        return matches

    def distinct_values(self) -> List[int]:
        """Attribute values that currently have a bitmap."""
        return sorted(self._vectors)

    def bitmap_bytes(self) -> int:
        """Space of all bitmaps (compressed size when compression is on)."""
        total = sum(vector.size_bytes for vector in self._vectors.values())
        total += self._live.size_bytes
        for sets, clears in self._deltas.values():
            total += sets.size_bytes + clears.size_bytes
        return total

    def space_bytes(self) -> int:
        return self.device.allocated_bytes

    # ------------------------------------------------------------------
    # Bit maintenance
    # ------------------------------------------------------------------
    def _new_vector(self):
        return WAHBitVector() if self.compressed else BitVector()

    def _set_bit(self, value: int, position: int, bit: bool) -> None:
        if value not in self._vectors:
            self._vectors[value] = self._new_vector()
        if self.update_friendly:
            sets, clears = self._deltas.setdefault(
                value, (BitVector(), BitVector())
            )
            if bit:
                sets.set(position, True)
                clears.set(position, False)
            else:
                clears.set(position, True)
                sets.set(position, False)
            if sets.count() + clears.count() >= self.delta_merge_bits:
                self._merge_delta(value)
        else:
            self._vectors[value].set(position, bit)

    def _merge_delta(self, value: int) -> None:
        sets, clears = self._deltas.pop(value, (BitVector(), BitVector()))
        vector = self._vectors[value]
        for position in sets.positions():
            vector.set(position, True)
        for position in clears.positions():
            vector.set(position, False)

    def merge_all_deltas(self) -> None:
        """Fold every pending delta into its main bitmap."""
        for value in list(self._deltas):
            self._merge_delta(value)
            self._materialize(value)

    def _effective_positions(self, value: int) -> List[int]:
        vector = self._vectors.get(value)
        base = set(vector.positions()) if vector is not None else set()
        delta = self._deltas.get(value)
        if delta is not None:
            sets, clears = delta
            base |= set(sets.positions())
            base -= set(clears.positions())
        return sorted(position for position in base if self._is_live(position))

    def _is_live(self, position: int) -> bool:
        return self._live.get(position)

    # ------------------------------------------------------------------
    # Device materialization of bitmaps
    # ------------------------------------------------------------------
    def _materialize(self, value: int) -> None:
        """Write a bitmap's bytes to device blocks (space + write I/O).

        A bitmap left with no set bits and no pending deltas is dropped
        entirely — its blocks are freed, so churn over many distinct
        values cannot leak space.
        """
        vector = self._vectors.get(value)
        if vector is None:
            return
        delta = self._deltas.get(value)
        if vector.count() == 0 and delta is None:
            for block_id in self._bitmap_blocks.pop(value, []):
                self.device.free(block_id)
            del self._vectors[value]
            return
        payload_bytes = vector.size_bytes
        if delta is not None:
            payload_bytes += delta[0].size_bytes + delta[1].size_bytes
        needed = max(1, -(-payload_bytes // self.device.block_bytes))
        blocks = self._bitmap_blocks.setdefault(value, [])
        while len(blocks) < needed:
            blocks.append(self.device.allocate(kind="bitmap"))
        while len(blocks) > needed:
            self.device.free(blocks.pop())
        remaining = payload_bytes
        for block_id in blocks:
            chunk = min(remaining, self.device.block_bytes)
            self.device.write(block_id, ("bitmap", value), used_bytes=chunk)
            remaining -= chunk

    def _materialize_all(self) -> None:
        for value in self._vectors:
            self._materialize(value)

    # ------------------------------------------------------------------
    # Base row store
    # ------------------------------------------------------------------
    def _append_row(self, key: int, value: int) -> int:
        position = self._rows
        block_index = position // self._per_block
        if block_index >= len(self._base_blocks):
            block_id = self.device.allocate(kind="bitmap-base")
            self.device.write(block_id, [], used_bytes=0)
            self._base_blocks.append(block_id)
        rows = list(self.device.read(self._base_blocks[block_index]))
        rows.append((key, value))
        self.device.write(
            self._base_blocks[block_index],
            rows,
            used_bytes=len(rows) * RECORD_BYTES,
        )
        self._rows += 1
        return position

    def _position_of(self, key: int) -> Optional[int]:
        for block_index, block_id in enumerate(self._base_blocks):
            rows = self.device.read(block_id)
            for offset, row in enumerate(rows):
                if row is not None and row[0] == key:
                    position = block_index * self._per_block + offset
                    if self._is_live(position):
                        return position
        return None

    def _read_row(self, position: int):
        block_index = position // self._per_block
        rows = self.device.read(self._base_blocks[block_index])
        return rows[position % self._per_block]

    def _write_row(self, position: int, row) -> None:
        block_index = position // self._per_block
        block_id = self._base_blocks[block_index]
        rows = list(self.device.read(block_id))
        rows[position % self._per_block] = row
        live_rows = sum(1 for r in rows if r is not None)
        self.device.write(block_id, rows, used_bytes=live_rows * RECORD_BYTES)
