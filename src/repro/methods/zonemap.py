"""ZoneMaps — the paper's Table 1 sparse index.

Netezza-style zone maps: the base data lives in fixed-size partitions of
``P`` records; an auxiliary synopsis stores (min, max, count) per
partition.  The synopsis is tiny — O(N/P/B) blocks — which is why
Table 1 lists zone maps as the smallest index, with *every* operation
costing O(N/P/B): a query or update must consult the synopsis blocks and
then touch qualifying partitions.

Zone maps shine when data is clustered on the indexed key (each key range
maps to few partitions) and degrade toward full scans when partitions'
key ranges all overlap.  Both regimes are exercised by the benchmarks.

The base data here is kept partition-sorted after bulk load (globally
sorted input => disjoint zone ranges, the paper's "best case ... only a
single partition needs to be read or updated").  Inserts go to the last
partition and widen its zone, gradually degrading clustering — the
realistic behaviour the Figure-1 placement relies on.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Optional

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.filters.zonefilter import ZoneEntry, ZoneSynopsis
from repro.obs.spans import spanned
from repro.storage.device import SimulatedDevice
from repro.storage.layout import RECORD_BYTES, records_per_block

#: Bytes of one serialized zone entry (min, max, count).
ZONE_ENTRY_BYTES = 24


class ZoneMapColumn(AccessMethod):
    """Partitioned column with a block-resident zone synopsis.

    Parameters
    ----------
    partition_records:
        Records per partition — the paper's parameter P.  Larger P means
        a smaller synopsis (lower MO) but coarser pruning (higher RO):
        the knob that moves zone maps along the M-R edge of the triangle.
    """

    name = "zonemap"
    capabilities = Capabilities(ordered=True, updatable=True, checks_duplicates=False)

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        partition_records: int = 1024,
    ) -> None:
        super().__init__(device)
        if partition_records < 1:
            raise ValueError("partition_records must be positive")
        self.partition_records = partition_records
        self._per_block = records_per_block(self.device.block_bytes)
        self._entries_per_meta_block = max(
            1, self.device.block_bytes // ZONE_ENTRY_BYTES
        )
        self._partitions: List[List[int]] = []  # block ids per partition
        self._partition_counts: List[int] = []
        self._synopsis = ZoneSynopsis()
        self._meta_blocks: List[int] = []

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        records = self._sorted_unique(items)
        for start in range(0, len(records), self.partition_records):
            chunk = records[start : start + self.partition_records]
            self._append_partition(chunk)
        self._record_count = len(records)
        self._rewrite_synopsis()

    def get(self, key: int) -> Optional[int]:
        candidates = self._consult_synopsis_for_key(key)
        for partition_index in candidates:
            records = self._read_partition(partition_index)
            index = self._find(records, key)
            if index is not None:
                return records[index][1]
        return None

    def range_query(self, lo: int, hi: int) -> List[Record]:
        candidates = self._consult_synopsis_for_range(lo, hi)
        matches: List[Record] = []
        for partition_index in candidates:
            records = self._read_partition(partition_index)
            matches.extend(
                (key, value) for key, value in records if lo <= key <= hi
            )
        matches.sort(key=lambda record: record[0])
        return matches

    def insert(self, key: int, value: int) -> None:
        if not self._partitions or self._partition_counts[-1] >= self.partition_records:
            self._append_partition([(key, value)])
        else:
            partition_index = len(self._partitions) - 1
            records = self._read_partition(partition_index)
            bisect.insort(records, (key, value))
            self._write_partition(partition_index, records)
            entry = self._synopsis.zone(partition_index)
            if entry is not None:
                entry.widen(key)
                entry.count += 1
            else:
                # The partition had been emptied by deletes and its zone
                # cleared; a fresh insert must re-establish the synopsis
                # or the record becomes invisible to pruning.
                self._synopsis.set_zone(
                    partition_index, ZoneSynopsis.entry_for(records)
                )
            self._rewrite_synopsis_block(partition_index)
        self._record_count += 1

    def update(self, key: int, value: int) -> None:
        candidates = self._consult_synopsis_for_key(key)
        for partition_index in candidates:
            records = self._read_partition(partition_index)
            index = self._find(records, key)
            if index is not None:
                records[index] = (key, value)
                self._write_partition(partition_index, records)
                return
        raise KeyError(key)

    def delete(self, key: int) -> None:
        candidates = self._consult_synopsis_for_key(key)
        for partition_index in candidates:
            records = self._read_partition(partition_index)
            index = self._find(records, key)
            if index is not None:
                records.pop(index)
                self._write_partition(partition_index, records)
                self._refresh_zone(partition_index, records)
                self._record_count -= 1
                return
        raise KeyError(key)

    # ------------------------------------------------------------------
    # Partition storage
    # ------------------------------------------------------------------
    def _append_partition(self, records: List[Record]) -> None:
        block_ids: List[int] = []
        for start in range(0, max(len(records), 1), self._per_block):
            block_ids.append(self.device.allocate(kind="partition"))
        self._partitions.append(block_ids)
        self._partition_counts.append(0)
        self._write_partition(len(self._partitions) - 1, records)
        self._synopsis.set_zone(
            len(self._partitions) - 1, ZoneSynopsis.entry_for(records)
        )
        self._rewrite_synopsis_block(len(self._partitions) - 1)

    @spanned("zonemap.scan")
    def _read_partition(self, partition_index: int) -> List[Record]:
        records: List[Record] = []
        for block_id in self._partitions[partition_index]:
            payload = self.device.read(block_id)
            if payload:
                records.extend(payload)
        return records

    def _write_partition(self, partition_index: int, records: List[Record]) -> None:
        block_ids = self._partitions[partition_index]
        needed = max(1, -(-len(records) // self._per_block))
        while len(block_ids) < needed:
            block_ids.append(self.device.allocate(kind="partition"))
        while len(block_ids) > needed:
            self.device.free(block_ids.pop())
        for index, block_id in enumerate(block_ids):
            chunk = records[index * self._per_block : (index + 1) * self._per_block]
            self.device.write(block_id, chunk, used_bytes=len(chunk) * RECORD_BYTES)
        self._partition_counts[partition_index] = len(records)

    # ------------------------------------------------------------------
    # Synopsis storage: zone entries packed into meta blocks.  Consulting
    # the synopsis reads every meta block — the O(N/P/B) term of Table 1.
    # ------------------------------------------------------------------
    def _rewrite_synopsis(self) -> None:
        needed = max(
            1,
            -(-len(self._partitions) // self._entries_per_meta_block),
        ) if self._partitions else 0
        while len(self._meta_blocks) < needed:
            self._meta_blocks.append(self.device.allocate(kind="zone-meta"))
        while len(self._meta_blocks) > needed:
            self.device.free(self._meta_blocks.pop())
        for meta_index, block_id in enumerate(self._meta_blocks):
            self._write_meta_block(meta_index)

    def _rewrite_synopsis_block(self, partition_index: int) -> None:
        meta_index = partition_index // self._entries_per_meta_block
        if meta_index >= len(self._meta_blocks):
            self._meta_blocks.append(self.device.allocate(kind="zone-meta"))
        self._write_meta_block(meta_index)

    def _write_meta_block(self, meta_index: int) -> None:
        start = meta_index * self._entries_per_meta_block
        end = min(start + self._entries_per_meta_block, len(self._partitions))
        entries = [self._synopsis.zone(i) for i in range(start, end)]
        self.device.write(
            self._meta_blocks[meta_index],
            entries,
            used_bytes=len(entries) * ZONE_ENTRY_BYTES,
        )

    @spanned("zonemap.prune")
    def _consult_synopsis_for_key(self, key: int) -> List[int]:
        candidates: List[int] = []
        for meta_index, block_id in enumerate(self._meta_blocks):
            entries = self.device.read(block_id) or []
            base = meta_index * self._entries_per_meta_block
            for offset, entry in enumerate(entries):
                if entry is not None and entry.may_contain(key):
                    candidates.append(base + offset)
        return candidates

    @spanned("zonemap.prune")
    def _consult_synopsis_for_range(self, lo: int, hi: int) -> List[int]:
        candidates: List[int] = []
        for meta_index, block_id in enumerate(self._meta_blocks):
            entries = self.device.read(block_id) or []
            base = meta_index * self._entries_per_meta_block
            for offset, entry in enumerate(entries):
                if entry is not None and entry.overlaps(lo, hi):
                    candidates.append(base + offset)
        return candidates

    def _refresh_zone(self, partition_index: int, records: List[Record]) -> None:
        self._synopsis.set_zone(partition_index, ZoneSynopsis.entry_for(records))
        self._rewrite_synopsis_block(partition_index)

    @staticmethod
    def _find(records: List[Record], key: int) -> Optional[int]:
        keys = [record_key for record_key, _ in records]
        index = bisect.bisect_left(keys, key)
        if index < len(keys) and keys[index] == key:
            return index
        return None

    # ------------------------------------------------------------------
    # Invariant audit
    # ------------------------------------------------------------------
    def _audit_structure(self) -> List[str]:
        """Zone bounds cover partition contents with exact counts, the
        block-resident synopsis mirrors the in-memory one, and partition
        block lists match the device."""
        violations: List[str] = []
        device = self.device
        referenced = [
            block_id for blocks in self._partitions for block_id in blocks
        ]
        if len(set(referenced)) != len(referenced):
            violations.append("partition block id referenced twice")
        on_device = {
            block_id
            for block_id in device.iter_block_ids()
            if device.kind_of(block_id) == "partition"
        }
        if on_device != set(referenced):
            violations.append(
                f"partition/device mismatch: partitions-only "
                f"{sorted(set(referenced) - on_device)}, device-only "
                f"{sorted(on_device - set(referenced))}"
            )
        meta_on_device = {
            block_id
            for block_id in device.iter_block_ids()
            if device.kind_of(block_id) == "zone-meta"
        }
        if meta_on_device != set(self._meta_blocks):
            violations.append(
                f"meta/device mismatch: meta-only "
                f"{sorted(set(self._meta_blocks) - meta_on_device)}, "
                f"device-only {sorted(meta_on_device - set(self._meta_blocks))}"
            )
        if len(self._partition_counts) != len(self._partitions):
            violations.append(
                f"{len(self._partition_counts)} partition counts for "
                f"{len(self._partitions)} partitions"
            )
        expected_meta = (
            max(1, -(-len(self._partitions) // self._entries_per_meta_block))
            if self._partitions
            else 0
        )
        if len(self._meta_blocks) != expected_meta:
            violations.append(
                f"{len(self._meta_blocks)} meta blocks, expected {expected_meta}"
            )
        total = 0
        for index, block_ids in enumerate(self._partitions):
            records: List[Record] = []
            intact = True
            for block_id in block_ids:
                if block_id not in on_device:
                    intact = False
                    continue
                payload = device.peek(block_id)
                if payload is None:
                    payload = []
                if not isinstance(payload, list):
                    violations.append(
                        f"partition {index}: block {block_id} payload is "
                        f"not a record list"
                    )
                    intact = False
                    continue
                if len(payload) > self._per_block:
                    violations.append(
                        f"partition {index}: block {block_id} holds "
                        f"{len(payload)} records, capacity {self._per_block}"
                    )
                declared = device.used_bytes_of(block_id)
                if declared != len(payload) * RECORD_BYTES:
                    violations.append(
                        f"partition {index}: block {block_id} declares "
                        f"{declared}B != {len(payload)} records x {RECORD_BYTES}B"
                    )
                records.extend(payload)
            count = (
                self._partition_counts[index]
                if index < len(self._partition_counts)
                else None
            )
            if count != len(records):
                violations.append(
                    f"partition {index}: holds {len(records)} records, "
                    f"count says {count}"
                )
            expected_blocks = max(1, -(-len(records) // self._per_block))
            if intact and len(block_ids) != expected_blocks:
                violations.append(
                    f"partition {index}: {len(block_ids)} blocks for "
                    f"{len(records)} records, expected {expected_blocks}"
                )
            try:
                keys = [key for key, _ in records]
            except (TypeError, ValueError):
                violations.append(f"partition {index}: malformed records")
                keys = []
            if keys != sorted(keys):
                violations.append(f"partition {index}: records not key-sorted")
            zone = self._synopsis.zone(index)
            if records:
                if zone is None:
                    violations.append(
                        f"partition {index}: no zone for a non-empty partition"
                    )
                elif keys:
                    if zone.min_key > min(keys) or zone.max_key < max(keys):
                        violations.append(
                            f"partition {index}: zone [{zone.min_key}, "
                            f"{zone.max_key}] does not cover contents "
                            f"[{min(keys)}, {max(keys)}]"
                        )
                    if zone.count != len(records):
                        violations.append(
                            f"partition {index}: zone count {zone.count} != "
                            f"{len(records)} records"
                        )
            elif zone is not None:
                violations.append(f"partition {index}: zone set for empty partition")
            total += len(records)
        if total != self._record_count:
            violations.append(
                f"partitions hold {total} records, record count says "
                f"{self._record_count}"
            )
        for meta_index, block_id in enumerate(self._meta_blocks):
            if block_id not in meta_on_device:
                continue
            start = meta_index * self._entries_per_meta_block
            end = min(start + self._entries_per_meta_block, len(self._partitions))
            expected = [self._synopsis.zone(i) for i in range(start, end)]
            if device.peek(block_id) != expected:
                violations.append(
                    f"meta block {block_id} disagrees with in-memory synopsis"
                )
            declared = device.used_bytes_of(block_id)
            if declared != len(expected) * ZONE_ENTRY_BYTES:
                violations.append(
                    f"meta block {block_id}: declared {declared}B != "
                    f"{len(expected)} entries x {ZONE_ENTRY_BYTES}B"
                )
        return violations

    # ------------------------------------------------------------------
    @property
    def partitions(self) -> int:
        return len(self._partitions)

    def synopsis_bytes(self) -> int:
        """Auxiliary-data footprint (for ablation reporting)."""
        return len(self._meta_blocks) * self.device.block_bytes
