"""Radix trie (Fredkin, CACM 1960) — fixed access cost via key digits.

A byte-digit trie over integer keys: each level consumes 8 bits of the
key, so a point lookup costs a fixed number of node accesses regardless
of N — the "fixed access cost" building block the paper lists alongside
hash tables.  The price is space: sparse interior nodes proliferate,
placing the trie high on the read-optimized / memory-hungry side of
Figure 1.

Each trie node is stored in a *block group*: one primary block plus
spill blocks when the node's entries outgrow a single device block (a
dense 256-way node is larger than most block sizes).  Reading or
writing a node touches its whole group, so I/O and space accounting
reflect real node sizes.  The trie deepens automatically when a key
needs more digits than the current root covers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.core.interfaces import AccessMethod, Capabilities, Record
from repro.obs.spans import spanned
from repro.storage.device import SimulatedDevice
from repro.storage.layout import POINTER_BYTES, RECORD_BYTES

#: Default digit width in bits when the block size does not suggest one.
DEFAULT_DIGIT_BITS = 8


def _fit_digit_bits(block_bytes: int) -> int:
    """Largest digit width whose full node fits one block.

    A leaf entry costs RECORD_BYTES + 1 tag byte; a full node has
    ``2**bits`` entries.  Real tries choose their radix to match the
    access granularity — a 256-ary node over 256-byte blocks would
    spill across ~17 blocks and ruin the trie's fixed read cost.
    """
    bits = 1
    while (1 << (bits + 1)) * (RECORD_BYTES + 1) <= block_bytes and bits < 8:
        bits += 1
    return bits


class RadixTrie(AccessMethod):
    """Fixed-radix trie with block-group nodes.

    Parameters
    ----------
    digit_bits:
        Bits of the key consumed per level.  Defaults to the widest
        radix whose full node fits one device block.
    """

    name = "trie"
    capabilities = Capabilities(ordered=True, updatable=True)

    def __init__(
        self,
        device: Optional[SimulatedDevice] = None,
        digit_bits: Optional[int] = None,
    ) -> None:
        super().__init__(device)
        if digit_bits is None:
            digit_bits = _fit_digit_bits(self.device.block_bytes)
        if not 1 <= digit_bits <= 16:
            raise ValueError("digit_bits must be in [1, 16]")
        self.digit_bits = digit_bits
        self.radix = 1 << digit_bits
        self._root: Optional[int] = None
        self._depth = 1  # digits consumed root -> leaf node
        self._spill: Dict[int, List[int]] = {}  # primary block -> spill blocks

    def _digits_needed(self, key: int) -> int:
        """Number of digits needed to address ``key`` (at least 1)."""
        if key < 0:
            raise ValueError("trie keys must be non-negative")
        digits = 1
        while key >= (1 << (self.digit_bits * digits)):
            digits += 1
        return digits

    # ------------------------------------------------------------------
    def bulk_load(self, items: Iterable[Record]) -> None:
        self._require_empty()
        for key, value in self._sorted_unique(items):
            self.insert(key, value)

    def get(self, key: int) -> Optional[int]:
        # Negative keys are simply not storable, hence absent.
        node_id = self._leaf_for(key)
        if node_id is None:
            return None
        leaf = self._read_node(node_id)
        entry = leaf.get(self._digit(key, 0))
        if entry is None or entry[0] != key:
            return None
        return entry[1]

    def range_query(self, lo: int, hi: int) -> List[Record]:
        if self._root is None or hi < 0:
            return []
        lo = max(lo, 0)
        matches: List[Record] = []
        self._collect(self._root, self._depth - 1, 0, lo, hi, matches)
        return matches

    def insert(self, key: int, value: int) -> None:
        self._ensure_depth(key)
        node_id = self._descend_for_insert(key)
        leaf = self._read_node(node_id)
        digit = self._digit(key, 0)
        if digit in leaf:
            raise ValueError(f"duplicate key {key}")
        leaf[digit] = (key, value)
        self._write_node(node_id, leaf, leaf=True)
        self._record_count += 1

    def update(self, key: int, value: int) -> None:
        node_id = self._leaf_for(key)
        if node_id is None:
            raise KeyError(key)
        leaf = self._read_node(node_id)
        digit = self._digit(key, 0)
        if digit not in leaf or leaf[digit][0] != key:
            raise KeyError(key)
        leaf[digit] = (key, value)
        self._write_node(node_id, leaf, leaf=True)

    def delete(self, key: int) -> None:
        # Walk down remembering the path so empty nodes can be pruned.
        if key < 0 or self._root is None or self._digits_needed(key) > self._depth:
            raise KeyError(key)
        node_id, path = self._descend_with_path(key)
        leaf = self._read_node(node_id)
        digit = self._digit(key, 0)
        if digit not in leaf or leaf[digit][0] != key:
            raise KeyError(key)
        del leaf[digit]
        self._write_node(node_id, leaf, leaf=True)
        self._record_count -= 1
        # Prune now-empty nodes bottom-up.
        child_empty = not leaf
        child_id = node_id
        for parent_id, parent_digit, parent_children in reversed(path):
            if not child_empty:
                break
            self._free_node(child_id)
            del parent_children[parent_digit]
            self._write_node(parent_id, parent_children, leaf=False)
            child_empty = not parent_children
            child_id = parent_id
        if child_empty and child_id == self._root:
            self._free_node(self._root)
            self._root = None
            self._depth = 1

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Digits consumed on a root-to-leaf walk."""
        return self._depth

    # ------------------------------------------------------------------
    # Block-group node storage
    # ------------------------------------------------------------------
    def _node_bytes(self, payload: Dict, leaf: bool) -> int:
        entry_bytes = (RECORD_BYTES if leaf else POINTER_BYTES) + 1
        return len(payload) * entry_bytes

    def _new_node(self) -> int:
        with self._fresh_block("trie-node") as block_id:
            self.device.write(block_id, {}, used_bytes=0)
        return block_id

    def _read_node(self, node_id: int) -> Dict:
        """Read a node's whole block group; returns the payload dict."""
        payload = self.device.read(node_id)
        for spill_id in self._spill.get(node_id, ()):
            self.device.read(spill_id)
        return payload

    def _write_node(self, node_id: int, payload: Dict, leaf: bool) -> None:
        """Write a node, growing/shrinking its spill group as needed."""
        total = self._node_bytes(payload, leaf)
        block = self.device.block_bytes
        spill_needed = max(0, -(-total // block) - 1)
        spills = self._spill.setdefault(node_id, [])
        while len(spills) < spill_needed:
            spills.append(self.device.allocate(kind="trie-spill"))
        while len(spills) > spill_needed:
            self.device.free(spills.pop())
        if not spills:
            del self._spill[node_id]
        self.device.write(node_id, payload, used_bytes=min(total, block))
        remaining = total - block
        for spill_id in spills:
            self.device.write(
                spill_id, ("trie-spill", node_id), used_bytes=min(remaining, block)
            )
            remaining -= block

    def _free_node(self, node_id: int) -> None:
        for spill_id in self._spill.pop(node_id, ()):
            self.device.free(spill_id)
        self.device.free(node_id)

    # ------------------------------------------------------------------
    # Invariant audit
    # ------------------------------------------------------------------
    def _audit_structure(self) -> List[str]:
        """Path consistency: every digit sits inside the radix, every
        leaf entry's key reconstructs from its root-to-leaf digit path,
        empty nodes are pruned, and spill groups match node sizes."""
        violations: List[str] = []
        device = self.device
        on_device_nodes = {
            block_id
            for block_id in device.iter_block_ids()
            if device.kind_of(block_id) == "trie-node"
        }
        on_device_spills = {
            block_id
            for block_id in device.iter_block_ids()
            if device.kind_of(block_id) == "trie-spill"
        }
        if self._root is None:
            if self._record_count:
                violations.append(
                    f"no root but record count says {self._record_count}"
                )
            if on_device_nodes or on_device_spills:
                violations.append(
                    f"no root but {len(on_device_nodes)} node and "
                    f"{len(on_device_spills)} spill blocks remain"
                )
            if self._spill:
                violations.append("no root but spill directory is non-empty")
            return violations

        reachable: set = set()
        block = device.block_bytes
        total = 0

        def walk(node_id: int, level: int, prefix: int) -> None:
            nonlocal total
            if node_id in reachable:
                violations.append(f"node {node_id} reachable twice (cycle)")
                return
            reachable.add(node_id)
            if node_id not in on_device_nodes:
                violations.append(f"node {node_id} missing from device")
                return
            payload = device.peek(node_id)
            if not isinstance(payload, dict):
                violations.append(
                    f"node {node_id} payload is not a digit map"
                )
                return
            if not payload:
                violations.append(f"empty node {node_id} was not pruned")
            leaf = level == 0
            node_total = self._node_bytes(payload, leaf)
            spill_needed = max(0, -(-node_total // block) - 1)
            spills = self._spill.get(node_id, [])
            if len(spills) != spill_needed:
                violations.append(
                    f"node {node_id} has {len(spills)} spill blocks, "
                    f"size {node_total}B needs {spill_needed}"
                )
            declared = device.used_bytes_of(node_id)
            if declared != min(node_total, block):
                violations.append(
                    f"node {node_id} declares {declared}B, payload "
                    f"says {min(node_total, block)}B"
                )
            for position, spill_id in enumerate(spills):
                if not device.is_allocated(spill_id):
                    violations.append(
                        f"node {node_id}: spill block {spill_id} not allocated"
                    )
                    continue
                expected = min(node_total - block * (position + 1), block)
                spill_declared = device.used_bytes_of(spill_id)
                if spill_declared != expected:
                    violations.append(
                        f"node {node_id}: spill block {spill_id} declares "
                        f"{spill_declared}B, expected {expected}B"
                    )
            span = 1 << (self.digit_bits * level)
            for digit in sorted(payload, key=repr):
                if not isinstance(digit, int) or not 0 <= digit < self.radix:
                    violations.append(
                        f"node {node_id}: digit {digit!r} outside radix "
                        f"{self.radix}"
                    )
                    continue
                entry = payload[digit]
                if leaf:
                    expected_key = prefix + digit
                    if (
                        not isinstance(entry, tuple)
                        or len(entry) != 2
                        or entry[0] != expected_key
                    ):
                        violations.append(
                            f"leaf {node_id}: digit {digit} holds "
                            f"{entry!r}, path says key {expected_key}"
                        )
                    total += 1
                else:
                    if not isinstance(entry, int):
                        violations.append(
                            f"node {node_id}: digit {digit} child "
                            f"{entry!r} is not a block id"
                        )
                        continue
                    walk(entry, level - 1, prefix + digit * span)

        try:
            walk(self._root, self._depth - 1, 0)
        except Exception as error:
            violations.append(f"trie walk failed: {error!r}")
            return violations

        orphans = on_device_nodes - reachable
        if orphans:
            violations.append(
                f"{len(orphans)} unreachable trie-node blocks: "
                f"{sorted(orphans)[:5]}"
            )
        tracked_spills = [
            spill_id for spills in self._spill.values() for spill_id in spills
        ]
        if len(set(tracked_spills)) != len(tracked_spills):
            violations.append("spill block id referenced twice")
        if set(tracked_spills) != on_device_spills:
            violations.append(
                f"spill mismatch: tracked-only "
                f"{sorted(set(tracked_spills) - on_device_spills)}, "
                f"device-only {sorted(on_device_spills - set(tracked_spills))}"
            )
        stale_owners = set(self._spill) - reachable
        if stale_owners:
            violations.append(
                f"spill directory lists unreachable nodes: "
                f"{sorted(stale_owners)[:5]}"
            )
        if total != self._record_count:
            violations.append(
                f"leaves hold {total} records, record count says "
                f"{self._record_count}"
            )
        return violations

    # ------------------------------------------------------------------
    def _digit(self, key: int, level: int) -> int:
        return (key >> (self.digit_bits * level)) & (self.radix - 1)

    @spanned("trie.walk")
    def _leaf_for(self, key: int) -> Optional[int]:
        if key < 0 or self._root is None or self._digits_needed(key) > self._depth:
            return None
        node_id = self._root
        for level in range(self._depth - 1, 0, -1):
            children = self._read_node(node_id)
            child = children.get(self._digit(key, level))
            if child is None:
                return None
            node_id = child
        return node_id

    @spanned("trie.walk")
    def _descend_for_insert(self, key: int) -> int:
        """Walk toward ``key``'s leaf, materialising missing interior
        nodes along the way; returns the leaf node's block id."""
        if self._root is None:
            self._root = self._new_node()
        node_id = self._root
        for level in range(self._depth - 1, 0, -1):
            children = self._read_node(node_id)
            digit = self._digit(key, level)
            child = children.get(digit)
            if child is None:
                child = self._new_node()
                children[digit] = child
                self._write_node(node_id, children, leaf=False)
            node_id = child
        return node_id

    @spanned("trie.walk")
    def _descend_with_path(self, key: int):
        """Walk toward ``key``'s leaf remembering (node, digit, payload)
        per interior level so delete can prune bottom-up."""
        path: List[tuple] = []
        node_id = self._root
        for level in range(self._depth - 1, 0, -1):
            children = self._read_node(node_id)
            digit = self._digit(key, level)
            child = children.get(digit)
            if child is None:
                raise KeyError(key)
            path.append((node_id, digit, children))
            node_id = child
        return node_id, path

    def _ensure_depth(self, key: int) -> None:
        """Deepen the trie so ``key`` fits, re-rooting existing data."""
        needed = self._digits_needed(key)
        while self._depth < needed:
            if self._root is not None:
                # The old root holds all keys with high digit 0 at the new
                # level, so it becomes child 0 of a fresh root.
                new_root = self._new_node()
                self._write_node(new_root, {0: self._root}, leaf=False)
                self._root = new_root
            self._depth += 1

    def _collect(
        self,
        node_id: int,
        level: int,
        prefix: int,
        lo: int,
        hi: int,
        matches: List[Record],
    ) -> None:
        """In-order DFS over the subtrie, pruned by the [lo, hi] bounds."""
        payload = self._read_node(node_id)
        if level == 0:
            for digit in sorted(payload):
                key, value = payload[digit]
                if lo <= key <= hi:
                    matches.append((key, value))
            return
        span = 1 << (self.digit_bits * level)
        for digit in sorted(payload):
            child_lo = prefix + digit * span
            child_hi = child_lo + span - 1
            if child_hi < lo or child_lo > hi:
                continue
            self._collect(payload[digit], level - 1, child_lo, lo, hi, matches)
