"""Destinations for trace events.

A sink receives fully-built :class:`~repro.obs.tracer.TraceEvent`
objects from a :class:`~repro.obs.tracer.RecordingTracer`.  Two are
provided: :class:`ListSink` keeps events in memory for assertions and
ad-hoc analysis; :class:`JsonlSink` streams them to a file as one JSON
object per line, the format ``repro trace`` writes and any external
tooling can consume.
"""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from typing import List

from repro.obs.tracer import TraceEvent


class TraceSink(ABC):
    """Receiver of trace events."""

    @abstractmethod
    def emit(self, event: TraceEvent) -> None:
        """Accept one event."""

    def close(self) -> None:
        """Release any resources held by the sink (no-op by default)."""


class ListSink(TraceSink):
    """Collect events in an in-memory list (``sink.events``)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        """Append the event to :attr:`events`."""
        self.events.append(event)


class JsonlSink(TraceSink):
    """Stream events to a file, one JSON object per line.

    Keys are sorted so that byte-identical runs produce byte-identical
    files — the determinism contract of ``repro trace``.  Usable as a
    context manager; ``__exit__`` closes (and therefore flushes) the
    file *even when the managed block raised*, so a workload that dies
    mid-run — an injected :class:`~repro.check.faults.DeviceFault`, an
    :class:`~repro.check.audit.AuditError` — still leaves a complete,
    parseable trace: every emitted event is a whole line, and the last
    line on disk is the last event before the failure.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "w")
        self.events_written = 0

    def emit(self, event: TraceEvent) -> None:
        """Serialize one event as a JSON line."""
        self._handle.write(json.dumps(event.to_dict(), sort_keys=True))
        self._handle.write("\n")
        self.events_written += 1

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        """Context-manager entry: the sink itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the file."""
        self.close()
