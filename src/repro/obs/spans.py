"""Hierarchical spans: attribute device I/O to internal phases.

The trace layer records *that* a block was read, never *why*.  Spans add
the why: a context-local stack of phase names ("op.insert/lsm.put/
lsm.flush/lsm.compaction.L0") that :class:`~repro.obs.tracer.RecordingTracer`
stamps onto every event it emits.  :class:`SpanProfile` then rolls a
stream of stamped events back into a tree with per-span byte counts, and
:func:`rum_attribution` splits the aggregate RO/UO/MO ratios measured by
:func:`~repro.core.rum.measure_workload` across that tree — exactly, in
integer bytes, with the residual buckets defined by subtraction so the
per-span fractions always sum to the aggregates.

Zero-cost-when-disabled contract
--------------------------------
Span tracking is gated on a module-global flag that is only raised
inside :func:`span_collection`.  Instrumentation sites on method hot
paths use the :func:`spanned` decorator, whose disabled path is a single
global check and a plain tail-call (~100ns — measured by
``tools/bench_hotpath.py``, which asserts the instrumentation adds <2%
to the measured per-operation cost).  The :class:`span` context manager
is for cold paths (compaction, rehash) and ad-hoc callers.  The span
*stack* itself lives in a :class:`~contextvars.ContextVar`, so spans are
safe under threads; worker processes activate their own collection scope
(see :func:`repro.exec.engine.execute_cell_payload`), so profiles built
from merged parallel-sweep events are byte-identical to serial ones.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

#: Separator between span names in a path ("op.insert/lsm.put").
SEPARATOR = "/"

#: Root span names measure_workload opens around read operations.
READ_ROOTS = ("op.point_query", "op.range_query")

#: Root span names measure_workload opens around update operations.
UPDATE_ROOTS = ("op.insert", "op.update", "op.delete")

#: Root span name around the terminal flush.
FLUSH_ROOT = "op.flush"

#: Synthetic root for events emitted outside any span.
UNSPANNED = "(unspanned)"

# Module-global fast gate: the disabled path of every instrumentation
# site reads this one global and nothing else.
_active = False

#: The current span path, per execution context.
_path: ContextVar[str] = ContextVar("repro_span_path", default="")

# Number of span entries while active; tools/bench_hotpath.py divides
# this by the operation count to get instrumentation sites per op.
_entries = 0


def spans_active() -> bool:
    """Whether a :func:`span_collection` scope is currently open."""
    return _active


def current_span() -> str:
    """The active span path ("" when span tracking is disabled)."""
    return _path.get() if _active else ""


def span_entries() -> int:
    """Total span entries since import (only counted while active)."""
    return _entries


class span:
    """Context manager opening one span level.

    Single-use.  When a ``device`` is supplied, the device-counter delta
    the span encloses is captured as an :class:`~repro.storage.device.IOStats`
    on :attr:`io` at exit (independent of whether span tracking is
    active), so callers can cross-check event-derived attribution
    against raw counters.

    Use :func:`spanned` instead on hot paths — the ``with`` protocol
    costs several hundred nanoseconds even when disabled.
    """

    __slots__ = ("name", "device", "io", "_token", "_before")

    def __init__(self, name: str, device: Optional[object] = None) -> None:
        self.name = name
        self.device = device
        self.io = None
        self._token = None
        self._before = None

    def __enter__(self) -> "span":
        if _active:
            global _entries
            _entries += 1
            parent = _path.get()
            self._token = _path.set(
                parent + SEPARATOR + self.name if parent else self.name
            )
        if self.device is not None:
            self._before = self.device.snapshot()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _path.reset(self._token)
            self._token = None
        if self._before is not None:
            self.io = self.device.stats_since(self._before)
            self._before = None
        return False


def spanned(name: str) -> Callable:
    """Decorator form of :class:`span`, built for hot paths.

    The disabled path is one module-global check and a tail-call to the
    wrapped function; no context-variable access, no object creation.
    """

    def decorate(func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not _active:
                return func(*args, **kwargs)
            global _entries
            _entries += 1
            parent = _path.get()
            token = _path.set(parent + SEPARATOR + name if parent else name)
            try:
                return func(*args, **kwargs)
            finally:
                _path.reset(token)

        wrapper.__span_name__ = name
        return wrapper

    return decorate


@contextmanager
def span_collection() -> Iterator[None]:
    """Activate span tracking for the enclosed block.

    Resets the span path on entry (so a collection scope never inherits
    a stale path) and restores the previous activation state on exit.
    Nests safely; used by the CLI, the sweep engine's workers and tests.
    """
    global _active
    previous = _active
    _active = True
    token = _path.set("")
    try:
        yield
    finally:
        _path.reset(token)
        _active = previous


# ----------------------------------------------------------------------
# Aggregation: events -> span tree
# ----------------------------------------------------------------------

#: Stat fields carried per node, in serialization order.
STAT_FIELDS = (
    "events",
    "reads",
    "writes",
    "read_bytes",
    "write_bytes",
    "seq_read_bytes",
    "rand_read_bytes",
    "seq_write_bytes",
    "rand_write_bytes",
    "allocs",
    "frees",
    "simulated_time",
)


class SpanStats:
    """Integer byte/count tallies for the events directly in one span."""

    __slots__ = STAT_FIELDS

    def __init__(self) -> None:
        self.events = 0
        self.reads = 0
        self.writes = 0
        self.read_bytes = 0
        self.write_bytes = 0
        self.seq_read_bytes = 0
        self.rand_read_bytes = 0
        self.seq_write_bytes = 0
        self.rand_write_bytes = 0
        self.allocs = 0
        self.frees = 0
        self.simulated_time = 0.0

    def add(self, op: str, sequential: bool, cost: float, nbytes: int) -> None:
        """Tally one trace event."""
        self.events += 1
        self.simulated_time += cost
        if op == "read":
            self.reads += 1
            self.read_bytes += nbytes
            if sequential:
                self.seq_read_bytes += nbytes
            else:
                self.rand_read_bytes += nbytes
        elif op == "write" or op == "write_back":
            self.writes += 1
            self.write_bytes += nbytes
            if sequential:
                self.seq_write_bytes += nbytes
            else:
                self.rand_write_bytes += nbytes
        elif op == "alloc":
            self.allocs += 1
        elif op == "free":
            self.frees += 1

    def merge(self, other: "SpanStats") -> None:
        """Add another tally into this one (for subtree totals)."""
        for field in STAT_FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field))

    def to_dict(self) -> dict:
        """Plain-dict form in :data:`STAT_FIELDS` order."""
        return {field: getattr(self, field) for field in STAT_FIELDS}


class SpanNode:
    """One node of the span tree: a full path plus its direct tallies."""

    __slots__ = ("path", "name", "stats", "children", "live_blocks")

    def __init__(self, path: str) -> None:
        self.path = path
        self.name = path.rpartition(SEPARATOR)[2]
        self.stats = SpanStats()
        self.children: Dict[str, "SpanNode"] = {}
        #: Blocks allocated in this span and still live, keyed by the
        #: emitting device source.
        self.live_blocks: Dict[str, int] = {}

    def total(self) -> SpanStats:
        """Inclusive tallies: this span plus all descendants."""
        combined = SpanStats()
        combined.merge(self.stats)
        for child in self.children.values():
            combined.merge(child.total())
        return combined

    def total_live_blocks(self) -> Dict[str, int]:
        """Inclusive live-block counts per source."""
        combined = dict(self.live_blocks)
        for child in self.children.values():
            for source, count in child.total_live_blocks().items():
                combined[source] = combined.get(source, 0) + count
        return combined

    def walk(self, depth: int = 0) -> Iterator[Tuple["SpanNode", int]]:
        """Depth-first traversal in sorted child order."""
        yield self, depth
        for name in sorted(self.children):
            yield from self.children[name].walk(depth + 1)

    def to_dict(self) -> dict:
        """Canonical plain-dict form (deterministic, JSON-ready)."""
        return {
            "stats": self.stats.to_dict(),
            "live_blocks": {
                source: count
                for source, count in sorted(self.live_blocks.items())
                if count
            },
            "children": {
                name: self.children[name].to_dict()
                for name in sorted(self.children)
            },
        }


def _event_fields(event) -> Tuple[str, str, str, int, bool, float, int]:
    """(span, source, op, block_id, sequential, cost, nbytes) from either
    a :class:`~repro.obs.tracer.TraceEvent` or its dict form."""
    if isinstance(event, dict):
        return (
            event.get("span", ""),
            event["source"],
            event["op"],
            event["block_id"],
            event["sequential"],
            event["cost"],
            event["nbytes"],
        )
    return (
        getattr(event, "span", ""),
        event.source,
        event.op,
        event.block_id,
        event.sequential,
        event.cost,
        event.nbytes,
    )


class SpanProfile:
    """A span tree aggregated from span-stamped trace events.

    Built canonically from the event stream — never from live collector
    state — so profiles from a serial run, a parallel sweep's merged
    events and a warm cache replay are byte-identical
    (``tests/property/test_span_profiles.py``).

    Space attribution tracks every ``alloc`` event's span as the block's
    owner; a later ``free`` decrements the owner, wherever it occurs.
    Frees of blocks allocated before tracing started are tallied in
    :attr:`untracked_frees` (they have no owner to decrement).
    """

    def __init__(self) -> None:
        self.roots: Dict[str, SpanNode] = {}
        self._nodes: Dict[str, SpanNode] = {}
        #: Bytes-per-block per source, learned from read/write events.
        self.block_bytes: Dict[str, int] = {}
        self.untracked_frees: Dict[str, int] = {}
        self._owner: Dict[Tuple[str, int], SpanNode] = {}

    @classmethod
    def from_events(cls, events: Iterable) -> "SpanProfile":
        """Aggregate an event stream (TraceEvents or their dicts)."""
        profile = cls()
        for event in events:
            profile.add_event(event)
        return profile

    def add_event(self, event) -> None:
        """Fold one event into the tree."""
        path, source, op, block_id, sequential, cost, nbytes = _event_fields(
            event
        )
        node = self._node_for(path or UNSPANNED)
        node.stats.add(op, sequential, cost, nbytes)
        if nbytes and source not in self.block_bytes:
            self.block_bytes[source] = nbytes
        if op == "alloc":
            node.live_blocks[source] = node.live_blocks.get(source, 0) + 1
            self._owner[(source, block_id)] = node
        elif op == "free":
            owner = self._owner.pop((source, block_id), None)
            if owner is not None:
                owner.live_blocks[source] -= 1
            else:
                self.untracked_frees[source] = (
                    self.untracked_frees.get(source, 0) + 1
                )

    def _node_for(self, path: str) -> SpanNode:
        node = self._nodes.get(path)
        if node is not None:
            return node
        head, _, _tail = path.rpartition(SEPARATOR)
        node = SpanNode(path)
        if head:
            self._node_for(head).children[node.name] = node
        else:
            self.roots[path] = node
        self._nodes[path] = node
        return node

    def node(self, path: str) -> Optional[SpanNode]:
        """The node at ``path``, or ``None``."""
        return self._nodes.get(path)

    def live_bytes_of(self, node: SpanNode) -> int:
        """Inclusive live device bytes owned by a node's subtree."""
        return sum(
            count * self.block_bytes.get(source, 0)
            for source, count in node.total_live_blocks().items()
        )

    def total_live_bytes(self) -> int:
        """Live device bytes owned by all spans (tracked allocs only)."""
        return sum(self.live_bytes_of(root) for root in self.roots.values())

    def by_name(self) -> Dict[str, SpanStats]:
        """Exclusive tallies aggregated over every node sharing a name.

        "Exclusive" means each node contributes its *direct* stats only,
        so nested occurrences (a cascaded ``lsm.compaction.L1`` inside
        ``lsm.compaction.L0``) are not double-counted.
        """
        merged: Dict[str, SpanStats] = {}
        for root in self.roots.values():
            for node, _depth in root.walk():
                bucket = merged.setdefault(node.name, SpanStats())
                bucket.merge(node.stats)
        return merged

    def walk(self) -> Iterator[Tuple[SpanNode, int]]:
        """Depth-first traversal of the whole forest, roots sorted."""
        for name in sorted(self.roots):
            yield from self.roots[name].walk()

    def to_dict(self) -> dict:
        """Canonical plain-dict form — the byte-identity surface."""
        return {
            "spans": {
                name: self.roots[name].to_dict() for name in sorted(self.roots)
            },
            "block_bytes": dict(sorted(self.block_bytes.items())),
            "untracked_frees": dict(sorted(self.untracked_frees.items())),
        }

    def folded_lines(self, weight: str = "bytes") -> List[str]:
        """Folded-stack lines for flamegraph.pl.

        One line per span with a non-zero *exclusive* weight:
        ``op.insert;lsm.put;lsm.flush 16384``.  ``weight`` selects bytes
        moved (default), event count, or simulated time (scaled x1000 and
        rounded, since folded stacks carry integer weights).
        """
        lines: List[str] = []
        for node, _depth in self.walk():
            stats = node.stats
            if weight == "bytes":
                value = stats.read_bytes + stats.write_bytes
            elif weight == "events":
                value = stats.events
            elif weight == "time":
                value = int(round(stats.simulated_time * 1000))
            else:
                raise ValueError(f"unknown folded-stack weight {weight!r}")
            if value > 0:
                lines.append(
                    f"{node.path.replace(SEPARATOR, ';')} {value}"
                )
        return lines


# ----------------------------------------------------------------------
# RUM attribution: split the aggregate ratios across the tree
# ----------------------------------------------------------------------


def _root_category(path: str) -> str:
    root = path.split(SEPARATOR, 1)[0]
    if root in READ_ROOTS:
        return "read"
    if root in UPDATE_ROOTS:
        return "update"
    if root == FLUSH_ROOT:
        return "flush"
    return "other"


class AttributionRow:
    """One line of the ``repro explain`` table."""

    __slots__ = (
        "path",
        "depth",
        "read_bytes",
        "write_bytes",
        "ro_bytes",
        "uo_bytes",
        "live_bytes",
        "simulated_time",
        "ro",
        "uo",
        "mo",
    )

    def __init__(self, path: str, depth: int) -> None:
        self.path = path
        self.depth = depth
        self.read_bytes = 0
        self.write_bytes = 0
        self.ro_bytes = 0
        self.uo_bytes = 0
        self.live_bytes = 0
        self.simulated_time = 0.0
        self.ro = 0.0
        self.uo = 0.0
        self.mo = 0.0

    def to_dict(self) -> dict:
        """Plain-dict form in slot order (the ``--json`` row shape)."""
        return {field: getattr(self, field) for field in self.__slots__}


class Attribution:
    """The fractional RO/UO/MO split of one measured workload.

    ``rows`` hold *inclusive* per-span numbers in depth-first order,
    followed by the synthetic space buckets (non-device structure state
    such as an LSM memtable, and the peak-sampling headroom when the
    aggregate MO exceeds the final space amplification).  ``audit``
    lists every exactness violation found; an empty list certifies that
    root-level fractions sum exactly to the aggregate ratios and that
    children sum exactly to their parents.
    """

    #: Path label for space held by the structure outside its device.
    NON_DEVICE = "(non-device space)"
    #: Path label for MO headroom from peak sampling.
    PEAK_HEADROOM = "(peak headroom)"

    def __init__(
        self,
        rows: List[AttributionRow],
        read_overhead: float,
        update_overhead: float,
        memory_overhead: float,
        audit: List[str],
    ) -> None:
        self.rows = rows
        self.read_overhead = read_overhead
        self.update_overhead = update_overhead
        self.memory_overhead = memory_overhead
        self.audit = audit

    def to_dict(self) -> dict:
        """Plain-dict form: rows plus totals plus the audit findings."""
        return {
            "rows": [row.to_dict() for row in self.rows],
            "read_overhead": self.read_overhead,
            "update_overhead": self.update_overhead,
            "memory_overhead": self.memory_overhead,
            "audit": list(self.audit),
        }


def rum_attribution(
    profile: SpanProfile,
    accumulator,
    *,
    base_bytes: int,
    space_bytes: int,
    allocated_bytes: int,
    memory_overhead: float,
) -> Attribution:
    """Split measured RO/UO/MO across ``profile``'s span tree.

    ``accumulator`` is the :class:`~repro.core.rum.RUMAccumulator` the
    workload was measured with — its integer numerators are the ground
    truth the span-derived numerators are audited against.  ``base_bytes``
    / ``space_bytes`` / ``allocated_bytes`` come from the method's final
    :meth:`~repro.core.interfaces.AccessMethod.stats` and device;
    ``memory_overhead`` from the finished profile (max of final and peak
    sampled amplification).

    Attribution policy mirrors :class:`~repro.core.rum.RUMAccumulator`:
    only bytes read under read-op roots enter RO numerators; bytes
    written under update roots plus all flush traffic enter UO; reads
    during update ops (structure descent) are charged to neither, and
    appear in the table with zero RO/UO fractions.
    """
    audit: List[str] = []
    rows: List[AttributionRow] = []
    retrieved = accumulator.retrieved_bytes
    updated = accumulator.updated_bytes

    root_ro = 0
    root_uo = 0
    for node, depth in profile.walk():
        category = _root_category(node.path)
        total = node.total()
        row = AttributionRow(node.path, depth)
        row.read_bytes = total.read_bytes
        row.write_bytes = total.write_bytes
        row.simulated_time = total.simulated_time
        row.live_bytes = profile.live_bytes_of(node)
        if category == "read":
            row.ro_bytes = total.read_bytes
        elif category == "update":
            row.uo_bytes = total.write_bytes
        elif category == "flush":
            row.uo_bytes = total.write_bytes + total.read_bytes
        if retrieved:
            row.ro = row.ro_bytes / retrieved
        if updated:
            row.uo = row.uo_bytes / updated
        if base_bytes:
            row.mo = row.live_bytes / base_bytes
        if depth == 0:
            root_ro += row.ro_bytes
            root_uo += row.uo_bytes
        else:
            # Children must sum exactly to their parents.
            parent = profile.node(node.path.rpartition(SEPARATOR)[0])
            parent_total = parent.total()
            child_sum = SpanStats()
            child_sum.merge(parent.stats)
            for child in parent.children.values():
                child_sum.merge(child.total())
            if (
                child_sum.read_bytes != parent_total.read_bytes
                or child_sum.write_bytes != parent_total.write_bytes
            ):  # pragma: no cover - true by construction
                audit.append(
                    f"{parent.path}: children + self do not sum to total"
                )
        rows.append(row)

    if root_ro != accumulator.read_bytes:
        audit.append(
            f"RO bytes under read roots {root_ro} != "
            f"accumulator read_bytes {accumulator.read_bytes}"
        )
    expected_uo = accumulator.write_bytes + accumulator.flush_read_bytes
    if root_uo != expected_uo:
        audit.append(
            f"UO bytes under update/flush roots {root_uo} != "
            f"accumulator write+flush_read bytes {expected_uo}"
        )
    tracked = profile.total_live_bytes()
    untracked = sum(profile.untracked_frees.values())
    if untracked == 0 and tracked != allocated_bytes:
        audit.append(
            f"span-owned live bytes {tracked} != "
            f"device allocated bytes {allocated_bytes}"
        )

    # Space buckets: whatever the spans do not own is defined by
    # subtraction, so MO fractions sum exactly by construction.
    span_mo = 0.0
    for row in rows:
        if row.depth == 0:
            span_mo += row.mo
    non_device = AttributionRow(Attribution.NON_DEVICE, 0)
    non_device.live_bytes = space_bytes - tracked
    if base_bytes:
        non_device.mo = non_device.live_bytes / base_bytes
    headroom = AttributionRow(Attribution.PEAK_HEADROOM, 0)
    headroom.mo = memory_overhead - span_mo - non_device.mo
    rows.append(non_device)
    rows.append(headroom)

    ro_total = root_ro / retrieved if retrieved else 1.0
    uo_total = root_uo / updated if updated else 1.0
    if ro_total != accumulator.read_overhead:
        audit.append(
            f"attributed RO {ro_total} != aggregate {accumulator.read_overhead}"
        )
    if uo_total != accumulator.update_overhead:
        audit.append(
            f"attributed UO {uo_total} != aggregate "
            f"{accumulator.update_overhead}"
        )
    mo_total = span_mo + non_device.mo + headroom.mo
    if mo_total != memory_overhead:  # pragma: no cover - true by construction
        audit.append(
            f"attributed MO {mo_total} != aggregate {memory_overhead}"
        )
    return Attribution(rows, ro_total, uo_total, memory_overhead, audit)
