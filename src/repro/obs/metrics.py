"""Per-operation histograms — cost *distributions*, not just totals.

The RUM profile aggregates a whole workload into three ratios; the
histograms here keep the per-operation detail that explains them: how
many blocks each point query, insert or range scan actually touched.
The Data Calculator line of work (PAPERS.md) argues this per-operation
breakdown is what makes design-space reasoning possible; the workload
runner fills a :class:`WorkloadMetrics` when asked, and ``repro stats``
renders it as a table.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List


class Histogram:
    """Exact histogram of small non-negative samples (count per value).

    Samples are block counts and similar small integers, so the
    histogram stores exact per-value counts rather than buckets; all
    summary statistics are therefore exact too.
    """

    def __init__(self) -> None:
        self._counts: Dict[float, int] = {}
        self.count = 0
        self.total = 0.0

    def record(self, value: float) -> None:
        """Add one sample."""
        if value < 0:
            raise ValueError(f"histogram samples must be non-negative, got {value}")
        self._counts[value] = self._counts.get(value, 0) + 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        """Smallest sample (0.0 when empty)."""
        return min(self._counts) if self._counts else 0.0

    @property
    def max(self) -> float:
        """Largest sample (0.0 when empty)."""
        return max(self._counts) if self._counts else 0.0

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "Histogram":
        """A histogram pre-filled with ``samples`` (order irrelevant)."""
        histogram = cls()
        for value in samples:
            histogram.record(value)
        return histogram

    def percentile(self, fraction: float) -> float:
        """Exact sample at the given fraction (nearest-rank, 0..1).

        Nearest-rank: the smallest sample whose cumulative count reaches
        ``ceil(fraction * count)`` — so p50 of five samples is the 3rd
        smallest, p100 the max.  (``round()`` would banker's-round the
        rank down on exact halves and pick the 2nd.)
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(fraction * self.count))
        seen = 0
        for value in sorted(self._counts):
            seen += self._counts[value]
            if seen >= rank:
                return value
        return self.max  # pragma: no cover - rank <= count by construction

    def to_dict(self) -> Dict[float, int]:
        """Value -> count mapping, sorted by value."""
        return dict(sorted(self._counts.items()))

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's samples into this one."""
        for value, count in other._counts.items():
            self._counts[value] = self._counts.get(value, 0) + count
        self.count += other.count
        self.total += other.total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, mean={self.mean:.2f}, max={self.max})"


#: Canonical op-type presentation order for breakdown tables: reads
#: first, then mutations in lifecycle order, then the terminal flush,
#: then the serving tier's transaction lifecycle (begin → validate →
#: park → commit/abort), its WAL (append → sync) and the recovery pair
#: — so a serve trace's breakdown reads in protocol order instead of
#: lumping ``txn-*``/``wal-*`` into alphabetical unknowns.  Labels
#: outside this list sort after it, alphabetically.
CANONICAL_OP_ORDER = (
    "point_query",
    "range_query",
    "insert",
    "update",
    "delete",
    "flush",
    "txn-begin",
    "txn-validate",
    "txn-park",
    "txn-commit",
    "txn-abort",
    "wal-append",
    "wal-sync",
    "checkpoint",
    "recover",
)


class WorkloadMetrics:
    """Per-op-type histograms accumulated over one workload run.

    One :class:`Histogram` of blocks touched and one of simulated time
    per operation label (``point_query``, ``insert``, ...; the runner
    also records the terminal ``flush`` as its own label).  Pass an
    instance to :func:`~repro.workloads.runner.run_workload` or
    :func:`~repro.core.rum.measure_workload` to fill it.
    """

    def __init__(self) -> None:
        self.blocks: Dict[str, Histogram] = {}
        self.time: Dict[str, Histogram] = {}

    def record(self, label: str, blocks_touched: int, simulated_time: float) -> None:
        """Account one operation of type ``label``."""
        if label not in self.blocks:
            self.blocks[label] = Histogram()
            self.time[label] = Histogram()
        self.blocks[label].record(blocks_touched)
        self.time[label].record(simulated_time)

    def labels(self) -> List[str]:
        """Operation labels seen so far, in :data:`CANONICAL_OP_ORDER`.

        The order is pinned (not insertion or alphabetical) so
        ``repro stats`` output diffs cleanly across runs and methods;
        labels outside the canonical list follow it, alphabetically.
        """
        def rank(label: str):
            try:
                return (0, CANONICAL_OP_ORDER.index(label), label)
            except ValueError:
                return (1, 0, label)

        return sorted(self.blocks, key=rank)

    def rows(self) -> List[List[object]]:
        """Breakdown table rows: one per op type.

        Columns: op, count, then blocks-touched mean/p50/p95/max, then
        total and mean simulated time — the shape ``repro stats`` and
        ``repro trace`` print.
        """
        out: List[List[object]] = []
        for label in self.labels():
            blocks = self.blocks[label]
            time = self.time[label]
            out.append([
                label,
                blocks.count,
                blocks.mean,
                blocks.percentile(0.5),
                blocks.percentile(0.95),
                blocks.max,
                time.total,
                time.mean,
            ])
        return out

    #: Column headers matching :meth:`rows`.
    HEADERS = [
        "op", "count", "blocks/op", "p50", "p95", "max", "sim time", "time/op",
    ]
