"""Live observability: sliding windows over *simulated* time.

Everything else in :mod:`repro.obs` is post-hoc — :class:`SpanProfile`
and :class:`~repro.obs.metrics.WorkloadMetrics` are rebuilt from a
complete event stream after the run ends.  This module keeps the same
numbers *while the workload runs*, bucketed into fixed-width windows of
simulated time (the deterministic clock priced by the device's
:class:`~repro.storage.device.CostModel` — no wall clock anywhere), so
an online controller can watch a workload drift instead of reading an
autopsy.

Three layers, from generic to specific:

:class:`LiveRegistry`
    Named counters, gauges and windowed histograms over a ring of
    closed windows plus one open window.  Exact integer sums; nearest-
    rank percentiles via the same :class:`~repro.obs.metrics.Histogram`
    the post-hoc tables use, so "p95 latency" means the same thing live
    and after the fact.  The serving tier feeds one of these.
:class:`WindowedRUM`
    A streaming consumer of the measurement loop's per-operation device
    deltas (and, optionally, span-tagged trace events for per-phase
    byte attribution) that emits per-window RO/UO/MO.  Its conservation
    contract: the per-window **integer** numerators and denominators sum
    *exactly* to the whole-run totals the
    :class:`~repro.core.rum.RUMAccumulator` reports — each operation's
    deltas land in exactly one window, so the window sums telescope into
    the run totals by construction (the property suite asserts this
    across workloads, window widths and batch sizes).
:class:`DriftDetector`
    Classifies each window's operation mix (read-heavy / update-heavy /
    scan-heavy / mixed) with hysteresis and emits ``drift`` trace
    events on state transitions — the sensing half of the ROADMAP's
    closed-loop tuner.

The disabled path is near-zero-cost by the same discipline as spans:
the measurement loop guards every tap with one ``live is not None``
check (gated in ``BENCH_hotpath.json``), and windows only exist while a
consumer holds them.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.obs.metrics import Histogram
from repro.obs.sinks import TraceSink
from repro.obs.spans import UNSPANNED
from repro.obs.tracer import TraceEvent, Tracer
from repro.storage.layout import RECORD_BYTES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.interfaces import AccessMethod
    from repro.exec.cells import SweepCell
    from repro.storage.device import IOStats

#: Closed windows a :class:`LiveRegistry` retains before folding the
#: oldest into its eviction totals (counters stay conserved; detail is
#: what ages out).
DEFAULT_RING_SIZE = 64

#: :class:`WindowedRUM` keeps a deeper ring by default: ``repro top``
#: renders whole short runs from it.
DEFAULT_RUM_RING_SIZE = 256

#: Drift states a :class:`DriftDetector` can report.
DRIFT_STATES = ("read-heavy", "update-heavy", "scan-heavy", "mixed")

#: Operation-kind labels the drift classifier buckets as reads/updates.
READ_KINDS = ("point_query", "range_query")
UPDATE_KINDS = ("insert", "update", "delete")


class _WindowRing:
    """Shared windowing core: one open window + a ring of closed ones.

    Windows are fixed-width buckets of simulated time: an observation at
    time ``t`` lands in window ``floor(t / width)``.  Observations must
    arrive in non-decreasing time order (simulated time is monotone);
    the rare equal-boundary case stays in the open window.  When the
    ring overflows, the oldest closed window is handed to
    :meth:`_fold_evicted` so subclasses can keep their conservation
    totals exact while shedding per-window detail.
    """

    def __init__(self, width: float, ring_size: int = DEFAULT_RING_SIZE) -> None:
        if width <= 0:
            raise ValueError(f"window width must be positive, got {width}")
        if ring_size < 1:
            raise ValueError(f"ring size must be at least 1, got {ring_size}")
        self.width = float(width)
        self.ring_size = int(ring_size)
        self._closed: deque = deque()
        self._open: Optional[Any] = None
        #: Closed windows folded out of the ring so far.
        self.evicted_windows = 0

    def _new_window(self, index: int):  # pragma: no cover - abstract
        raise NotImplementedError

    def _fold_evicted(self, window) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def _window(self, now: float):
        """The window containing ``now``, rolling the ring forward."""
        index = int(now // self.width)
        open_window = self._open
        if open_window is not None:
            if index <= open_window.index:
                return open_window
            self._closed.append(open_window)
            if len(self._closed) > self.ring_size:
                self._fold_evicted(self._closed.popleft())
                self.evicted_windows += 1
        window = self._new_window(index)
        self._open = window
        return window

    def windows(self) -> List[Any]:
        """Retained windows, oldest first (closed ring + the open one)."""
        out = list(self._closed)
        if self._open is not None:
            out.append(self._open)
        return out


class _RegistryWindow:
    """One :class:`LiveRegistry` window: counters, gauges, histograms."""

    __slots__ = ("index", "counters", "gauges", "histograms")

    def __init__(self, index: int) -> None:
        self.index = index
        self.counters: Dict[str, int] = {}
        #: name -> [last value, max value] within the window.
        self.gauges: Dict[str, List[float]] = {}
        self.histograms: Dict[str, Histogram] = {}


class LiveRegistry(_WindowRing):
    """Named counters, gauges and histograms over simulated-time windows.

    Counters are exact integers and stay conserved across ring eviction
    (folded into :attr:`evicted_counters`); gauges keep last and max per
    window; histograms are exact :class:`~repro.obs.metrics.Histogram`
    instances, so live percentiles use the identical nearest-rank
    definition as the post-hoc tables.  All mutation goes through
    :meth:`count` / :meth:`gauge` / :meth:`observe` —
    ``tools/lint_counters.py`` confines those calls to the sanctioned
    emit sites (``repro/obs`` plus the runner/serve taps).
    """

    def __init__(self, width: float, ring_size: int = DEFAULT_RING_SIZE) -> None:
        super().__init__(width, ring_size=ring_size)
        #: Counter totals folded out of the ring, name -> sum.
        self.evicted_counters: Dict[str, int] = {}

    def _new_window(self, index: int) -> _RegistryWindow:
        return _RegistryWindow(index)

    def _fold_evicted(self, window: _RegistryWindow) -> None:
        for name, value in window.counters.items():
            self.evicted_counters[name] = (
                self.evicted_counters.get(name, 0) + value
            )

    def count(self, name: str, delta: int = 1, *, now: float) -> None:
        """Add ``delta`` to counter ``name`` in the window of ``now``."""
        window = self._window(now)
        window.counters[name] = window.counters.get(name, 0) + delta

    def gauge(self, name: str, value: float, *, now: float) -> None:
        """Set gauge ``name`` (last-write-wins; per-window max kept too)."""
        window = self._window(now)
        entry = window.gauges.get(name)
        if entry is None:
            window.gauges[name] = [value, value]
        else:
            entry[0] = value
            if value > entry[1]:
                entry[1] = value

    def observe(self, name: str, value: float, *, now: float) -> None:
        """Record one histogram sample for ``name`` in ``now``'s window."""
        window = self._window(now)
        histogram = window.histograms.get(name)
        if histogram is None:
            histogram = Histogram()
            window.histograms[name] = histogram
        histogram.record(value)

    def advance(self, now: float) -> None:
        """Roll the open window forward to ``now`` without recording."""
        self._window(now)

    def counter_total(self, name: str) -> int:
        """Exact all-time total for ``name`` (evicted + retained)."""
        total = self.evicted_counters.get(name, 0)
        for window in self.windows():
            total += window.counters.get(name, 0)
        return total

    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-pure per-window frames, oldest first."""
        frames: List[Dict[str, Any]] = []
        for window in self.windows():
            frames.append({
                "window": window.index,
                "start": window.index * self.width,
                "counters": dict(sorted(window.counters.items())),
                "gauges": {
                    name: {"last": last, "max": peak}
                    for name, (last, peak) in sorted(window.gauges.items())
                },
                "histograms": {
                    name: {
                        "count": hist.count,
                        "mean": hist.mean,
                        "p50": hist.percentile(0.5),
                        "p95": hist.percentile(0.95),
                        "p99": hist.percentile(0.99),
                        "max": hist.max,
                    }
                    for name, hist in sorted(window.histograms.items())
                },
            })
        return frames


class _RUMWindow:
    """One :class:`WindowedRUM` window: the accumulator fields, bucketed."""

    __slots__ = (
        "index", "read_bytes", "retrieved_bytes", "write_bytes",
        "flush_read_bytes", "updated_bytes", "read_ops", "update_ops",
        "simulated_time", "ops", "space_amplification", "phases",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.read_bytes = 0
        self.retrieved_bytes = 0
        self.write_bytes = 0
        self.flush_read_bytes = 0
        self.updated_bytes = 0
        self.read_ops = 0
        self.update_ops = 0
        self.simulated_time = 0.0
        self.ops: Dict[str, int] = {}
        #: Peak space amplification sampled inside the window (0.0 =
        #: never sampled here).
        self.space_amplification = 0.0
        #: Span path -> bytes moved, from consumed trace events.
        self.phases: Dict[str, int] = {}


class WindowedRUM(_WindowRing):
    """Streaming per-window RO/UO/MO from the measurement loop's deltas.

    The loop calls :meth:`observe_op` with each operation's
    :class:`~repro.storage.device.IOStats` delta and its completion time
    (``before.simulated_time + io.simulated_time``), :meth:`observe_flush`
    for the terminal flush, and :meth:`observe_space` at the space-
    sampling cadence.  Each call charges exactly the integers the
    :class:`~repro.core.rum.RUMAccumulator` charges, into exactly one
    window — so :meth:`totals` equals the accumulator's fields exactly,
    whatever the window width (the conservation contract).

    Optionally, span-tagged trace events can be streamed through
    :meth:`consume_event` (e.g. via :class:`LiveSink`): event bytes are
    attributed to the active span path in the window where the I/O
    happened, giving per-window per-phase byte breakdowns without ever
    building the full span tree.  Phase bytes are attributed where the
    I/O *happened*, op counters where the op *completed* — an operation
    straddling a window boundary splits its phase bytes but not its
    counters, so only the counter fields carry the conservation
    contract.
    """

    #: The integer accumulator fields under the conservation contract.
    INT_FIELDS = (
        "read_bytes", "retrieved_bytes", "write_bytes",
        "flush_read_bytes", "updated_bytes", "read_ops", "update_ops",
    )

    def __init__(
        self, width: float, ring_size: int = DEFAULT_RUM_RING_SIZE
    ) -> None:
        super().__init__(width, ring_size=ring_size)
        self._clock = 0.0
        self._event_clock = 0.0
        self.evicted_totals: Dict[str, int] = {f: 0 for f in self.INT_FIELDS}
        self._evicted_ops: Dict[str, int] = {}
        self._evicted_phases: Dict[str, int] = {}

    def _new_window(self, index: int) -> _RUMWindow:
        return _RUMWindow(index)

    def _fold_evicted(self, window: _RUMWindow) -> None:
        for name in self.INT_FIELDS:
            self.evicted_totals[name] += getattr(window, name)
        for kind, count in window.ops.items():
            self._evicted_ops[kind] = self._evicted_ops.get(kind, 0) + count
        for phase, nbytes in window.phases.items():
            self._evicted_phases[phase] = (
                self._evicted_phases.get(phase, 0) + nbytes
            )

    def observe_op(
        self,
        kind: str,
        is_read: bool,
        io: "IOStats",
        units: int,
        now: float,
    ) -> None:
        """Account one measured operation completing at ``now``.

        ``units`` is ``max(records_retrieved, 1)`` for reads and the
        records updated (1) for writes — the same denominator unit the
        accumulator charges, converted to bytes here.
        """
        self._clock = now
        window = self._window(now)
        if is_read:
            window.read_ops += 1
            window.read_bytes += io.read_bytes
            window.retrieved_bytes += units * RECORD_BYTES
        else:
            window.update_ops += 1
            window.write_bytes += io.write_bytes
            window.updated_bytes += units * RECORD_BYTES
        window.simulated_time += io.simulated_time
        window.ops[kind] = window.ops.get(kind, 0) + 1

    def observe_flush(self, io: "IOStats", now: float) -> None:
        """Account the terminal flush (writes + flush reads charge UO)."""
        self._clock = now
        window = self._window(now)
        window.write_bytes += io.write_bytes
        window.flush_read_bytes += io.read_bytes
        window.simulated_time += io.simulated_time
        window.ops["flush"] = window.ops.get("flush", 0) + 1

    def observe_space(self, method: "AccessMethod") -> None:
        """Sample the method's space amplification into the open window.

        Called at the measurement loop's space-sampling cadence, right
        after :meth:`~repro.core.rum.RUMAccumulator.sample_space` — the
        max over all window gauges equals the accumulator's sampled
        peak.
        """
        stats = method.stats()
        if stats.base_bytes > 0:
            window = self._window(self._clock)
            amplification = stats.space_amplification
            if amplification > window.space_amplification:
                window.space_amplification = amplification

    def consume_event(self, event: TraceEvent) -> None:
        """Attribute one span-tagged trace event's bytes to its window.

        Maintains its own running clock (the sum of event costs equals
        the device's simulated time, because every priced device
        operation emits exactly one event while traced), so events can
        be consumed as they stream without asking the device for the
        time.
        """
        if event.cost:
            self._event_clock += event.cost
        nbytes = event.nbytes
        if not nbytes:
            return
        window = self._window(self._event_clock)
        phase = event.span or UNSPANNED
        window.phases[phase] = window.phases.get(phase, 0) + nbytes

    def totals(self) -> Dict[str, int]:
        """Exact all-time integer sums (evicted + retained windows).

        Equal, field for field, to the whole-run
        :class:`~repro.core.rum.RUMAccumulator` the measurement loop
        filled alongside this consumer.
        """
        out = dict(self.evicted_totals)
        for window in self.windows():
            for name in self.INT_FIELDS:
                out[name] += getattr(window, name)
        return out

    def peak_space_amplification(self) -> float:
        """Largest space-amplification sample across retained windows."""
        peak = 0.0
        for window in self.windows():
            if window.space_amplification > peak:
                peak = window.space_amplification
        return peak

    def frames(self) -> List[Dict[str, Any]]:
        """JSON-pure per-window frames, oldest first.

        Deterministic by construction (simulated time, sorted keys) —
        ``repro top --json`` output built from these frames is
        byte-identical across serial and parallel replays.
        """
        out: List[Dict[str, Any]] = []
        for window in self.windows():
            retrieved = window.retrieved_bytes
            updated = window.updated_bytes
            out.append({
                "window": window.index,
                "start": window.index * self.width,
                "read_bytes": window.read_bytes,
                "retrieved_bytes": retrieved,
                "write_bytes": window.write_bytes,
                "flush_read_bytes": window.flush_read_bytes,
                "updated_bytes": updated,
                "read_ops": window.read_ops,
                "update_ops": window.update_ops,
                "simulated_time": window.simulated_time,
                "ops": dict(sorted(window.ops.items())),
                "ro": (window.read_bytes / retrieved) if retrieved else 1.0,
                "uo": (
                    (window.write_bytes + window.flush_read_bytes) / updated
                ) if updated else 1.0,
                "mo": window.space_amplification,
                "phases": dict(sorted(window.phases.items())),
            })
        return out


class LiveSink(TraceSink):
    """A trace sink that streams every event into a :class:`WindowedRUM`.

    Attach via ``RecordingTracer(LiveSink(windowed))`` (optionally
    chaining to another sink) and the windowed consumer sees span-tagged
    events as they happen — per-phase attribution with no stored event
    list and no post-hoc tree rebuild.
    """

    def __init__(
        self, windowed: WindowedRUM, chain: Optional[TraceSink] = None
    ) -> None:
        self.windowed = windowed
        self.chain = chain

    def emit(self, event: TraceEvent) -> None:
        """Forward one event to the windowed consumer (and the chain)."""
        self.windowed.consume_event(event)
        if self.chain is not None:
            self.chain.emit(event)


def emit_drift_event(
    tracer: Tracer, window_index: int, old_state: str, new_state: str
) -> None:
    """Emit one ``op="drift"`` trace event for a detector transition.

    The window index rides in the ``block_id`` slot (events are keyed by
    an integer either way, like ``emit_txn_event``) and the transition
    in ``kind``.
    """
    if not tracer.enabled:
        return
    tracer.emit(
        source="drift",
        op="drift",
        block_id=window_index,
        kind=f"{old_state}->{new_state}",
    )


class DriftDetector:
    """Classify window op mixes with hysteresis; the tuner's sensor.

    Feed each closed window's ``ops`` mapping (kind -> count) through
    :meth:`observe`.  The classifier checks, in order: scan-heavy
    (range-query share of measured ops at least ``scan_fraction`` —
    scans are rare enough in mixed workloads that a modest share already
    dominates cost), update-heavy (insert+update+delete share at least
    ``update_fraction``), read-heavy (read share at least
    ``read_fraction``), else mixed.  A state change is only committed
    after ``hysteresis`` *consecutive* windows classify to the same new
    state — one anomalous window cannot flap the controller — and each
    committed transition is appended to :attr:`transitions` and emitted
    as a ``drift`` trace event through the attached tracer.
    """

    def __init__(
        self,
        hysteresis: int = 2,
        read_fraction: float = 0.6,
        update_fraction: float = 0.5,
        scan_fraction: float = 0.25,
        tracer: Optional[Tracer] = None,
        initial_state: str = "mixed",
    ) -> None:
        if hysteresis < 1:
            raise ValueError(f"hysteresis must be at least 1, got {hysteresis}")
        if initial_state not in DRIFT_STATES:
            raise ValueError(f"unknown drift state {initial_state!r}")
        self.hysteresis = hysteresis
        self.read_fraction = read_fraction
        self.update_fraction = update_fraction
        self.scan_fraction = scan_fraction
        self.tracer = tracer
        self.state = initial_state
        self._pending: Optional[str] = None
        self._streak = 0
        #: Committed transitions: (window_index, old_state, new_state).
        self.transitions: List[tuple] = []

    def classify(self, ops: Dict[str, int]) -> str:
        """The instantaneous label for one window's op mix."""
        reads = sum(ops.get(kind, 0) for kind in READ_KINDS)
        updates = sum(ops.get(kind, 0) for kind in UPDATE_KINDS)
        total = reads + updates
        if total == 0:
            return self.state
        if ops.get("range_query", 0) / total >= self.scan_fraction:
            return "scan-heavy"
        if updates / total >= self.update_fraction:
            return "update-heavy"
        if reads / total >= self.read_fraction:
            return "read-heavy"
        return "mixed"

    def observe(self, ops: Dict[str, int], window_index: int) -> Optional[str]:
        """Fold one window in; returns the new state on a transition."""
        label = self.classify(ops)
        if label == self.state:
            self._pending = None
            self._streak = 0
            return None
        if label == self._pending:
            self._streak += 1
        else:
            self._pending = label
            self._streak = 1
        if self._streak < self.hysteresis:
            return None
        old_state = self.state
        self.state = label
        self._pending = None
        self._streak = 0
        self.transitions.append((window_index, old_state, label))
        if self.tracer is not None:
            emit_drift_event(self.tracer, window_index, old_state, label)
        return label


def run_live_workload(
    method: "AccessMethod",
    spec,
    width: float,
    ring_size: int = DEFAULT_RUM_RING_SIZE,
    hysteresis: int = 2,
) -> Dict[str, Any]:
    """Run ``spec`` against ``method`` with live windows; return frames.

    The in-process core behind :func:`run_live_cell` and ``repro top``:
    attaches a :class:`LiveSink`-fed tracer, runs the workload inside
    span collection (so phase attribution has span paths to key on),
    replays a :class:`DriftDetector` over the closed windows, and
    returns a JSON-pure dict — frames, drift states, the conservation
    check against the run's accumulator, and the final profile.
    """
    from repro.core.rum import RUMAccumulator
    from repro.obs.spans import span_collection
    from repro.obs.tracer import RecordingTracer
    from repro.workloads.runner import run_workload

    live = WindowedRUM(width, ring_size=ring_size)
    method.device.set_tracer(RecordingTracer(LiveSink(live)))
    accumulator = RUMAccumulator()
    with span_collection():
        result = run_workload(
            method, spec, accumulator=accumulator, live=live
        )
    detector = DriftDetector(hysteresis=hysteresis)
    frames = live.frames()
    for frame in frames:
        detector.observe(frame["ops"], frame["window"])
        frame["drift"] = detector.state
    totals = live.totals()
    run_totals = {
        name: getattr(accumulator, name) for name in WindowedRUM.INT_FIELDS
    }
    profile = result.profile
    return {
        "method": result.method_name,
        "window": float(width),
        "frames": frames,
        "totals": totals,
        "run_totals": run_totals,
        "conserved": totals == run_totals,
        "evicted_windows": live.evicted_windows,
        "operations_executed": result.operations_executed,
        "drift_transitions": [
            {"window": index, "from": old, "to": new}
            for index, old, new in detector.transitions
        ],
        "profile": {
            "ro": profile.read_overhead,
            "uo": profile.update_overhead,
            "mo": profile.memory_overhead,
            "simulated_time": profile.simulated_time,
        },
    }


def run_live_cell(
    cell: "SweepCell", tracer: Optional[Tracer] = None
) -> Dict[str, Any]:
    """Sweep runner for live windows: ``repro top``'s replay core.

    A :class:`~repro.exec.cells.SweepCell` custom runner
    (``"repro.obs.live:run_live_cell"``): builds the cell's device and
    method, runs :func:`run_live_workload` with the cell's ``window`` /
    ``ring`` / ``hysteresis`` params, and returns the JSON-pure frame
    dict — so the engine's serial and parallel paths (and its result
    cache) produce byte-identical ``repro top --json`` output.

    The runner installs its own recording tracer (the live sink needs
    the event stream), so it refuses engine-level event collection.
    """
    if tracer is not None:
        raise ValueError(
            "run_live_cell records its own trace; run the sweep without "
            "collect_events"
        )
    from repro.core.registry import create_method
    from repro.storage.device import SimulatedDevice

    params = cell.param_kwargs()
    device = SimulatedDevice(
        block_bytes=cell.block_bytes,
        cost_model=cell.cost_model,
        name=cell.display_label,
    )
    method = create_method(cell.method, device=device, **cell.override_kwargs())
    return run_live_workload(
        method,
        cell.spec,
        width=float(params.get("window", 50.0)),
        ring_size=int(params.get("ring", DEFAULT_RUM_RING_SIZE)),
        hysteresis=int(params.get("hysteresis", 2)),
    )
