"""Structured trace events and the tracer that routes them.

Every instrumented component (:class:`~repro.storage.device.SimulatedDevice`,
:class:`~repro.storage.pager.BufferPool`,
:class:`~repro.storage.cached.CachedDevice`) holds a :class:`Tracer` and
guards each emission site with ``tracer.enabled``.  The base tracer is
the shared no-op :data:`NULL_TRACER` (``enabled`` is ``False``), so with
tracing off the hot path pays exactly one attribute check — no event
object is ever constructed.  :class:`RecordingTracer` numbers events and
forwards them to a :class:`~repro.obs.sinks.TraceSink`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Iterable

from repro.obs.spans import current_span

# Block ids are plain ints (repro.storage.block.BlockId); importing the
# storage package here would close an import cycle, since the device
# module imports this one.
BlockId = int


@dataclass(frozen=True)
class TraceEvent:
    """One storage-layer operation, fully described.

    ``seq`` is the tracer-assigned event number (total order over every
    component sharing the tracer).  ``source`` names the emitting
    component (a device name or ``pool(<device>)``).  ``op`` is one of
    ``read``, ``write``, ``alloc``, ``free``, ``evict``, ``write_back``,
    ``fault`` (an injected :class:`~repro.check.faults.DeviceFault`) or
    ``audit`` (an invariant violation found by
    :meth:`~repro.core.interfaces.AccessMethod.audit`; the message rides
    in ``kind`` and ``block_id`` is -1).
    ``kind`` is otherwise the block's allocation tag, ``sequential`` the
    device's seek classification, ``cost`` the simulated time charged and
    ``nbytes`` the bytes moved (zero for space-only events).

    ``span`` is the hierarchical phase path active when the event was
    emitted ("op.insert/lsm.put"; see :mod:`repro.obs.spans`), or ""
    when span tracking was off.  It is the last field so event dicts
    serialized before spans existed still decode (the default fills in).
    """

    seq: int
    source: str
    op: str
    block_id: BlockId
    kind: str = ""
    sequential: bool = False
    cost: float = 0.0
    nbytes: int = 0
    span: str = ""

    def to_dict(self) -> dict:
        """Plain-dict form, ready for JSON serialization."""
        return asdict(self)


class Tracer:
    """The no-op tracer: discards every event.

    ``enabled`` is class-level ``False``; emission sites check it before
    building an event, which makes disabled tracing zero-cost (verified
    by ``benchmarks/test_bench_tracing.py``).  Subclasses that actually
    record set ``enabled = True`` and override :meth:`emit`.
    """

    #: Gate checked by every emission site before any work is done.
    enabled: bool = False

    def emit(
        self,
        source: str,
        op: str,
        block_id: BlockId,
        kind: str = "",
        sequential: bool = False,
        cost: float = 0.0,
        nbytes: int = 0,
    ) -> None:
        """Discard the event (no-op)."""


#: Shared no-op tracer installed on every device by default.
NULL_TRACER = Tracer()


class RecordingTracer(Tracer):
    """A tracer that numbers events and forwards them to a sink."""

    enabled = True

    def __init__(self, sink) -> None:
        self.sink = sink
        self._seq = 0

    @property
    def events_emitted(self) -> int:
        """Number of events emitted so far."""
        return self._seq

    def emit(
        self,
        source: str,
        op: str,
        block_id: BlockId,
        kind: str = "",
        sequential: bool = False,
        cost: float = 0.0,
        nbytes: int = 0,
    ) -> None:
        """Build a :class:`TraceEvent` and hand it to the sink.

        The active span path (:func:`repro.obs.spans.current_span`) is
        stamped onto the event here — one place, for every emitting
        component — so attribution never depends on the emitter.
        """
        event = TraceEvent(
            seq=self._seq,
            source=source,
            op=op,
            block_id=block_id,
            kind=kind,
            sequential=sequential,
            cost=cost,
            nbytes=nbytes,
            span=current_span(),
        )
        self._seq += 1
        self.sink.emit(event)


def emit_audit_events(tracer: Tracer, source: str, messages: Iterable[str]) -> None:
    """Emit one ``op="audit"`` event per violation message.

    A sanctioned emission path outside the storage layer:
    ``tools/lint_counters.py`` rejects direct ``tracer.emit`` calls
    outside ``repro/obs`` and ``repro/storage``, so
    :meth:`repro.core.interfaces.AccessMethod.audit` reports through
    this helper.
    """
    if not tracer.enabled:
        return
    for message in messages:
        tracer.emit(source=source, op="audit", block_id=-1, kind=message)


def emit_fault_event(
    tracer: Tracer, source: str, block_id: BlockId, kind: str
) -> None:
    """Emit one ``op="fault"`` event (an injected device failure).

    Like :func:`emit_audit_events`, this is a sanctioned emission path
    for code outside ``repro/obs`` and ``repro/storage`` — here
    :class:`repro.check.faults.FaultyDevice`, which must mark the exact
    stream position where it raised.
    """
    if not tracer.enabled:
        return
    tracer.emit(source=source, op="fault", block_id=block_id, kind=kind)


def emit_txn_event(
    tracer: Tracer, source: str, op: str, txn_id: int, detail: str = ""
) -> None:
    """Emit one transaction lifecycle event from the serving tier.

    ``op`` is the lifecycle step (``txn-begin``, ``txn-validate``,
    ``txn-commit``, ``txn-abort``, ``wal-append``, ``wal-sync``,
    ``recover``, ``checkpoint``); ``txn_id`` rides in the ``block_id``
    slot (events are keyed by an integer id either way) and ``detail``
    in ``kind``.  A sanctioned emission path, like
    :func:`emit_audit_events`: :mod:`repro.serve` reports through this
    helper instead of calling ``tracer.emit`` directly.
    """
    if not tracer.enabled:
        return
    tracer.emit(source=source, op=op, block_id=txn_id, kind=detail)
