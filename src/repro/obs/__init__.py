"""Observability layer over the instrumented storage substrate.

The RUM overheads are *ratios of counted I/O* (paper, Section 2); this
package exposes the structure underneath those totals so a profile can
be explained, not just reported:

``tracer``
    A structured trace API.  Devices and buffer pools emit one
    :class:`~repro.obs.tracer.TraceEvent` per operation
    (read/write/alloc/free/evict/write-back) into an attached
    :class:`~repro.obs.tracer.Tracer`.  The default tracer is a no-op
    whose ``enabled`` flag gates every emission site, so tracing costs
    one attribute check when disabled.
``metrics``
    Per-operation histograms (blocks touched per point query, per
    insert, per range scan, ...) accumulated by the workload runner —
    the per-op-type cost breakdown that window deltas cannot show.
``sinks``
    Destinations for trace events: an in-memory list and a JSONL file.
``live``
    Streaming windows over *simulated* time: :class:`~repro.obs.live.LiveRegistry`
    counters/gauges/histograms, :class:`~repro.obs.live.WindowedRUM`
    per-window RO/UO/MO with an exact conservation contract against the
    whole-run accumulator, and the :class:`~repro.obs.live.DriftDetector`
    that classifies workload drift with hysteresis — the sensors behind
    ``repro top`` and the serve tier's ``--live-window``.
``spans``
    Hierarchical phase attribution.  Instrumented code opens named spans
    (``with span("lsm.compaction"): ...`` or the :func:`~repro.obs.spans.spanned`
    decorator); the active span path is stamped onto every trace event,
    and :class:`~repro.obs.spans.SpanProfile` /
    :func:`~repro.obs.spans.rum_attribution` roll the events back into a
    tree that splits RO/UO/MO exactly across internal phases.

Attach a tracer with :meth:`SimulatedDevice.set_tracer
<repro.storage.device.SimulatedDevice.set_tracer>`; collect histograms
by passing a :class:`~repro.obs.metrics.WorkloadMetrics` to
:func:`~repro.workloads.runner.run_workload`.  The ``repro trace`` and
``repro stats`` CLI subcommands package both for one-shot use.
"""

from repro.obs.live import (
    DriftDetector,
    LiveRegistry,
    LiveSink,
    WindowedRUM,
    run_live_workload,
)
from repro.obs.metrics import Histogram, WorkloadMetrics
from repro.obs.sinks import JsonlSink, ListSink, TraceSink
from repro.obs.spans import (
    Attribution,
    SpanProfile,
    rum_attribution,
    span,
    span_collection,
    spanned,
    spans_active,
)
from repro.obs.tracer import NULL_TRACER, RecordingTracer, TraceEvent, Tracer

__all__ = [
    "Attribution",
    "DriftDetector",
    "Histogram",
    "JsonlSink",
    "ListSink",
    "LiveRegistry",
    "LiveSink",
    "NULL_TRACER",
    "RecordingTracer",
    "SpanProfile",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "WindowedRUM",
    "WorkloadMetrics",
    "run_live_workload",
    "rum_attribution",
    "span",
    "span_collection",
    "spanned",
    "spans_active",
]
