"""Count-min sketch (Cormode & Muthukrishnan, 2005).

The paper lists count-min sketches among the "lossy hash-based indexes"
in the space-optimized corner: frequency estimation with one-sided error
in sublinear space.
"""

from __future__ import annotations

import math
from typing import List

from repro.filters.bloom import _mix


class CountMinSketch:
    """Approximate frequency counting over integer keys.

    Guarantees ``estimate(k) >= true_count(k)`` always, and
    ``estimate(k) <= true_count(k) + epsilon * total`` with probability
    at least ``1 - delta``.
    """

    def __init__(self, epsilon: float = 0.001, delta: float = 0.01) -> None:
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must be in (0, 1)")
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        self.epsilon = epsilon
        self.delta = delta
        self.width = max(1, int(math.ceil(math.e / epsilon)))
        self.depth = max(1, int(math.ceil(math.log(1.0 / delta))))
        self._rows: List[List[int]] = [[0] * self.width for _ in range(self.depth)]
        self.total = 0

    def add(self, key: int, count: int = 1) -> None:
        """Add ``count`` occurrences of ``key``."""
        if count < 0:
            raise ValueError("count must be non-negative")
        for row_index, row in enumerate(self._rows):
            row[_mix(key, row_index) % self.width] += count
        self.total += count

    def estimate(self, key: int) -> int:
        """Upper-biased frequency estimate (never undercounts)."""
        return min(
            row[_mix(key, row_index) % self.width]
            for row_index, row in enumerate(self._rows)
        )

    @property
    def size_bytes(self) -> int:
        """Space footprint assuming 4-byte counters."""
        return self.width * self.depth * 4
