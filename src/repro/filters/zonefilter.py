"""Zone synopsis: min/max summaries over partitions of records.

This is the shared machinery behind ZoneMaps (Netezza-style sparse
indexing, a space-optimized point in Figure 1) and the fence pointers of
LSM runs: one tiny (min, max, count) entry per partition lets a reader
skip partitions that cannot contain a key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class ZoneEntry:
    """Synopsis of one partition: key bounds and live-record count."""

    min_key: int
    max_key: int
    count: int

    def may_contain(self, key: int) -> bool:
        """Whether ``key`` falls inside this zone's bounds."""
        return self.min_key <= key <= self.max_key

    def overlaps(self, lo: int, hi: int) -> bool:
        """Whether this zone intersects the closed range [lo, hi]."""
        return not (hi < self.min_key or lo > self.max_key)

    def widen(self, key: int) -> None:
        """Grow the bounds to cover ``key`` (used on in-place inserts)."""
        self.min_key = min(self.min_key, key)
        self.max_key = max(self.max_key, key)


class ZoneSynopsis:
    """An ordered collection of zone entries, one per partition."""

    def __init__(self) -> None:
        self._entries: List[Optional[ZoneEntry]] = []

    def set_zone(self, index: int, entry: Optional[ZoneEntry]) -> None:
        """Install (or clear, with None) the synopsis of partition ``index``."""
        while len(self._entries) <= index:
            self._entries.append(None)
        self._entries[index] = entry

    def zone(self, index: int) -> Optional[ZoneEntry]:
        """The synopsis of partition ``index`` (None when cleared/unknown)."""
        if 0 <= index < len(self._entries):
            return self._entries[index]
        return None

    def candidates_for_key(self, key: int) -> List[int]:
        """Partition indexes whose bounds admit ``key``."""
        return [
            index
            for index, entry in enumerate(self._entries)
            if entry is not None and entry.may_contain(key)
        ]

    def candidates_for_range(self, lo: int, hi: int) -> List[int]:
        """Partition indexes whose bounds overlap ``[lo, hi]``."""
        return [
            index
            for index, entry in enumerate(self._entries)
            if entry is not None and entry.overlaps(lo, hi)
        ]

    def __len__(self) -> int:
        return sum(1 for entry in self._entries if entry is not None)

    @property
    def partitions(self) -> int:
        """Total partition slots, including cleared ones."""
        return len(self._entries)

    @staticmethod
    def entry_for(records: List[Tuple[int, int]]) -> Optional[ZoneEntry]:
        """Build a zone entry summarizing ``records`` (None if empty)."""
        if not records:
            return None
        keys = [key for key, _ in records]
        return ZoneEntry(min_key=min(keys), max_key=max(keys), count=len(records))
