"""Quotient filter — an updatable approximate-membership structure.

Section 5 of the paper proposes "approximate (tree) indexing that
supports updates ... by absorbing them in updatable probabilistic data
structures (like quotient filters)".  Unlike a Bloom filter, a quotient
filter supports deletion because it stores fingerprint *remainders*
explicitly rather than OR-ing hash bits together.

Semantics implemented here match the Bender et al. design exactly: a key
is fingerprinted to ``q + r`` bits; the high ``q`` bits (the quotient)
select a bucket and the low ``r`` bits (the remainder) are stored in it.
Membership answers True iff the queried key's remainder is present in its
quotient's bucket, so the false-positive rate is ~``2**-r`` at moderate
load and false negatives are impossible.  We keep each bucket as a small
sorted multiset instead of simulating the open-addressed slot shifting;
the probabilistic behaviour and the space formula (``(r + 3)`` bits per
slot, the published layout) are identical, and that is what the RUM
accounting consumes.
"""

from __future__ import annotations

import bisect
from typing import Dict, List

from repro.filters.bloom import _mix


class QuotientFilter:
    """Approximate membership with insert *and* delete over integer keys.

    Parameters
    ----------
    quotient_bits:
        log2 of the table size; the filter is sized for up to
        ``2**quotient_bits`` fingerprints.
    remainder_bits:
        Fingerprint bits stored per entry; false-positive rate is about
        ``2**-remainder_bits``.
    """

    def __init__(self, quotient_bits: int = 16, remainder_bits: int = 8) -> None:
        if not 1 <= quotient_bits <= 30:
            raise ValueError("quotient_bits must be in [1, 30]")
        if not 1 <= remainder_bits <= 32:
            raise ValueError("remainder_bits must be in [1, 32]")
        self.quotient_bits = quotient_bits
        self.remainder_bits = remainder_bits
        self.capacity = 1 << quotient_bits
        self._buckets: Dict[int, List[int]] = {}
        self._items = 0

    # ------------------------------------------------------------------
    def _split(self, key: int) -> tuple:
        total_bits = self.quotient_bits + self.remainder_bits
        fingerprint = _mix(key, 0xF117) & ((1 << total_bits) - 1)
        return fingerprint >> self.remainder_bits, fingerprint & (
            (1 << self.remainder_bits) - 1
        )

    # ------------------------------------------------------------------
    def add(self, key: int) -> None:
        """Insert a key's fingerprint.

        Raises :class:`OverflowError` at full capacity, as a real
        quotient filter would need a resize at that point.
        """
        if self._items >= self.capacity:
            raise OverflowError("quotient filter is full; rebuild with more bits")
        quotient, remainder = self._split(key)
        bucket = self._buckets.setdefault(quotient, [])
        bisect.insort(bucket, remainder)
        self._items += 1

    def may_contain(self, key: int) -> bool:
        """False means definitely absent; True means probably present."""
        quotient, remainder = self._split(key)
        bucket = self._buckets.get(quotient)
        if not bucket:
            return False
        index = bisect.bisect_left(bucket, remainder)
        return index < len(bucket) and bucket[index] == remainder

    def remove(self, key: int) -> bool:
        """Remove one fingerprint occurrence; True if one was found.

        As with any quotient filter, removing a key that was never added
        can (with fingerprint-collision probability) remove another key's
        fingerprint — callers must only remove keys they inserted.
        """
        quotient, remainder = self._split(key)
        bucket = self._buckets.get(quotient)
        if not bucket:
            return False
        index = bisect.bisect_left(bucket, remainder)
        if index >= len(bucket) or bucket[index] != remainder:
            return False
        bucket.pop(index)
        if not bucket:
            del self._buckets[quotient]
        self._items -= 1
        return True

    # ------------------------------------------------------------------
    @property
    def items(self) -> int:
        return self._items

    @property
    def load_factor(self) -> float:
        return self._items / self.capacity

    @property
    def size_bytes(self) -> int:
        """Published layout cost: (remainder + 3 metadata) bits per slot."""
        bits = self.capacity * (self.remainder_bits + 3)
        return (bits + 7) // 8

    def false_positive_rate(self) -> float:
        """Approximate FPR at the current load: load / 2**r."""
        return self.load_factor / float(1 << self.remainder_bits)
