"""Bloom filters (Bloom, CACM 1970).

The paper cites Bloom filters as the canonical space-optimized structure:
membership with no false negatives and a tunable false-positive rate, in
a bitmap a fraction of the size of the keys it summarizes.  The LSM tree
attaches one per run; the approximate index attaches one per partition.

Hashing uses Python's SipHash via :func:`hash` salted per hash function,
with an explicit seed mix so filters are deterministic across runs.
"""

from __future__ import annotations

import math
from typing import Iterable, List


def optimal_bits(n_items: int, false_positive_rate: float) -> int:
    """Bits needed for ``n_items`` at the target false-positive rate.

    m = -n ln p / (ln 2)^2, the textbook optimum.
    """
    if n_items <= 0:
        return 8
    if not 0.0 < false_positive_rate < 1.0:
        raise ValueError("false_positive_rate must be in (0, 1)")
    bits = -n_items * math.log(false_positive_rate) / (math.log(2.0) ** 2)
    return max(8, int(math.ceil(bits)))


def optimal_hashes(bits: int, n_items: int) -> int:
    """Number of hash functions minimizing the false-positive rate.

    k = (m / n) ln 2.
    """
    if n_items <= 0:
        return 1
    k = (bits / n_items) * math.log(2.0)
    return max(1, int(round(k)))


def _mix(key: int, salt: int) -> int:
    """64-bit deterministic hash of ``key`` salted with ``salt``.

    A splitmix64 round — deterministic across processes (unlike
    ``hash()``, which is randomized for strings but is fine for ints;
    we avoid the builtin anyway for full control).
    """
    z = (key + 0x9E3779B97F4A7C15 * (salt + 1)) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


class BloomFilter:
    """A standard Bloom filter over integer keys.

    Parameters
    ----------
    expected_items:
        Sizing hint; combined with ``false_positive_rate`` to choose the
        bit-array length and hash count.
    false_positive_rate:
        Target probability that ``may_contain`` returns True for an
        absent key once ``expected_items`` keys are inserted.
    """

    def __init__(
        self, expected_items: int, false_positive_rate: float = 0.01
    ) -> None:
        self.bits = optimal_bits(expected_items, false_positive_rate)
        self.hash_count = optimal_hashes(self.bits, expected_items)
        self.false_positive_rate = false_positive_rate
        self._array = bytearray((self.bits + 7) // 8)
        self._items = 0

    # ------------------------------------------------------------------
    def add(self, key: int) -> None:
        """Insert a key's bit positions."""
        for position in self._positions(key):
            self._array[position >> 3] |= 1 << (position & 7)
        self._items += 1

    def may_contain(self, key: int) -> bool:
        """False means definitely absent; True means probably present."""
        return all(
            self._array[position >> 3] & (1 << (position & 7))
            for position in self._positions(key)
        )

    def add_all(self, keys: Iterable[int]) -> None:
        """Insert every key in ``keys``."""
        for key in keys:
            self.add(key)

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Space the filter occupies — feeds MO accounting."""
        return len(self._array)

    @property
    def items(self) -> int:
        return self._items

    def estimated_false_positive_rate(self) -> float:
        """FPR estimate at the current load: (1 - e^{-kn/m})^k."""
        if self.bits == 0:
            return 1.0
        exponent = -self.hash_count * self._items / self.bits
        return (1.0 - math.exp(exponent)) ** self.hash_count

    def _positions(self, key: int) -> List[int]:
        # Kirsch-Mitzenmacher double hashing: h1 + i*h2 mod m.
        h1 = _mix(key, 0x51ED)
        h2 = _mix(key, 0xC0FFEE) | 1
        return [(h1 + i * h2) % self.bits for i in range(self.hash_count)]


class CountingBloomFilter(BloomFilter):
    """Bloom filter with per-position counters, supporting deletion.

    Counters are 8-bit (saturating); size is 8x a plain filter with the
    same parameters — the space price of supporting deletes, itself a
    small RUM tradeoff.
    """

    def __init__(
        self, expected_items: int, false_positive_rate: float = 0.01
    ) -> None:
        super().__init__(expected_items, false_positive_rate)
        self._counters = bytearray(self.bits)
        self._array = bytearray(0)  # unused in the counting variant

    def add(self, key: int) -> None:
        """Insert a key, incrementing its positions' counters."""
        for position in self._positions(key):
            if self._counters[position] < 255:
                self._counters[position] += 1
        self._items += 1

    def remove(self, key: int) -> None:
        """Remove one occurrence.  Removing an absent key corrupts the
        filter, as with any counting Bloom filter — callers must only
        remove keys they added."""
        for position in self._positions(key):
            if self._counters[position] > 0:
                self._counters[position] -= 1
        self._items = max(0, self._items - 1)

    def may_contain(self, key: int) -> bool:
        return all(self._counters[position] for position in self._positions(key))

    @property
    def size_bytes(self) -> int:
        return len(self._counters)
