"""Probabilistic and synopsis filters.

These are the paper's space-optimized building blocks (Section 4,
right corner of Figure 1): structures that trade a small, bounded error
probability (or lossy summarization) for dramatic space savings, and
computation for auxiliary-data size.

``bloom``
    Standard and counting Bloom filters.
``quotient``
    An updatable quotient filter (Section 5's "updatable probabilistic
    data structures" for approximate indexing).
``countmin``
    Count-min sketch, the paper's example of a lossy hash-based index.
``zonefilter``
    Min/max zone synopsis shared by ZoneMaps and LSM run fences.
"""

from repro.filters.bloom import BloomFilter, CountingBloomFilter, optimal_bits, optimal_hashes
from repro.filters.countmin import CountMinSketch
from repro.filters.quotient import QuotientFilter
from repro.filters.zonefilter import ZoneSynopsis

__all__ = [
    "BloomFilter",
    "CountMinSketch",
    "CountingBloomFilter",
    "QuotientFilter",
    "ZoneSynopsis",
    "optimal_bits",
    "optimal_hashes",
]
