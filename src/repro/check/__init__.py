"""Correctness and robustness tooling: fault injection + invariant audits.

The paper's RO/UO/MO figures are all deltas of device counters, so a
silently-corrupted structure or a mis-charged block write skews the
reproduction without failing any functional test.  This package is the
net that catches that class of bug:

* :mod:`repro.check.faults` — :class:`FaultyDevice`, a deterministic
  fault-injection wrapper over :class:`~repro.storage.device.SimulatedDevice`
  driven by seeded :class:`FaultPlan`\\ s (fail the Nth read/write, fail
  by block kind, probabilistic failure, torn writes).
* :mod:`repro.check.audit` — the audit session harness behind the
  ``repro audit`` CLI subcommand: run a workload (optionally under a
  fault plan) against a method, call :meth:`AccessMethod.audit`
  periodically, and compare against a dict oracle.

The audit hook itself lives on
:class:`~repro.core.interfaces.AccessMethod`; structures override
``_audit_structure`` with their own invariants (key order, fanout, zone
bounds, Bloom no-false-negatives, ...).
"""

from repro.check.audit import (
    AuditError,
    AuditReport,
    build_audited_method,
    run_audit_session,
)
from repro.check.faults import DeviceFault, FaultPlan, FaultyDevice

__all__ = [
    "AuditError",
    "AuditReport",
    "DeviceFault",
    "FaultPlan",
    "FaultyDevice",
    "build_audited_method",
    "run_audit_session",
]
