"""The audit session harness behind ``repro audit``.

Runs a generated workload against one access method — optionally under a
:class:`~repro.check.faults.FaultPlan` — while keeping a dict oracle in
lockstep, calling :meth:`AccessMethod.audit` every few operations, and
summarizing the outcome as an :class:`AuditReport`:

* how many operations completed vs. faulted,
* every distinct invariant violation any audit reported,
* whether the method's final answers agree with the oracle.

The clean (fault-free) run is a correctness gate: any violation or
oracle divergence is a bug.  A faulted run is a robustness probe: the
report shows whether faults were absorbed (operation raised
:class:`DeviceFault`, state stayed consistent) or left damage behind —
which is exactly what torn-write plans are *supposed* to show the
audits catching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.check.faults import DeviceFault, FaultPlan, FaultyDevice
from repro.core.interfaces import AccessMethod
from repro.storage.device import SimulatedDevice
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.spec import OpKind, WorkloadSpec


class AuditError(RuntimeError):
    """Raised when an in-workload audit finds invariant violations."""

    def __init__(self, method_name: str, violations: List[str]) -> None:
        summary = "; ".join(violations[:3])
        more = f" (+{len(violations) - 3} more)" if len(violations) > 3 else ""
        super().__init__(f"{method_name}: audit failed: {summary}{more}")
        self.method_name = method_name
        self.violations = list(violations)


@dataclass(frozen=True)
class AuditReport:
    """Outcome of one audited (method, workload[, fault plan]) session."""

    method: str
    operations: int
    completed: int
    faults: int
    rejected: int
    oracle_divergences: int
    violations: Tuple[str, ...] = field(default=())

    @property
    def ok(self) -> bool:
        """No invariant violations and no oracle divergence."""
        return not self.violations and self.oracle_divergences == 0

    def __str__(self) -> str:
        status = "ok" if self.ok else "FAIL"
        return (
            f"{self.method}: {status} — {self.completed}/{self.operations} ops "
            f"completed, {self.faults} faulted, {self.rejected} rejected, "
            f"{len(self.violations)} violations, "
            f"{self.oracle_divergences} oracle divergences"
        )


def _apply(
    method: AccessMethod, oracle: Dict[int, int], op
) -> Optional[str]:
    """Run one operation against method and oracle; return a divergence
    description when the method's answer disagrees with the oracle."""
    if op.kind is OpKind.POINT_QUERY:
        got = method.get(op.key)
        want = oracle.get(op.key)
        if got != want:
            return f"get({op.key}) = {got!r}, oracle says {want!r}"
    elif op.kind is OpKind.RANGE_QUERY:
        got = method.range_query(op.key, op.high_key)
        want = sorted(
            (key, value)
            for key, value in oracle.items()
            if op.key <= key <= op.high_key
        )
        if got != want:
            return (
                f"range({op.key}, {op.high_key}) returned {len(got)} records, "
                f"oracle says {len(want)}"
            )
    elif op.kind is OpKind.INSERT:
        method.insert(op.key, op.value)
        oracle[op.key] = op.value
    elif op.kind is OpKind.UPDATE:
        method.update(op.key, op.value)
        oracle[op.key] = op.value
    else:  # DELETE
        method.delete(op.key)
        del oracle[op.key]
    return None


def run_audit_session(
    method: AccessMethod,
    spec: WorkloadSpec,
    plan: Optional[FaultPlan] = None,
    audit_every: int = 16,
) -> AuditReport:
    """Bulk-load, stream the spec's operations, audit as we go.

    ``method`` must sit on a :class:`FaultyDevice` for ``plan`` to take
    effect (build it with :func:`build_audited_method`); the plan is
    armed only after the bulk load, so every session starts from an
    intact structure.  Duplicate-insert/missing-key rejections
    (``ValueError``/``KeyError``) are counted but not failures — the
    generator is probabilistic and the oracle stays in lockstep either
    way.
    """
    if audit_every < 0:
        raise ValueError("audit_every must be >= 0")
    generator = WorkloadGenerator(spec)
    data = list(generator.initial_data())
    method.bulk_load(data)
    method.flush()
    oracle: Dict[int, int] = dict(data)
    device = method.device
    if plan is not None:
        if not isinstance(device, FaultyDevice):
            raise ValueError(
                "a fault plan needs the method to sit on a FaultyDevice; "
                "construct one with build_audited_method(..., plan=...)"
            )
        device.arm(plan)

    completed = faults = rejected = divergences = 0
    violations: List[str] = []
    seen_violations: set = set()

    def record_audit() -> None:
        for violation in method.audit():
            if violation not in seen_violations:
                seen_violations.add(violation)
                violations.append(violation)

    operations = 0
    for index, op in enumerate(generator.operations(), start=1):
        operations += 1
        try:
            divergence = _apply(method, oracle, op)
            completed += 1
            if divergence is not None:
                divergences += 1
        except DeviceFault:
            faults += 1
        except (KeyError, ValueError):
            rejected += 1
        except Exception as error:  # corruption fallout counts against us
            divergences += 1
            violations.append(f"operation {index} ({op.kind.value}) crashed: {error!r}")
        if audit_every and index % audit_every == 0:
            record_audit()
    try:
        method.flush()
    except DeviceFault:
        faults += 1
    record_audit()
    return AuditReport(
        method=method.name,
        operations=operations,
        completed=completed,
        faults=faults,
        rejected=rejected,
        oracle_divergences=divergences,
        violations=tuple(violations),
    )


def build_audited_method(
    name: str,
    block_bytes: int,
    plan: Optional[FaultPlan] = None,
    **method_kwargs,
) -> AccessMethod:
    """Create a registered method on a (possibly fault-wrapped) device."""
    from repro.core.registry import create_method

    backing = SimulatedDevice(block_bytes=block_bytes)
    device: SimulatedDevice = backing
    if plan is not None:
        # Constructed disarmed; run_audit_session arms it after the load.
        device = FaultyDevice(backing)
    return create_method(name, device=device, **method_kwargs)
