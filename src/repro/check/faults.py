"""Deterministic device-level fault injection.

:class:`FaultyDevice` interposes on the read/write path of a backing
:class:`~repro.storage.device.SimulatedDevice` (the same wrapper pattern
as :class:`~repro.storage.cached.CachedDevice`) and raises
:class:`DeviceFault` according to a seeded, immutable :class:`FaultPlan`:

* fail the Nth eligible read or write (1-based, counted per device),
* restrict eligibility to particular block kinds ("lsm-bloom",
  "btree-leaf", ...),
* fail reads/writes probabilistically with a seeded RNG,
* *torn writes*: apply a partial payload to the backing device —
  charging the write — before raising, modelling a power cut mid-write.

A faulted access (torn writes aside) charges **no** I/O and does not
touch the medium: the fault fires before the request reaches the
backing device, so counters and stored state are exactly as they were.
That makes the wrapper usable inside measured workloads — surviving a
fault costs nothing, and whatever recovery I/O a method performs is
charged normally.

Determinism: two devices built from equal plans inject faults at
identical points of identical access streams.  ``arm``/``disarm``
reset the eligible-access counters, so a test can bulk-load cleanly and
then arm the plan for the measured phase.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.obs.tracer import Tracer, emit_fault_event
from repro.storage.block import BlockId
from repro.storage.device import DeviceCounters, SimulatedDevice

#: Payload written by a torn write when the original payload cannot be
#: meaningfully halved (not a list/tuple/dict): a recognizable scar.
TORN_PAYLOAD: Tuple[str] = ("torn-write",)


class DeviceFault(RuntimeError):
    """An injected device failure.

    Raised by :class:`FaultyDevice` instead of performing (or after
    partially performing, for torn writes) the faulted access.
    """

    def __init__(self, op: str, block_id: BlockId, kind: str, detail: str) -> None:
        super().__init__(f"injected {op} fault on block {block_id} ({kind}): {detail}")
        self.op = op
        self.block_id = block_id
        self.kind = kind
        self.detail = detail


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded description of which accesses fail.

    Parameters
    ----------
    fail_read_at / fail_write_at:
        Fail the Nth *eligible* read/write (1-based) since the plan was
        armed.  ``None`` disables the trigger.
    kinds:
        When non-empty, only accesses to blocks of these kinds are
        eligible (and counted toward the Nth-access triggers).
    read_failure_rate / write_failure_rate:
        Probability in [0, 1] that any eligible read/write fails,
        drawn from a :class:`random.Random` seeded with ``seed``.
    torn_writes:
        When true, a faulted write first applies a *partial* payload to
        the backing device (the first half of a list payload, or
        :data:`TORN_PAYLOAD` otherwise), charging the write, and then
        raises.  Structure audits are expected to catch the damage.
    seed:
        Seed for the probabilistic triggers; equal plans inject equal
        fault sequences for equal access streams.
    max_faults:
        Stop injecting after this many faults (``None`` = unlimited).
        Lets a crash test fault exactly once and then observe recovery.
    """

    fail_read_at: Optional[int] = None
    fail_write_at: Optional[int] = None
    kinds: Tuple[str, ...] = ()
    read_failure_rate: float = 0.0
    write_failure_rate: float = 0.0
    torn_writes: bool = False
    seed: int = 0
    max_faults: Optional[int] = None

    def __post_init__(self) -> None:
        for label, rate in (
            ("read_failure_rate", self.read_failure_rate),
            ("write_failure_rate", self.write_failure_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {rate}")
        for label, at in (
            ("fail_read_at", self.fail_read_at),
            ("fail_write_at", self.fail_write_at),
        ):
            if at is not None and at < 1:
                raise ValueError(f"{label} is 1-based and must be >= 1, got {at}")

    @property
    def can_fault(self) -> bool:
        """Whether this plan can ever inject a fault."""
        return (
            self.fail_read_at is not None
            or self.fail_write_at is not None
            or self.read_failure_rate > 0.0
            or self.write_failure_rate > 0.0
        )


class FaultyDevice(SimulatedDevice):
    """A fault-injecting proxy in front of a backing device.

    All storage state and I/O accounting live on ``backing``; this
    wrapper only decides, per access, whether to forward the request or
    raise :class:`DeviceFault`.  It is constructed *disarmed* (fully
    transparent); :meth:`arm` installs a plan and zeroes the
    eligible-access counters, so callers can bulk-load cleanly first.

    Faults are injected before the backing device is touched — no I/O is
    charged and no state changes — with one exception: a torn write
    applies (and charges) a partial payload before raising.
    """

    __slots__ = (
        "backing",
        "plan",
        "_rng",
        "_eligible_reads",
        "_eligible_writes",
        "_faults_injected",
    )

    def __init__(
        self, backing: SimulatedDevice, plan: Optional[FaultPlan] = None
    ) -> None:
        super().__init__(
            block_bytes=backing.block_bytes,
            cost_model=backing.cost_model,
            name=f"faulty({backing.name})",
        )
        self.backing = backing
        self.plan = None
        self._rng = random.Random(0)
        self._eligible_reads = 0
        self._eligible_writes = 0
        self._faults_injected = 0
        if plan is not None:
            self.arm(plan)

    # ------------------------------------------------------------------
    # Plan control
    # ------------------------------------------------------------------
    def arm(self, plan: FaultPlan) -> None:
        """Install ``plan`` and restart its triggers from access zero."""
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._eligible_reads = 0
        self._eligible_writes = 0
        self._faults_injected = 0

    def disarm(self) -> None:
        """Remove the plan; the device becomes fully transparent."""
        self.plan = None

    @property
    def faults_injected(self) -> int:
        """Faults raised since the plan was last armed."""
        return self._faults_injected

    # ------------------------------------------------------------------
    # Fault decision
    # ------------------------------------------------------------------
    def _eligible(self, plan: FaultPlan, block_id: BlockId) -> bool:
        if not plan.kinds:
            return True
        # An access to an unallocated block will raise KeyError on the
        # backing device; let that genuine error through untouched.
        if not self.backing.is_allocated(block_id):
            return False
        return self.backing.kind_of(block_id) in plan.kinds

    def _fires(self, plan: FaultPlan, seen: int, at: Optional[int], rate: float) -> bool:
        if plan.max_faults is not None and self._faults_injected >= plan.max_faults:
            return False
        if at is not None and seen == at:
            return True
        return rate > 0.0 and self._rng.random() < rate

    def _fault(self, op: str, block_id: BlockId, detail: str) -> None:
        self._faults_injected += 1
        kind = (
            self.backing.kind_of(block_id)
            if self.backing.is_allocated(block_id)
            else "?"
        )
        emit_fault_event(self.tracer, self.name, block_id, kind)
        raise DeviceFault(op, block_id, kind, detail)

    @staticmethod
    def _torn(payload: object, used_bytes: int) -> Tuple[object, int]:
        """The partial payload a torn write leaves behind."""
        if isinstance(payload, list) and len(payload) >= 2:
            half = payload[: len(payload) // 2]
            return half, used_bytes * len(half) // len(payload)
        return TORN_PAYLOAD, 0

    # ------------------------------------------------------------------
    # I/O interposition
    # ------------------------------------------------------------------
    def read(self, block_id: BlockId) -> object:
        plan = self.plan
        if plan is not None and self._eligible(plan, block_id):
            self._eligible_reads += 1
            if self._fires(
                plan, self._eligible_reads, plan.fail_read_at, plan.read_failure_rate
            ):
                self._fault("read", block_id, f"eligible read #{self._eligible_reads}")
        return self.backing.read(block_id)

    def write(self, block_id: BlockId, payload: object, used_bytes: int = 0) -> None:
        plan = self.plan
        if plan is not None and self._eligible(plan, block_id):
            self._eligible_writes += 1
            if self._fires(
                plan, self._eligible_writes, plan.fail_write_at, plan.write_failure_rate
            ):
                if plan.torn_writes and self.backing.is_allocated(block_id):
                    torn_payload, torn_used = self._torn(payload, used_bytes)
                    self.backing.write(block_id, torn_payload, used_bytes=torn_used)
                    self._fault(
                        "write",
                        block_id,
                        f"torn write #{self._eligible_writes} "
                        f"(partial payload applied)",
                    )
                self._fault("write", block_id, f"eligible write #{self._eligible_writes}")
        self.backing.write(block_id, payload, used_bytes=used_bytes)

    def read_many(self, block_ids: Iterable[BlockId]) -> List[object]:
        """Batched reads with per-op fault parity.

        Armed, the batch routes through :meth:`read` one access at a
        time so the Nth-eligible-read trigger fires at exactly the same
        operation index as the per-op path (reads before the fault are
        performed and charged, like a prefix-committing batch).
        Disarmed, it delegates to the backing device's batched fast
        path untouched.
        """
        plan = self.plan
        if plan is None:
            return self.backing.read_many(block_ids)
        read = self.read
        return [read(block_id) for block_id in block_ids]

    def write_many(
        self,
        block_ids: Sequence[BlockId],
        payloads: Sequence[object],
        used_bytes: Sequence[int],
    ) -> None:
        """Batched writes with per-op fault parity (see :meth:`read_many`)."""
        plan = self.plan
        if plan is None:
            self.backing.write_many(block_ids, payloads, used_bytes)
            return
        n = len(block_ids)
        if len(payloads) != n or len(used_bytes) != n:
            raise ValueError(
                "write_many requires equal-length id/payload/used sequences"
            )
        write = self.write
        for index in range(n):
            write(block_ids[index], payloads[index], used_bytes=used_bytes[index])

    # ------------------------------------------------------------------
    # Everything else is a transparent delegate to the backing device.
    # ------------------------------------------------------------------
    def allocate(self, kind: str = "data") -> BlockId:
        return self.backing.allocate(kind)

    def free(self, block_id: BlockId) -> None:
        self.backing.free(block_id)

    def is_allocated(self, block_id: BlockId) -> bool:
        return self.backing.is_allocated(block_id)

    def peek(self, block_id: BlockId) -> object:
        return self.backing.peek(block_id)

    def kind_of(self, block_id: BlockId) -> str:
        return self.backing.kind_of(block_id)

    def used_bytes_of(self, block_id: BlockId) -> int:
        return self.backing.used_bytes_of(block_id)

    @property
    def counters(self) -> DeviceCounters:
        return self.backing.counters

    @property
    def allocated_blocks(self) -> int:
        return self.backing.allocated_blocks

    @property
    def allocated_bytes(self) -> int:
        return self.backing.allocated_bytes

    def used_bytes(self) -> int:
        return self.backing.used_bytes()

    def fill_factor(self) -> float:
        return self.backing.fill_factor()

    def blocks_by_kind(self):
        return self.backing.blocks_by_kind()

    def iter_block_ids(self):
        return self.backing.iter_block_ids()

    def reset_counters(self) -> None:
        self.backing.reset_counters()

    def set_tracer(self, tracer: Tracer) -> None:
        """One tracer sees injected faults and the physical traffic."""
        super().set_tracer(tracer)
        self.backing.set_tracer(tracer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultyDevice(backing={self.backing!r}, plan={self.plan!r}, "
            f"faults={self._faults_injected})"
        )
