"""Shape classification of measured cost curves.

The Table-1 reproduction does not (and should not) try to match the
paper's constants — our substrate is a simulator.  What must match is
the *growth shape*: a hash probe stays flat as N grows, a tree probe
grows logarithmically, a scan grows linearly.  This module fits measured
(n, cost) series against candidate complexity classes by normalized
least squares and reports the best-fitting label.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

#: Candidate growth shapes, each a function of n.
SHAPES: Dict[str, Callable[[float], float]] = {
    "constant": lambda n: 1.0,
    "log": lambda n: math.log(max(n, 2)),
    "log^2": lambda n: math.log(max(n, 2)) ** 2,
    "sqrt": lambda n: math.sqrt(n),
    "linear": lambda n: n,
    "nlogn": lambda n: n * math.log(max(n, 2)),
}


def _fit_error(
    ns: Sequence[float], costs: Sequence[float], shape: Callable[[float], float]
) -> float:
    """Relative least-squares error of fitting costs = c * shape(n).

    The optimal scale c is solved in closed form; the error is
    normalized by the series magnitude so different shapes compare
    fairly.
    """
    predictions = [shape(n) for n in ns]
    denom = sum(p * p for p in predictions)
    if denom == 0:
        return float("inf")
    scale = sum(p * c for p, c in zip(predictions, costs)) / denom
    if scale <= 0:
        return float("inf")
    sse = sum((scale * p - c) ** 2 for p, c in zip(predictions, costs))
    magnitude = sum(c * c for c in costs) or 1.0
    return sse / magnitude


def fit_scores(
    ns: Sequence[float], costs: Sequence[float]
) -> Dict[str, float]:
    """Relative fit error of every candidate shape (smaller is better)."""
    if len(ns) != len(costs):
        raise ValueError("ns and costs must have equal length")
    if len(ns) < 3:
        raise ValueError("need at least 3 points to classify a shape")
    return {name: _fit_error(ns, costs, shape) for name, shape in SHAPES.items()}


def best_fit(ns: Sequence[float], costs: Sequence[float]) -> str:
    """Label of the best-fitting growth shape."""
    scores = fit_scores(ns, costs)
    return min(scores, key=scores.get)


def growth_ratio(ns: Sequence[float], costs: Sequence[float]) -> float:
    """cost(max n) / cost(min n) — a crude but robust growth indicator.

    ~1 means flat, ~max(n)/min(n) means linear; the Table-1 bench uses
    it for coarse assertions that are stable under noise.
    """
    pairs = sorted(zip(ns, costs))
    first, last = pairs[0][1], pairs[-1][1]
    if first <= 0:
        return float("inf") if last > 0 else 1.0
    return last / first


def is_flat(ns: Sequence[float], costs: Sequence[float], tolerance: float = 2.0) -> bool:
    """True when the curve grows by less than ``tolerance`` x overall."""
    return growth_ratio(ns, costs) <= tolerance


def grows_at_most_log(
    ns: Sequence[float], costs: Sequence[float], slack: float = 3.0
) -> bool:
    """True when growth is bounded by ``slack`` x the log growth of n."""
    pairs = sorted(zip(ns, costs))
    n0, c0 = pairs[0]
    n1, c1 = pairs[-1]
    if c0 <= 0:
        return True
    log_growth = math.log(max(n1, 2)) / math.log(max(n0, 2))
    return (c1 / c0) <= slack * log_growth


def grows_at_least_linear(
    ns: Sequence[float], costs: Sequence[float], slack: float = 0.3
) -> bool:
    """True when growth is at least ``slack`` x the linear growth of n."""
    pairs = sorted(zip(ns, costs))
    n0, c0 = pairs[0]
    n1, c1 = pairs[-1]
    if c0 <= 0:
        return False
    return (c1 / c0) >= slack * (n1 / n0)
