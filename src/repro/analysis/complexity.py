"""Closed-form I/O cost models — the paper's Table 1, executable.

Table 1 gives, for six data organizations, the asymptotic I/O cost of
bulk creation, index size, point query, range query and insert/update/
delete in terms of:

======  =====================================
``N``   dataset size (tuples)
``m``   range-query result size (tuples)
``B``   block size (tuples per block)
``P``   partition size (tuples) — ZoneMaps
``T``   LSM level-size ratio
``MEM`` sort memory (blocks)
======  =====================================

Each :class:`Table1Model` evaluates those formulas (as block counts, up
to constant factors), so the Table-1 benchmark can compare the *shape*
of measured curves against the paper's claimed asymptotics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict


@dataclass(frozen=True)
class Table1Params:
    """The parameter point a model is evaluated at."""

    N: int
    m: int = 1
    B: int = 256
    P: int = 1024
    T: int = 4
    MEM: int = 64

    def __post_init__(self) -> None:
        if min(self.N, self.m, self.B, self.P, self.T, self.MEM) < 1:
            raise ValueError("all Table 1 parameters must be >= 1")


def _log(base: float, value: float) -> float:
    """log_base(value), clamped to >= 1 so costs never vanish."""
    if value <= 1 or base <= 1:
        return 1.0
    return max(1.0, math.log(value, base))


@dataclass(frozen=True)
class Table1Model:
    """One row of Table 1: the five cost formulas of an organization."""

    name: str
    bulk_creation: Callable[[Table1Params], float]
    index_size: Callable[[Table1Params], float]
    point_query: Callable[[Table1Params], float]
    range_query: Callable[[Table1Params], float]
    update: Callable[[Table1Params], float]

    def row(self, params: Table1Params) -> Dict[str, float]:
        """All five costs of this organization at one parameter point."""
        return {
            "bulk_creation": self.bulk_creation(params),
            "index_size": self.index_size(params),
            "point_query": self.point_query(params),
            "range_query": self.range_query(params),
            "update": self.update(params),
        }


#: The six rows of Table 1, as given in the paper.
TABLE1_MODELS: Dict[str, Table1Model] = {
    "btree": Table1Model(
        name="B+-Tree",
        bulk_creation=lambda p: (p.N / p.B) * _log(p.MEM / p.B if p.MEM > p.B else 2, p.N / p.B),
        index_size=lambda p: p.N / p.B,
        point_query=lambda p: _log(p.B, p.N),
        range_query=lambda p: _log(p.B, p.N) + p.m / p.B,
        update=lambda p: _log(p.B, p.N),
    ),
    "hash-index": Table1Model(
        name="Perfect Hash Index",
        bulk_creation=lambda p: p.N / p.B,
        index_size=lambda p: p.N / p.B,
        point_query=lambda p: 1.0,
        range_query=lambda p: p.N / p.B,
        update=lambda p: 1.0,
    ),
    "zonemap": Table1Model(
        name="ZoneMaps",
        bulk_creation=lambda p: p.N / p.B,
        index_size=lambda p: max(1.0, p.N / p.P / p.B),
        point_query=lambda p: max(1.0, p.N / p.P / p.B),
        range_query=lambda p: max(1.0, p.N / p.P / p.B),
        update=lambda p: max(1.0, p.N / p.P / p.B),
    ),
    "lsm": Table1Model(
        name="Levelled LSM",
        bulk_creation=lambda p: p.N / p.B,  # N/A in the paper; bulk = one write
        index_size=lambda p: (p.N / p.B) * (p.T / (p.T - 1)),
        point_query=lambda p: _log(p.T, p.N / p.B) * _log(p.B, p.N),
        range_query=lambda p: _log(p.T, p.N / p.B) * _log(p.B, p.N) + p.m * p.T / (p.T - 1) / p.B,
        update=lambda p: (p.T / p.B) * _log(p.T, p.N / p.B),
    ),
    "sorted-column": Table1Model(
        name="Sorted column",
        bulk_creation=lambda p: (p.N / p.B) * _log(p.MEM / p.B if p.MEM > p.B else 2, p.N / p.B),
        index_size=lambda p: 1.0,
        point_query=lambda p: _log(2, p.N),
        range_query=lambda p: _log(2, p.N) + p.m / p.B,
        update=lambda p: p.N / p.B / 2,
    ),
    "unsorted-column": Table1Model(
        name="Unsorted column",
        bulk_creation=lambda p: 1.0,
        index_size=lambda p: 1.0,
        point_query=lambda p: p.N / p.B / 2,
        range_query=lambda p: p.N / p.B,
        update=lambda p: 1.0,
    ),
}


def expected_winner(operation: str) -> str:
    """Which Table-1 organization the paper says wins each operation.

    These are the claims the Table-1 benchmark asserts against measured
    data ("ZoneMaps have the smaller size ... Hash Indexes offer the
    fastest point queries, while B+-Trees offer the fastest range
    queries ... the update cost is best for Hash Indexes").
    """
    winners = {
        "index_size": "zonemap",
        "point_query": "hash-index",
        "range_query": "btree",
        "update": "hash-index",
    }
    if operation not in winners:
        raise KeyError(f"no stated winner for operation {operation!r}")
    return winners[operation]
