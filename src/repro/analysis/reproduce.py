"""One-command reproduction report: ``python -m repro reproduce``.

Runs a compact version of every experiment in the paper — Props 1–3,
a Table-1 sweep, the Figure-1 triangle and the conjecture scan — using
only the installed library (no benchmark files needed), and renders a
single text report.  The full-size, assertion-bearing versions live in
``benchmarks/``; this module is the quick interactive tour.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.analysis.tables import format_table
from repro.analysis.triangle import render_triangle
from repro.core.registry import create_method
from repro.core.rum import RUMProfile
from repro.core.space import project_field
from repro.exec import SweepCell, SweepEngine
from repro.methods.extremes import AppendOnlyLog, DenseArray, MagicArray
from repro.storage.device import SimulatedDevice
from repro.storage.layout import RECORD_BYTES
from repro.workloads.spec import WorkloadSpec

#: Compact-run parameters (chosen so the whole report takes seconds).
_BLOCK = 256
_RECORDS = 2000
_OPS = 800

_TRIANGLE_METHODS = [
    "btree", "trie", "hash-index", "cache-oblivious", "lsm", "masm", "pdt",
    "indexed-log", "silt", "zonemap", "sparse-index", "cracking",
    "indexed-heap", "sorted-column", "unsorted-column", "tunable",
]

_SPEC = WorkloadSpec(
    point_queries=0.4,
    inserts=0.3,
    updates=0.2,
    deletes=0.1,
    operations=_OPS,
    initial_records=_RECORDS,
)


def _props_section() -> str:
    rng = random.Random(47)
    # Prop 1.
    magic = MagicArray()
    values = rng.sample(range(4000), 300)
    for value in values:
        magic.insert(value)
    before = magic.device.snapshot()
    for value in values[:50]:
        magic.contains(value)
    ro = magic.device.stats_since(before).read_bytes / (50 * RECORD_BYTES)
    before = magic.device.snapshot()
    for value in values[:50]:
        magic.change(value, value + 4000)
    uo = magic.device.stats_since(before).write_bytes / (50 * RECORD_BYTES)

    # Prop 2.
    log = AppendOnlyLog()
    log.bulk_load([(i, i) for i in range(100)])
    before = log.device.snapshot()
    for i in range(100):
        log.update(50 + i % 50, i)
    log_uo = log.device.stats_since(before).write_bytes / (100 * RECORD_BYTES)

    # Prop 3.
    dense = DenseArray()
    dense.bulk_load([(i, i) for i in range(200)])
    dense_mo = dense.space_bytes() / dense.base_bytes()
    before = dense.device.snapshot()
    for i in range(40):
        dense.update(rng.randrange(200), 0)
    dense_uo = dense.device.stats_since(before).write_bytes / (40 * RECORD_BYTES)

    return format_table(
        ["proposition", "claim", "measured"],
        [
            ["Prop 1 (MagicArray)", "RO = 1.0 exactly", ro],
            ["Prop 1 (MagicArray)", "UO = 2.0 exactly", uo],
            ["Prop 1 (MagicArray)", "MO unbounded", magic.memory_overhead()],
            ["Prop 2 (AppendOnlyLog)", "UO = 1.0 exactly", log_uo],
            ["Prop 3 (DenseArray)", "MO = 1.0 exactly", dense_mo],
            ["Prop 3 (DenseArray)", "UO = 1.0 exactly", dense_uo],
        ],
        title="Propositions 1-3 (record-granularity devices)",
    )


def _table1_section() -> str:
    rows = []
    rng = random.Random(51)
    for name in ("btree", "hash-index", "zonemap", "lsm",
                 "sorted-column", "unsorted-column"):
        method = create_method(name, device=SimulatedDevice(block_bytes=_BLOCK))
        records = [(2 * i, i) for i in range(_RECORDS)]
        rng.shuffle(records)
        method.bulk_load(records)
        method.flush()
        device = method.device
        before = device.snapshot()
        for _ in range(25):
            method.get(2 * rng.randrange(_RECORDS))
        point = device.stats_since(before).reads / 25
        before = device.snapshot()
        for _ in range(8):
            start = rng.randrange(_RECORDS - 64)
            method.range_query(2 * start, 2 * (start + 63))
        range_cost = device.stats_since(before).reads / 8
        before = device.snapshot()
        for offset in rng.sample(range(_RECORDS), 25):
            method.insert(2 * offset + 1, offset)
        method.flush()
        io = device.stats_since(before)
        insert = (io.reads + io.writes) / 25
        aux = max(0, method.space_bytes() - method.base_bytes())
        rows.append([name, point, range_cost, insert, aux])
    return format_table(
        ["method", "point query (reads)", "range m=64 (reads)",
         "insert (I/Os)", "aux bytes"],
        rows,
        title=f"Table 1 (compact, N={_RECORDS}, 16-record blocks)",
    )


def _profiles(jobs: int = 1) -> Dict[str, RUMProfile]:
    cells = [
        SweepCell.make(name, _SPEC, block_bytes=_BLOCK)
        for name in _TRIANGLE_METHODS
    ]
    with SweepEngine(jobs=jobs) as engine:
        outcome = engine.run(cells)
    return {
        cell.display_label: result.profile
        for cell, result in zip(outcome.cells, outcome.results)
    }


def _fig1_section(profiles: Dict[str, RUMProfile]) -> str:
    points = project_field(profiles)
    art = render_triangle([points[name] for name in sorted(points)])
    rows = [
        [name, p.read_overhead, p.update_overhead, p.memory_overhead]
        for name, p in sorted(profiles.items())
    ]
    table = format_table(["method", "RO", "UO", "MO"], rows,
                         title="Figure 1 (measured RUM profiles)")
    return table + "\n\n" + art


def _conjecture_section(profiles: Dict[str, RUMProfile]) -> str:
    near_ro, near_uo, near_mo = 32.0, 4.0, 1.15
    rows = []
    violations = []
    for name, p in sorted(profiles.items()):
        flags = (
            ("R" if p.read_overhead <= near_ro else "-")
            + ("U" if p.update_overhead <= near_uo else "-")
            + ("M" if p.memory_overhead <= near_mo else "-")
        )
        if flags == "RUM":
            violations.append(name)
        rows.append([name, flags])
    table = format_table(
        ["method", "near-optimal on"],
        rows,
        title=(
            "The RUM Conjecture: which overheads each structure bounds "
            f"(R: RO<={near_ro:.0f}, U: UO<={near_uo:.0f}, M: MO<={near_mo})"
        ),
    )
    verdict = (
        "CONJECTURE VIOLATED by: " + ", ".join(violations)
        if violations
        else "No structure is near-optimal on all three axes - the "
             "conjecture holds across this sweep."
    )
    return table + "\n\n" + verdict


def reproduce(jobs: int = 1) -> str:
    """Run the compact reproduction and return the full text report.

    ``jobs`` parallelizes the Figure-1/conjecture profile sweep (the
    bulk of the runtime) over worker processes; the report is identical
    at any job count.
    """
    sections = ["RUM Conjecture reproduction (compact run)", "=" * 60, ""]
    sections.append(_props_section())
    sections.append("")
    sections.append(_table1_section())
    sections.append("")
    profiles = _profiles(jobs=jobs)
    sections.append(_fig1_section(profiles))
    sections.append("")
    sections.append(_conjecture_section(profiles))
    sections.append("")
    sections.append(
        "Full-size assertion-bearing versions: pytest benchmarks/ --benchmark-only"
    )
    return "\n".join(sections)
