"""Pareto-frontier analysis over RUM profiles.

Section 3's conjecture is a statement about the frontier of the design
space: every access method trades somewhere, so the set of non-dominated
designs is broad and no single point wins.  These helpers compute that
frontier over measured profiles and quantify each profile's tradeoff.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.rum import RUMProfile


def pareto_frontier(profiles: Dict[str, RUMProfile]) -> List[str]:
    """Names of the non-dominated profiles (sorted)."""
    names = sorted(profiles)
    frontier = []
    for name in names:
        dominated = any(
            profiles[other].dominates(profiles[name])
            for other in names
            if other != name
        )
        if not dominated:
            frontier.append(name)
    return frontier


def dominated_by(profiles: Dict[str, RUMProfile], name: str) -> List[str]:
    """Names of the profiles that dominate ``name`` (sorted)."""
    if name not in profiles:
        raise KeyError(name)
    return sorted(
        other
        for other in profiles
        if other != name and profiles[other].dominates(profiles[name])
    )


def sacrifice(profile: RUMProfile) -> Tuple[str, float]:
    """The axis a profile sacrifices, and by how much.

    Returns the overhead name ("read" / "update" / "memory") with the
    largest amplification relative to its theoretical floor of 1.0 —
    "which overhead did this design pay with?".
    """
    overheads = {
        "read": profile.read_overhead,
        "update": profile.update_overhead,
        "memory": profile.memory_overhead,
    }
    worst = max(overheads, key=overheads.get)
    return worst, overheads[worst]


def frontier_span(profiles: Dict[str, RUMProfile]) -> Dict[str, Tuple[float, float]]:
    """Per-axis (min, max) across the frontier profiles.

    A wide span on every axis is the empirical signature of the
    conjecture: the frontier stretches between specialists rather than
    collapsing onto one balanced point.
    """
    frontier = pareto_frontier(profiles)
    if not frontier:
        return {}
    ros = [profiles[name].read_overhead for name in frontier]
    uos = [profiles[name].update_overhead for name in frontier]
    mos = [profiles[name].memory_overhead for name in frontier]
    return {
        "read": (min(ros), max(ros)),
        "update": (min(uos), max(uos)),
        "memory": (min(mos), max(mos)),
    }
