"""ASCII rendering of the RUM triangle (Figures 1 and 3).

Renders measured :class:`~repro.core.space.RUMPoint` placements inside
the read/write/space triangle so benchmarks can print a recognizable
reproduction of the paper's figures on a terminal.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.space import CORNER_POSITIONS, CORNER_READ, CORNER_SPACE, CORNER_WRITE, RUMPoint


def render_triangle(
    points: Sequence[RUMPoint],
    width: int = 61,
    height: int = 24,
    legend: bool = True,
) -> str:
    """Draw the unit RUM triangle with labelled points.

    Each point is drawn as a single letter (a, b, c, ...); the legend
    maps letters to names.  Points landing on the same cell are stacked
    into the legend with a ``*`` marker in the grid.
    """
    if width < 21 or height < 8:
        raise ValueError("triangle rendering needs width >= 21 and height >= 8")
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    tri_height = math.sqrt(3.0) / 2.0

    def to_cell(x: float, y: float) -> Tuple[int, int]:
        column = int(round(x * (width - 1)))
        row = int(round((1.0 - y / tri_height) * (height - 1)))
        return max(0, min(height - 1, row)), max(0, min(width - 1, column))

    # Triangle edges.
    corners = [
        CORNER_POSITIONS[CORNER_READ],
        CORNER_POSITIONS[CORNER_WRITE],
        CORNER_POSITIONS[CORNER_SPACE],
    ]
    for start, end in ((0, 1), (1, 2), (2, 0)):
        x0, y0 = corners[start]
        x1, y1 = corners[end]
        steps = max(width, height) * 2
        for step in range(steps + 1):
            t = step / steps
            row, column = to_cell(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t)
            grid[row][column] = "."

    # Corner labels.
    top_row, top_col = to_cell(*CORNER_POSITIONS[CORNER_READ])
    _stamp(grid, top_row, max(0, top_col - 1), "R")
    bl_row, bl_col = to_cell(*CORNER_POSITIONS[CORNER_WRITE])
    _stamp(grid, bl_row, bl_col, "U")
    br_row, br_col = to_cell(*CORNER_POSITIONS[CORNER_SPACE])
    _stamp(grid, br_row, br_col, "M")

    labels: List[Tuple[str, str]] = []
    for index, point in enumerate(points):
        letter = chr(ord("a") + index % 26)
        row, column = to_cell(point.x, point.y)
        current = grid[row][column]
        if current not in (" ", "."):
            grid[row][column] = "*"
        else:
            grid[row][column] = letter
        labels.append((letter, point.name))

    lines = ["".join(row).rstrip() for row in grid]
    if legend:
        lines.append("")
        lines.append("R = read-optimized, U = write-optimized, M = space-optimized")
        for letter, name in labels:
            lines.append(f"  {letter} = {name}")
    return "\n".join(lines)


def _stamp(grid: List[List[str]], row: int, column: int, text: str) -> None:
    for offset, char in enumerate(text):
        if 0 <= column + offset < len(grid[0]):
            grid[row][column + offset] = char


def describe_point(point: RUMPoint) -> str:
    """One-line summary of a placement for report output."""
    w_read, w_write, w_space = point.weights
    return (
        f"{point.name}: read-affinity={w_read:.2f} "
        f"write-affinity={w_write:.2f} space-affinity={w_space:.2f}"
    )
