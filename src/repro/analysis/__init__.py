"""Analysis tooling: cost models, curve fitting and reporting.

``complexity``
    The closed-form I/O cost models of the paper's Table 1, with its
    parameters (N, m, B, P, T, MEM).
``fitting``
    Shape classification of measured cost curves against candidate
    complexity classes — how the Table-1 bench validates asymptotics.
``triangle``
    ASCII rendering of the RUM triangle with placed access methods
    (Figures 1 and 3).
``tables``
    Fixed-width report tables shared by benchmarks and examples.
"""

from repro.analysis.complexity import Table1Model, TABLE1_MODELS
from repro.analysis.fitting import best_fit, fit_scores, growth_ratio
from repro.analysis.tables import format_table
from repro.analysis.triangle import render_triangle

__all__ = [
    "TABLE1_MODELS",
    "Table1Model",
    "best_fit",
    "fit_scores",
    "format_table",
    "growth_ratio",
    "render_triangle",
]
