"""Fixed-width report tables for benchmark and example output."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a simple fixed-width table.

    Numbers are right-aligned; everything else left-aligned.  Floats are
    shown with two decimals (scientific for very large magnitudes).
    """
    rendered_rows: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str], pad: str = " ") -> str:
        return "  ".join(cell.rjust(widths[i], pad) for i, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e7 or (0 < abs(value) < 1e-3):
            return f"{value:.2e}"
        return f"{value:.2f}"
    return str(value)
