"""E9-E11: ablations of the design choices DESIGN.md calls out.

E9   Bloom filters on LSM runs — pay memory overhead, buy read overhead
     (Section 4: filters are the canonical M-for-R trade); plus the
     levelled-vs-tiered compaction ablation (R-for-U).
E10  WAH compression on bitmap indexes — "the use of compression in
     bitmap indexes" (Section 1): computation for space.
E11  B+-Tree node-size / split-condition knobs — the paper's first
     tunable-parameter example (Section 5).
E11b ZoneMap partition size P — slides the sparse index along the M-R
     edge (Table 1's P parameter).
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.tables import format_table
from repro.methods.bitmap import BitmapIndex
from repro.methods.lsm import LSMTree
from repro.storage.device import SimulatedDevice

from benchmarks.harness import (
    BENCH_BLOCK,
    attach_tracer,
    emit_report,
    loaded_method,
    mark,
    point_query_cost,
)

N = 8192


# ----------------------------------------------------------------------
# E9: Bloom filters on the LSM
# ----------------------------------------------------------------------
def _lsm_bloom_sweep() -> list:
    rows = []
    for bits in (0, 2, 5, 10, 16):
        method = loaded_method("lsm", N, bloom_bits_per_key=bits)
        # Negative lookups *inside* the key range (odd keys are absent),
        # so min/max fences cannot prune them: filters must earn their keep.
        rng = random.Random(53)
        misses = [2 * rng.randrange(N) + 1 for _ in range(60)]
        before = method.device.snapshot()
        for key in misses:
            method.get(key)
        miss_reads = method.device.stats_since(before).reads / len(misses)
        hit_reads = point_query_cost(method, N)
        space = method.space_bytes() / method.base_bytes()
        rows.append((bits, miss_reads, hit_reads, space))
    return rows


@pytest.fixture(scope="module")
def bloom_sweep():
    return _lsm_bloom_sweep()


@pytest.mark.benchmark(group="ablations")
def test_lsm_bloom_ablation(benchmark, bloom_sweep):
    mark(benchmark)
    report = format_table(
        ["bloom bits/key", "miss reads/op", "hit reads/op", "MO"],
        [list(row) for row in bloom_sweep],
        title="E9: Bloom filters on LSM runs - memory buys read performance",
    )
    emit_report("ablation_lsm_bloom", report)
    by_bits = {row[0]: row for row in bloom_sweep}
    # Filters cut negative-lookup cost substantially (a bloom probe per
    # run replaces the fence+data probe of every overlapping run) ...
    assert by_bits[10][1] < by_bits[0][1] * 0.6
    # ... monotonically in filter precision ...
    misses = [row[1] for row in bloom_sweep]
    assert all(b <= a * 1.1 for a, b in zip(misses, misses[1:]))
    # ... and cost memory overhead, monotonically in bits per key.
    spaces = [row[3] for row in bloom_sweep]
    assert spaces[-1] > spaces[0]
    assert all(b >= a - 1e-9 for a, b in zip(spaces, spaces[1:]))


@pytest.mark.benchmark(group="ablations")
def test_lsm_compaction_ablation(benchmark):
    mark(benchmark)
    rows = []
    for compaction in ("leveled", "tiered"):
        method = LSMTree(
            attach_tracer(SimulatedDevice(block_bytes=BENCH_BLOCK)),
            memtable_records=64,
            size_ratio=4,
            compaction=compaction,
            bloom_bits_per_key=0,
        )
        # Shuffled inserts: runs overlap in key range, so tiered's extra
        # runs genuinely cost probes (sequential keys would give every
        # run a disjoint range the fences prune for free).
        keys = [2 * i for i in range(3000)]
        random.Random(59).shuffle(keys)
        for key in keys:
            method.insert(key, key)
        writes = method.device.counters.write_bytes / (3000 * 16)
        reads = point_query_cost(method, 3000)
        rows.append((compaction, writes, reads))
    report = format_table(
        ["compaction", "write amplification", "point reads/op"],
        [list(row) for row in rows],
        title="E9b: levelled vs tiered compaction - the R-U slider",
    )
    emit_report("ablation_lsm_compaction", report)
    leveled, tiered = rows
    assert tiered[1] < leveled[1]  # tiered writes less
    assert tiered[2] > leveled[2]  # ... and reads more


# ----------------------------------------------------------------------
# E10: bitmap compression
# ----------------------------------------------------------------------
def _bitmap_rows(n=2048, cardinality=8):
    # Clustered values: long runs, the regime WAH is built for.
    return [(i, (i * cardinality) // n) for i in range(n)]


@pytest.mark.benchmark(group="ablations")
def test_bitmap_compression_ablation(benchmark):
    mark(benchmark)
    rows = []
    for compressed in (False, True):
        index = BitmapIndex(
            attach_tracer(SimulatedDevice(block_bytes=BENCH_BLOCK)), compressed=compressed
        )
        index.bulk_load(_bitmap_rows())
        bitmap_bytes = index.bitmap_bytes()
        before = index.device.snapshot()
        for value in index.distinct_values():
            index.lookup_value(value)
        lookup_reads = index.device.stats_since(before).reads
        # Update cost: moving rows between bitmaps rewrites them.
        before = index.device.snapshot()
        for key in range(0, 64):
            index.update(key, 7 - (key % 8))
        update_io = index.device.stats_since(before).writes
        rows.append((compressed, bitmap_bytes, lookup_reads, update_io))
    report = format_table(
        ["WAH compression", "bitmap bytes", "lookup reads", "update writes"],
        [list(row) for row in rows],
        title="E10: compression in bitmap indexes - computation for space",
    )
    emit_report("ablation_bitmap", report)
    plain, wah = rows
    assert wah[1] < plain[1] / 4  # compression shrinks bitmaps a lot
    assert wah[2] <= plain[2]  # fewer bitmap blocks to read


@pytest.mark.benchmark(group="ablations")
def test_bitmap_update_friendly_ablation(benchmark):
    mark(benchmark)
    rows = []
    for update_friendly in (False, True):
        index = BitmapIndex(
            attach_tracer(SimulatedDevice(block_bytes=BENCH_BLOCK)),
            compressed=True,
            update_friendly=update_friendly,
            delta_merge_bits=256,
        )
        index.bulk_load(_bitmap_rows())
        before = index.device.snapshot()
        for key in range(128):
            index.update(key, 7 - (key % 8))
        update_writes = index.device.stats_since(before).writes
        rows.append((update_friendly, update_writes))
    report = format_table(
        ["update-friendly deltas", "update writes"],
        [list(row) for row in rows],
        title="E10b: update-friendly bitmaps absorb updates in delta vectors",
    )
    emit_report("ablation_bitmap_updates", report)
    plain, friendly = rows
    assert friendly[1] <= plain[1]


# ----------------------------------------------------------------------
# E11: B+-Tree knobs
# ----------------------------------------------------------------------
def _btree_knob_sweep() -> list:
    rows = []
    for leaf_capacity, fanout in ((4, 4), (8, 8), (15, 16), (None, None)):
        overrides = {}
        if leaf_capacity:
            overrides = dict(leaf_capacity=leaf_capacity, fanout=fanout)
        method = loaded_method("btree", N, **overrides)
        reads = point_query_cost(method, N)
        space = method.space_bytes() / method.base_bytes()
        height = method.height
        rows.append((leaf_capacity or "block", fanout or "block", height, reads, space))
    return rows


@pytest.mark.benchmark(group="ablations")
def test_btree_knob_sweep(benchmark):
    mark(benchmark)
    rows = _btree_knob_sweep()
    report = format_table(
        ["leaf capacity", "fanout", "height", "point reads/op", "MO"],
        [list(row) for row in rows],
        title="E11: B+-Tree node-size knobs - tree height vs space",
    )
    emit_report("ablation_btree_knobs", report)
    # Bigger nodes => shorter tree => fewer reads per probe.
    heights = [row[2] for row in rows]
    reads = [row[3] for row in rows]
    assert heights[0] > heights[-1]
    assert reads[0] > reads[-1]


@pytest.mark.benchmark(group="ablations")
def test_zonemap_partition_sweep(benchmark):
    mark(benchmark)
    rows = []
    for partition in (64, 256, 1024, 4096):
        method = loaded_method("zonemap", N, partition_records=partition)
        reads = point_query_cost(method, N)
        aux = max(0, method.space_bytes() - method.base_bytes())
        rows.append((partition, reads, aux))
    report = format_table(
        ["partition P (records)", "point reads/op", "aux bytes"],
        [list(row) for row in rows],
        title="E11b: ZoneMap partition size - the M-R slider of Table 1",
    )
    emit_report("ablation_zonemap", report)
    # Small partitions: more synopsis (space) but finer pruning is
    # balanced against synopsis scan cost; the aux size must fall
    # monotonically with P.
    auxes = [row[2] for row in rows]
    assert all(b <= a for a, b in zip(auxes, auxes[1:]))
    # Huge partitions degrade reads versus the sweet spot.
    reads = [row[1] for row in rows]
    assert reads[-1] > min(reads)
