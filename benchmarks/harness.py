"""Shared measurement harness for the paper-reproduction benchmarks.

Each benchmark module regenerates one artifact of the paper (a
proposition, Table 1, or one of Figures 1-3) by measuring I/O on the
simulated device.  This module holds the common machinery: method
construction at benchmark scale, per-operation I/O probes, sweep-engine
routing for the grid benchmarks, and report output (printed and
archived under ``benchmarks/reports/``).

Grid benchmarks (Figure 1, Figure 3, the conjecture sweep, Table 1) go
through :func:`run_cells` / :func:`measure_profiles`, which route over
:class:`repro.exec.SweepEngine`.  Two environment knobs apply:

* ``REPRO_JOBS=N`` fans the grid over N worker processes (results are
  byte-identical to a serial run);
* ``REPRO_BENCH_CACHE=DIR`` re-uses cached cell results from DIR across
  runs (content-addressed — any cell or library change invalidates).

Both default to off, so a plain ``pytest benchmarks/`` behaves exactly
as before.
"""

from __future__ import annotations

import os
import random
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.interfaces import AccessMethod
from repro.core.registry import create_method
from repro.core.rum import RUMProfile
from repro.exec import ResultCache, SweepCell, SweepEngine, SweepOutcome
from repro.obs.sinks import JsonlSink
from repro.obs.tracer import RecordingTracer, Tracer
from repro.storage.device import SimulatedDevice
from repro.workloads.runner import run_workload
from repro.workloads.spec import WorkloadSpec

#: Benchmark block size: 256 bytes = 16 records, so multi-block effects
#: appear at modest N and sweeps stay fast.
BENCH_BLOCK = 256
RECORDS_PER_BLOCK = 16

#: Constructor overrides at benchmark scale.
BENCH_KWARGS: Dict[str, dict] = {
    "lsm": dict(memtable_records=128, size_ratio=4),
    "masm": dict(buffer_records=128, max_runs=6),
    "pdt": dict(checkpoint_records=512),
    "pbt": dict(partition_records=512, max_partitions=6),
    "zonemap": dict(partition_records=256),
    "approximate-index": dict(partition_records=256),
    "adaptive-merging": dict(run_records=512),
    "cracking": dict(pending_limit=256),
    "sorted-column": dict(sort_memory_blocks=8),
    "btree": dict(sort_memory_blocks=8),
    "indexed-log": dict(segment_records=256, compact_segments=12),
    "morphing": dict(window=300),
    "silt": dict(log_records=256, merge_stores=4),
}

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")

#: Shared tracer for `pytest benchmarks/ --io-trace PATH` (or the
#: REPRO_TRACE env var); None means tracing is off and devices keep
#: their zero-cost null tracer.
_TRACER: Optional[RecordingTracer] = None


def configure_tracing(path: str) -> None:
    """Route every harness-built device's events to a JSONL file.

    Installed by ``benchmarks/conftest.py`` when the suite runs with
    ``--io-trace PATH`` (pytest's own ``--trace`` is taken by pdb) or
    with ``REPRO_TRACE=PATH`` in the environment.
    """
    global _TRACER
    close_tracing()
    _TRACER = RecordingTracer(JsonlSink(path))


def close_tracing() -> None:
    """Close the trace sink and return to zero-cost null tracing."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.sink.close()
        _TRACER = None


def attach_tracer(device: SimulatedDevice) -> SimulatedDevice:
    """Attach the harness tracer to a device, if tracing is configured."""
    if _TRACER is not None:
        device.set_tracer(_TRACER)
    return device


def build_method(
    name: str, device: Optional[SimulatedDevice] = None, **overrides
) -> AccessMethod:
    kwargs = dict(BENCH_KWARGS.get(name, {}))
    kwargs.update(overrides)
    if device is None:
        device = attach_tracer(SimulatedDevice(block_bytes=BENCH_BLOCK))
    return create_method(name, device=device, **kwargs)


@lru_cache(maxsize=None)
def _bench_records(n_records: int) -> Tuple[Tuple[int, int], ...]:
    records = [(2 * i, 20 * i + 1) for i in range(n_records)]
    random.Random(17).shuffle(records)
    return tuple(records)


def bench_records(n_records: int) -> List[Tuple[int, int]]:
    """The benchmark load set: ``n_records`` shuffled (key, value) pairs.

    Every loader uses the same seed-17 shuffle, so results are
    comparable across probes; the list is memoized (methods may mutate
    their copy freely — callers get a fresh list each time).
    """
    return list(_bench_records(n_records))


def loaded_method(
    name: str,
    n_records: int,
    shuffled: bool = True,
    churn: bool = True,
    device: Optional[SimulatedDevice] = None,
    **overrides,
) -> AccessMethod:
    """A method bulk-loaded with ``n_records`` and brought to steady state.

    ``shuffled`` makes the load path sort; ``churn`` applies a burst of
    updates afterwards so differential structures (LSM, MaSM, ...) reach
    their realistic multi-run shape instead of the unrepresentative
    single-sorted-run state right after a bulk load.
    """
    method = build_method(name, device=device, **overrides)
    if shuffled:
        records = bench_records(n_records)
    else:
        records = [(2 * i, 20 * i + 1) for i in range(n_records)]
    method.bulk_load(records)
    if churn:
        rng = random.Random(19)
        for _ in range(max(1, n_records // 5)):
            key = 2 * rng.randrange(n_records)
            method.update(key, key + 7)
    method.flush()
    return method


def io_per_op(
    method: AccessMethod, operations: Sequence[Callable[[], object]]
) -> float:
    """Average block I/Os (reads + writes) per operation."""
    device = method.device
    before = device.snapshot()
    for operation in operations:
        operation()
    method.flush()
    stats = device.stats_since(before)
    return (stats.reads + stats.writes) / max(1, len(operations))


def reads_per_op(method: AccessMethod, operations: Sequence[Callable[[], object]]) -> float:
    device = method.device
    before = device.snapshot()
    for operation in operations:
        operation()
    stats = device.stats_since(before)
    return stats.reads / max(1, len(operations))


def point_query_cost(method: AccessMethod, n_records: int, probes: int = 40) -> float:
    """Average block reads per present-key point query."""
    rng = random.Random(23)
    keys = [2 * rng.randrange(n_records) for _ in range(probes)]
    return reads_per_op(method, [lambda k=k: method.get(k) for k in keys])


def range_query_cost(
    method: AccessMethod, n_records: int, result_size: int, probes: int = 15
) -> float:
    """Average block reads per range query returning ~result_size rows."""
    rng = random.Random(29)
    ops = []
    for _ in range(probes):
        start = rng.randrange(max(1, n_records - result_size))
        lo = 2 * start
        hi = 2 * (start + result_size - 1)
        ops.append(lambda lo=lo, hi=hi: method.range_query(lo, hi))
    return reads_per_op(method, ops)


def insert_cost(method: AccessMethod, n_records: int, inserts: int = 40) -> float:
    """Average block I/Os per insert of fresh keys (amortized).

    Fresh keys are *odd* keys inside the occupied range (the loaded keys
    are even), so inserts land mid-structure and shifting/splitting
    organizations pay their real cost — appending at the tail would
    flatter them.
    """
    rng = random.Random(31)
    offsets = rng.sample(range(n_records), inserts)
    ops = [
        lambda k=(2 * offset + 1): method.insert(k, k) for offset in offsets
    ]
    return io_per_op(method, ops)


def update_cost(method: AccessMethod, n_records: int, updates: int = 40) -> float:
    """Average block I/Os per value update of existing keys."""
    rng = random.Random(37)
    ops = []
    for _ in range(updates):
        key = 2 * rng.randrange(n_records)
        ops.append(lambda k=key: method.update(k, 0))
    return io_per_op(method, ops)


def auxiliary_bytes(method: AccessMethod) -> int:
    """Space beyond the base data — the paper's 'index size'."""
    return max(0, method.space_bytes() - method.base_bytes())


def bulk_creation_cost(
    name: str,
    n_records: int,
    device: Optional[SimulatedDevice] = None,
    **overrides,
) -> float:
    """Total block I/Os to bulk load n shuffled records."""
    method = build_method(name, device=device, **overrides)
    before = method.device.snapshot()
    method.bulk_load(bench_records(n_records))
    method.flush()
    stats = method.device.stats_since(before)
    return stats.reads + stats.writes


def measure_profile(name: str, spec: WorkloadSpec, **overrides) -> RUMProfile:
    """Measured RUM profile of a method under a workload spec."""
    method = build_method(name, **overrides)
    return run_workload(method, spec).profile


# ----------------------------------------------------------------------
# Sweep-engine routing (the grid benchmarks go through here)
# ----------------------------------------------------------------------
#: Session-persistent engines, one per (jobs, cache dir, tracing)
#: configuration.  Each engine owns a worker pool that is reused across
#: every grid benchmark in the session, so pool startup is paid once —
#: :func:`shutdown_engines` (wired into ``benchmarks/conftest.py``)
#: releases the workers at session end.
_ENGINES: Dict[Tuple[int, Optional[str], bool], SweepEngine] = {}


def sweep_engine(collect_events: Optional[bool] = None) -> SweepEngine:
    """The engine the grid benchmarks run on, configured from the env.

    ``REPRO_JOBS`` sets the worker count (default 1: in-process, no
    pool); ``REPRO_BENCH_CACHE`` names a result-cache directory (default
    unset: always execute).  When harness tracing is on, workers collect
    their cells' events so :func:`run_cells` can forward them.  Engines
    are memoized per configuration: every grid in a session shares one
    persistent worker pool (and its learned cost model) instead of
    spawning a fresh pool per benchmark.
    """
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    if collect_events is None:
        collect_events = _TRACER is not None
    key = (jobs, cache_dir, collect_events)
    engine = _ENGINES.get(key)
    if engine is None:
        cache = ResultCache(root=cache_dir) if cache_dir else None
        engine = SweepEngine(
            jobs=jobs, cache=cache, collect_events=collect_events
        )
        _ENGINES[key] = engine
    return engine


def shutdown_engines() -> None:
    """Close every session engine's worker pool (idempotent)."""
    for engine in _ENGINES.values():
        engine.close()
    _ENGINES.clear()


def run_cells(cells: Sequence[SweepCell]) -> SweepOutcome:
    """Run a cell grid through the sweep engine.

    If harness tracing is configured, each cell's events (recorded
    inside the worker) are re-emitted through the shared tracer, so the
    JSONL file matches a serial traced run of the same grid.
    """
    outcome = sweep_engine().run(cells)
    if _TRACER is not None and outcome.events:
        for event in outcome.events:
            _TRACER.emit(
                source=event.source,
                op=event.op,
                block_id=event.block_id,
                kind=event.kind,
                sequential=event.sequential,
                cost=event.cost,
                nbytes=event.nbytes,
            )
    return outcome


def measure_profiles(
    spec: WorkloadSpec,
    entries: Sequence[Tuple[str, str, dict]],
) -> Dict[str, RUMProfile]:
    """RUM profiles for a grid of ``(label, method, overrides)`` cells.

    The benchmark-scale constructor overrides (:data:`BENCH_KWARGS`) are
    baked into each cell, so the cell's content hash — and therefore its
    cache identity — captures the full configuration.
    """
    cells = [
        SweepCell.make(
            name,
            spec,
            label=label,
            block_bytes=BENCH_BLOCK,
            overrides={**BENCH_KWARGS.get(name, {}), **overrides},
        )
        for label, name, overrides in entries
    ]
    outcome = run_cells(cells)
    return {
        cell.display_label: result.profile
        for cell, result in zip(outcome.cells, outcome.results)
    }


def run_table1_cell(cell: SweepCell, tracer: Optional[Tracer] = None) -> dict:
    """Custom sweep runner: every Table-1 probe for one (method, N) cell.

    Cell params carry ``n`` and ``range_result``.  Returns a plain JSON
    row (the operation costs), so it round-trips through the engine's
    envelope under the ``"json"`` tag.  Devices are built locally and
    attached to the engine-supplied tracer — never the harness global,
    which must not be shared across worker processes.
    """

    def fresh_device() -> SimulatedDevice:
        device = SimulatedDevice(block_bytes=BENCH_BLOCK, name=cell.display_label)
        if tracer is not None:
            device.set_tracer(tracer)
        return device

    params = cell.param_kwargs()
    n = int(params["n"])
    range_result = int(params["range_result"])
    overrides = cell.override_kwargs()
    method = loaded_method(cell.method, n, device=fresh_device(), **overrides)
    return {
        "index_size": auxiliary_bytes(method),
        "point_query": point_query_cost(method, n),
        "range_query": range_query_cost(method, n, range_result),
        "insert": insert_cost(method, n),
        "bulk_creation": bulk_creation_cost(
            cell.method, n, device=fresh_device(), **overrides
        ),
    }


def mark(benchmark) -> None:
    """Register a trivial timing on the pytest-benchmark fixture.

    Assertion-bearing benchmark tests call this so they still execute
    (rather than being skipped) under ``pytest --benchmark-only``; the
    heavy measurement lives in shared module-scoped fixtures.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def emit_report(name: str, text: str) -> None:
    """Print a benchmark report and archive it under reports/."""
    os.makedirs(REPORT_DIR, exist_ok=True)
    path = os.path.join(REPORT_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print()
    print(text)
