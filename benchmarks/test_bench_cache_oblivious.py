"""E15: cache-oblivious access methods (paper Section 4).

"Cache-oblivious access methods, however, achieve that by having a
larger constant factor in read performance.  In addition, cache-
oblivious access methods have a larger memory overhead because they
require more pointers ...  Finally, cache-oblivious designs are less
tunable."

We sweep the block size and measure point-probe block reads for three
layouts of the same sorted data:

* the **van Emde Boas tree** (cache-oblivious — never told the block
  size),
* the **sorted column** (binary search: O(log2 N/B) block touches),
* the **block-aware B+-Tree** (tuned to the block size by construction).

The paper's three claims are asserted: the vEB layout adapts to every
block size and beats the naive binary search *everywhere without
tuning*; the cache-aware B+-Tree keeps a constant-factor edge over it;
and the vEB layout pays more space (explicit child pointers).
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.tables import format_table
from repro.core.registry import create_method
from repro.storage.device import SimulatedDevice

from benchmarks.harness import attach_tracer, emit_report, mark

N = 8192
BLOCK_SIZES = [64, 256, 1024, 4096]
LAYOUTS = ["cache-oblivious", "sorted-column", "btree"]


def _measure() -> dict:
    results = {}
    for block_bytes in BLOCK_SIZES:
        for name in LAYOUTS:
            method = create_method(
                name, device=attach_tracer(SimulatedDevice(block_bytes=block_bytes))
            )
            method.bulk_load([(2 * i, i) for i in range(N)])
            rng = random.Random(3)
            before = method.device.snapshot()
            for _ in range(60):
                method.get(2 * rng.randrange(N))
            reads = method.device.stats_since(before).reads / 60
            space = method.space_bytes() / method.base_bytes()
            results[(block_bytes, name)] = (reads, space)
    return results


@pytest.fixture(scope="module")
def sweep():
    return _measure()


@pytest.mark.benchmark(group="cache-oblivious")
def test_cache_oblivious_report(benchmark, sweep):
    mark(benchmark)
    rows = []
    for block_bytes in BLOCK_SIZES:
        row = [block_bytes]
        for name in LAYOUTS:
            reads, _ = sweep[(block_bytes, name)]
            row.append(reads)
        rows.append(row)
    report = format_table(
        ["block bytes"] + [f"{name} (reads/probe)" for name in LAYOUTS],
        rows,
        title="E15: point-probe cost across block sizes - the vEB layout "
              "adapts without being told B",
    )
    emit_report("cache_oblivious", report)


class TestSection4Claims:
    def test_veb_beats_binary_search_at_every_block_size(self, benchmark, sweep):
        mark(benchmark)
        # Cache-oblivious optimality: better than the naive layout for
        # all B, with no tuning knob ever set.
        for block_bytes in BLOCK_SIZES:
            veb, _ = sweep[(block_bytes, "cache-oblivious")]
            binary, _ = sweep[(block_bytes, "sorted-column")]
            assert veb < binary, block_bytes

    def test_cache_aware_btree_keeps_constant_factor_edge(self, benchmark, sweep):
        mark(benchmark)
        # "larger constant factor in read performance": the tuned
        # structure wins at every granularity.
        for block_bytes in BLOCK_SIZES:
            veb, _ = sweep[(block_bytes, "cache-oblivious")]
            btree, _ = sweep[(block_bytes, "btree")]
            assert btree <= veb, block_bytes

    def test_veb_adapts_to_growing_blocks(self, benchmark, sweep):
        mark(benchmark)
        reads = [sweep[(block_bytes, "cache-oblivious")][0] for block_bytes in BLOCK_SIZES]
        # Strictly improving as B grows — despite never knowing B.
        assert all(b < a for a, b in zip(reads, reads[1:]))
        assert reads[-1] < reads[0] / 3

    def test_veb_pays_more_space_than_the_plain_column(self, benchmark, sweep):
        mark(benchmark)
        # "larger memory overhead because they require more pointers".
        for block_bytes in (256, 1024, 4096):
            _, veb_space = sweep[(block_bytes, "cache-oblivious")]
            _, column_space = sweep[(block_bytes, "sorted-column")]
            assert veb_space > column_space, block_bytes
