"""E16: where the B+-Tree/LSM crossover falls.

The RUM trade between the read-optimized tree and the write-optimized
LSM implies a *crossover*: as the workload's write fraction grows, the
total simulated cost of the LSM must fall below the B+-Tree's at some
mix.  This bench sweeps the write fraction and locates that crossover —
the "who wins, and where the crossover falls" evidence the library's
wizard relies on.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core.registry import create_method
from repro.storage.device import CostModel, SimulatedDevice
from repro.workloads.runner import run_workload
from repro.workloads.spec import WorkloadSpec

from benchmarks.harness import BENCH_BLOCK, BENCH_KWARGS, attach_tracer, emit_report, mark

WRITE_FRACTIONS = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]


def _spec(write_fraction: float) -> WorkloadSpec:
    reads = 1.0 - write_fraction
    return WorkloadSpec(
        point_queries=reads,
        inserts=write_fraction * 0.6,
        updates=write_fraction * 0.4,
        operations=1200,
        initial_records=3000,
    )


def _measure() -> dict:
    import random

    from repro.core.rum import measure_workload
    from repro.workloads.generator import WorkloadGenerator

    times = {}
    for write_fraction in WRITE_FRACTIONS:
        for name in ("btree", "lsm"):
            device = attach_tracer(SimulatedDevice(
                block_bytes=BENCH_BLOCK, cost_model=CostModel.flash()
            ))
            method = create_method(name, device=device, **BENCH_KWARGS.get(name, {}))
            spec = _spec(write_fraction)
            generator = WorkloadGenerator(spec)
            data = generator.initial_data()
            method.bulk_load(data)
            # Churn to steady state: a freshly bulk-loaded LSM is one
            # sorted run (unrealistically read-cheap); real LSMs carry
            # several levels of history.
            rng = random.Random(19)
            for _ in range(spec.initial_records // 4):
                method.update(2 * rng.randrange(spec.initial_records), 7)
            method.flush()
            device.reset_counters()
            profile = measure_workload(method, generator.operations())
            times[(write_fraction, name)] = profile.simulated_time
    return times


@pytest.fixture(scope="module")
def sweep():
    return _measure()


@pytest.mark.benchmark(group="crossover")
def test_crossover_report(benchmark, sweep):
    mark(benchmark)
    rows = []
    for write_fraction in WRITE_FRACTIONS:
        btree = sweep[(write_fraction, "btree")]
        lsm = sweep[(write_fraction, "lsm")]
        winner = "lsm" if lsm < btree else "btree"
        rows.append([f"{write_fraction:.0%}", btree, lsm, winner])
    report = format_table(
        ["write fraction", "btree time", "lsm time", "winner"],
        rows,
        title="E16: B+-Tree vs LSM on flash - the crossover as writes grow",
    )
    emit_report("crossover", report)


class TestCrossover:
    def test_lsm_wins_when_writes_dominate(self, benchmark, sweep):
        mark(benchmark)
        assert sweep[(1.0, "lsm")] < sweep[(1.0, "btree")]

    def test_crossover_exists_and_is_unique_direction(self, benchmark, sweep):
        mark(benchmark)
        # The LSM/btree time ratio must fall monotonically-ish with the
        # write fraction: once the LSM wins, more writes keep it winning.
        ratios = [
            sweep[(w, "lsm")] / sweep[(w, "btree")] for w in WRITE_FRACTIONS
        ]
        assert ratios[-1] < ratios[0]
        crossed = False
        for ratio in ratios:
            if ratio < 1.0:
                crossed = True
            elif crossed:
                pytest.fail(f"winner flipped back: ratios={ratios}")
        assert crossed, f"no crossover in sweep: ratios={ratios}"

    def test_lsm_advantage_grows_with_write_fraction(self, benchmark, sweep):
        mark(benchmark)
        early = sweep[(0.2, "btree")] / sweep[(0.2, "lsm")]
        late = sweep[(0.8, "btree")] / sweep[(0.8, "lsm")]
        assert late > early
