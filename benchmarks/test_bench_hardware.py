"""E13: hardware-aware priorities (paper Section 2).

"While access time ... often has top priority, the workload or the
underlying technology sometimes shift priorities.  For example, storage
with limited endurance (like flash-based drives) favors minimizing the
update overhead ..."

We run the same write-heavy workload on the same structures over
different device cost models (DRAM / flash / rotational disk / shingled
disk) and compare *simulated time*.  The write-optimized LSM's advantage
over the in-place B+-Tree must widen as the medium punishes writes —
the hardware-awareness argument that motivates RUM-aware designs.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core.registry import create_method
from repro.storage.device import CostModel, SimulatedDevice
from repro.workloads.runner import run_workload
from repro.workloads.spec import WorkloadSpec

from benchmarks.harness import BENCH_BLOCK, BENCH_KWARGS, attach_tracer, emit_report, mark

SPEC = WorkloadSpec(
    point_queries=0.15,
    inserts=0.5,
    updates=0.3,
    deletes=0.05,
    operations=1200,
    initial_records=3000,
)

MEDIA = {
    "dram": CostModel.dram(),
    "flash": CostModel.flash(),
    "disk": CostModel.disk(),
    "shingled": CostModel.shingled_disk(),
}

METHODS = ["btree", "lsm", "sorted-column", "unsorted-column"]


def _measure() -> dict:
    times = {}
    for medium, cost_model in MEDIA.items():
        for name in METHODS:
            device = attach_tracer(SimulatedDevice(
                block_bytes=BENCH_BLOCK, cost_model=cost_model, name=medium
            ))
            method = create_method(name, device=device, **BENCH_KWARGS.get(name, {}))
            profile = run_workload(method, SPEC).profile
            times[(medium, name)] = profile.simulated_time
    return times


@pytest.fixture(scope="module")
def times():
    return _measure()


@pytest.mark.benchmark(group="hardware")
def test_hardware_report(benchmark, times):
    mark(benchmark)
    rows = []
    for medium in MEDIA:
        row = [medium] + [times[(medium, name)] for name in METHODS]
        rows.append(row)
    report = format_table(
        ["medium"] + METHODS,
        rows,
        title="E13: simulated time of a write-heavy workload across media",
    )
    emit_report("hardware", report)


class TestHardwarePriorities:
    def test_lsm_advantage_grows_with_write_penalty(self, benchmark, times):
        mark(benchmark)
        # Ratio btree-time / lsm-time per medium; write-punishing media
        # must favour the LSM more than symmetric DRAM does.
        ratios = {
            medium: times[(medium, "btree")] / times[(medium, "lsm")]
            for medium in MEDIA
        }
        assert ratios["flash"] > ratios["dram"]
        assert ratios["shingled"] > ratios["flash"]

    def test_lsm_beats_btree_on_flash_writes(self, benchmark, times):
        mark(benchmark)
        assert times[("flash", "lsm")] < times[("flash", "btree")]

    def test_sorted_column_is_hopeless_under_write_penalties(self, benchmark, times):
        mark(benchmark)
        for medium in ("flash", "shingled"):
            assert times[(medium, "sorted-column")] > 3 * times[(medium, "lsm")]

    def test_hardware_flips_the_sorted_vs_heap_winner(self, benchmark, times):
        mark(benchmark)
        # The paper's priority-shift argument, crystallized: on symmetric
        # cheap DRAM the read-friendly sorted column wins this mix (its
        # scans are cheap, the heap's are not); on media that punish
        # writes the shift-everything sorted column loses to the
        # append-mostly heap.  Same structures, same workload — the
        # hardware flips the winner.
        assert times[("dram", "sorted-column")] < times[("dram", "unsorted-column")]
        for medium in ("flash", "disk", "shingled"):
            assert (
                times[(medium, "unsorted-column")]
                < times[(medium, "sorted-column")]
            ), medium
