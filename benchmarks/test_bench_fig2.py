"""E6: Figure 2 — RUM overheads in memory hierarchies.

The paper's Figure 2: "the RO_n read and the UO_n update overheads at
memory level n can be reduced by storing more data, updates, or
meta-data, at the previous level n-1, which results, at least, in a
higher MO_{n-1}".

We drive block workloads through chained hierarchies and sweep cache
capacity.  The measured series must show RO_n (traffic reaching the
backing level) falling monotonically as MO_{n-1} (bytes replicated at
the cache level) rises — the exact interaction of the figure.  Because
the hierarchy is genuinely chained (each level's pool targets the level
below it), the sweep also asserts **exact conservation** at every
capacity point: reads/writes passed down at level n equal the
reads/writes reaching level n+1, with the two sides counted by
independent code paths.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.tables import format_table
from repro.storage.device import CostModel, SimulatedDevice
from repro.storage.hierarchy import LevelSpec, MemoryHierarchy

from benchmarks.harness import BENCH_BLOCK, attach_tracer, emit_report, mark

N_BLOCKS = 256
ACCESSES = 3000
CAPACITIES = [0, 16, 32, 64, 128, 256]
CACHE_SWEEP = [0, 4, 8, 16, 32, 64]
DRAM_BLOCKS = 96


def _measure() -> list:
    """Sweep cache capacity; return (capacity, RO_n, UO_n, MO_{n-1}) rows.

    The workload is a skewed block-access pattern (hot head), the shape
    under which caching actually pays — all levels see the same stream.
    """
    rows = []
    rng = random.Random(71)
    pattern = []
    for _ in range(ACCESSES):
        block = min(int(rng.expovariate(1.0 / 24)), N_BLOCKS - 1)
        write = rng.random() < 0.25
        pattern.append((block, write))
    for capacity in CAPACITIES:
        backing = attach_tracer(SimulatedDevice(block_bytes=BENCH_BLOCK, name="flash"))
        blocks = []
        for i in range(N_BLOCKS):
            block = backing.allocate()
            backing.write(block, f"payload-{i}")
            blocks.append(block)
        backing.reset_counters()
        hierarchy = MemoryHierarchy(backing, [LevelSpec("dram", capacity)])
        for index, write in pattern:
            if write:
                hierarchy.write(blocks[index], f"updated-{index}")
            else:
                hierarchy.read(blocks[index])
        hierarchy.flush()
        reads_reaching_backing = backing.counters.reads
        writes_reaching_backing = backing.counters.writes
        cache_bytes = hierarchy.levels[0].space_bytes
        rows.append(
            (
                capacity,
                reads_reaching_backing,
                writes_reaching_backing,
                cache_bytes,
                hierarchy.levels[0].hit_rate(),
            )
        )
    return rows


@pytest.fixture(scope="module")
def sweep():
    return _measure()


@pytest.mark.benchmark(group="fig2")
def test_fig2_report(benchmark, sweep):
    mark(benchmark)
    report = format_table(
        ["cache capacity (blocks)", "RO_n: reads at level n",
         "UO_n: writes at level n", "MO_(n-1): bytes at level n-1",
         "hit rate"],
        [list(row) for row in sweep],
        title="Figure 2 (measured): growing level n-1 lowers level-n traffic",
    )
    emit_report("fig2", report)


def _measure_three_levels() -> list:
    """Sweep the top (cache) level of a cache/DRAM/disk chain.

    Returns one dict per capacity point carrying every per-level
    counter the conservation assertions need, plus the audit outcome.
    """
    rows = []
    rng = random.Random(73)
    pattern = []
    for _ in range(ACCESSES):
        block = min(int(rng.expovariate(1.0 / 24)), N_BLOCKS - 1)
        pattern.append((block, rng.random() < 0.25))
    for capacity in CACHE_SWEEP:
        backing = attach_tracer(
            SimulatedDevice(
                block_bytes=BENCH_BLOCK,
                cost_model=CostModel.disk(),
                name="disk",
            )
        )
        blocks = []
        for i in range(N_BLOCKS):
            block = backing.allocate()
            backing.write(block, f"payload-{i}", used_bytes=BENCH_BLOCK // 2)
            blocks.append(block)
        backing.reset_counters()
        hierarchy = MemoryHierarchy(
            backing,
            [
                LevelSpec("cache", capacity, cost_model=CostModel.dram()),
                LevelSpec("dram", DRAM_BLOCKS, access_cost=0.1),
            ],
        )
        for index, write in pattern:
            if write:
                hierarchy.write(
                    blocks[index],
                    f"updated-{index}",
                    used_bytes=BENCH_BLOCK // 2,
                )
            else:
                hierarchy.read(blocks[index])
        hierarchy.flush()
        cache = hierarchy.level("cache").counters
        dram = hierarchy.level("dram").counters
        rows.append({
            "capacity": capacity,
            "cache": cache,
            "dram": dram,
            "backing_reads": hierarchy.backing_reads,
            "backing_writes": hierarchy.backing_writes,
            "device_reads": backing.counters.reads,
            "device_writes": backing.counters.writes,
            "cache_bytes": hierarchy.level("cache").space_bytes,
            "dram_bytes": hierarchy.level("dram").space_bytes,
            "simulated_time": hierarchy.simulated_time,
            "violations": hierarchy.audit(),
        })
    return rows


@pytest.fixture(scope="module")
def deep_sweep():
    return _measure_three_levels()


@pytest.mark.benchmark(group="fig2")
def test_fig2_three_level_report(benchmark, deep_sweep):
    mark(benchmark)
    report = format_table(
        ["cache blocks", "reads at dram", "reads at disk",
         "writes at disk", "cache bytes", "simulated time"],
        [
            [
                row["capacity"],
                row["dram"].reads_reaching,
                row["backing_reads"],
                row["backing_writes"],
                row["cache_bytes"],
                round(row["simulated_time"], 1),
            ]
            for row in deep_sweep
        ],
        title="Figure 2, chained: cache/DRAM/disk, growing the top level",
    )
    emit_report("fig2_three_level", report)


class TestThreeLevelConservation:
    """Exact conservation at every point of the whole capacity sweep."""

    def test_reads_conserved_level_by_level(self, benchmark, deep_sweep):
        mark(benchmark)
        for row in deep_sweep:
            assert row["cache"].reads_passed_down == row["dram"].reads_reaching
            assert row["dram"].reads_passed_down == row["backing_reads"]
            assert row["backing_reads"] == row["device_reads"]

    def test_writes_conserved_level_by_level(self, benchmark, deep_sweep):
        mark(benchmark)
        for row in deep_sweep:
            assert row["cache"].writes_passed_down == row["dram"].writes_reaching
            assert row["dram"].writes_passed_down == row["backing_writes"]
            assert row["backing_writes"] == row["device_writes"]

    def test_audit_clean_at_every_capacity(self, benchmark, deep_sweep):
        mark(benchmark)
        for row in deep_sweep:
            assert row["violations"] == []

    def test_growing_the_top_relieves_the_middle_and_bottom(
        self, benchmark, deep_sweep
    ):
        mark(benchmark)
        dram_reads = [row["dram"].reads_reaching for row in deep_sweep]
        assert all(b <= a for a, b in zip(dram_reads, dram_reads[1:]))
        space = [row["cache_bytes"] for row in deep_sweep]
        assert all(b >= a for a, b in zip(space, space[1:]))
        assert space[0] == 0 and space[-1] > 0
        times = [row["simulated_time"] for row in deep_sweep]
        assert times[-1] < times[0]


def _btree_over_cache() -> list:
    """The same sweep with a *real access method* over the cache.

    A B+-Tree runs unchanged on a CachedDevice; its hot root/internal
    blocks stick in the fast level, so the traffic reaching the backing
    device falls as the cache grows — Figure 2 with an actual structure
    rather than raw block traffic.
    """
    import random

    from repro.methods.btree import BPlusTree
    from repro.storage.cached import CachedDevice

    rows = []
    rng = random.Random(79)
    keys = [2 * min(int(rng.expovariate(1.0 / 300)), 3999) for _ in range(2000)]
    for capacity in (0, 8, 32, 128):
        backing = attach_tracer(SimulatedDevice(block_bytes=BENCH_BLOCK, name="flash"))
        cached = CachedDevice(backing, capacity_blocks=capacity)
        tree = BPlusTree(device=cached)
        tree.bulk_load([(2 * i, i) for i in range(4000)])
        cached.flush()
        backing.reset_counters()
        for key in keys:
            tree.get(key)
        rows.append((capacity, backing.counters.reads, cached.cache_bytes()))
    return rows


@pytest.fixture(scope="module")
def btree_sweep():
    return _btree_over_cache()


@pytest.mark.benchmark(group="fig2")
def test_fig2_btree_report(benchmark, btree_sweep):
    mark(benchmark)
    report = format_table(
        ["cache capacity (blocks)", "backing reads (RO_n)",
         "cache bytes (MO_n-1)"],
        [list(row) for row in btree_sweep],
        title="Figure 2 with a real structure: B+-Tree over a cached device",
    )
    emit_report("fig2_btree", report)


class TestStructureOverHierarchy:
    def test_backing_reads_fall_with_cache(self, benchmark, btree_sweep):
        mark(benchmark)
        reads = [row[1] for row in btree_sweep]
        assert all(b <= a for a, b in zip(reads, reads[1:]))
        assert reads[-1] < reads[0] / 2

    def test_cache_space_is_the_price(self, benchmark, btree_sweep):
        mark(benchmark)
        space = [row[2] for row in btree_sweep]
        assert space[0] == 0
        assert all(b >= a for a, b in zip(space, space[1:]))


class TestVerticalTradeoff:
    def test_reads_reaching_backing_fall_monotonically(self, benchmark, sweep):
        mark(benchmark)
        reads = [row[1] for row in sweep]
        assert all(b <= a for a, b in zip(reads, reads[1:]))
        assert reads[-1] < reads[0] / 5  # big caches help a lot

    def test_writes_reaching_backing_fall(self, benchmark, sweep):
        mark(benchmark)
        writes = [row[2] for row in sweep]
        assert writes[-1] < writes[0]

    def test_cache_space_rises_monotonically(self, benchmark, sweep):
        mark(benchmark)
        space = [row[3] for row in sweep]
        assert all(b >= a for a, b in zip(space, space[1:]))
        assert space[0] == 0 and space[-1] > 0

    def test_tradeoff_is_real(self, benchmark, sweep):
        mark(benchmark)
        # Every step that lowered backing reads raised cache space:
        # there is no free lunch between adjacent sweep points.
        for (c0, r0, _, s0, _), (c1, r1, _, s1, _) in zip(sweep, sweep[1:]):
            if r1 < r0:
                assert s1 > s0, (c0, c1)

    def test_hit_rate_grows_with_capacity(self, benchmark, sweep):
        mark(benchmark)
        rates = [row[4] for row in sweep]
        assert rates[-1] > rates[1] > rates[0]
