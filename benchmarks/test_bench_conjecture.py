"""E8: the RUM Conjecture itself (Section 3), tested empirically.

"An access method that can set an upper bound for two out of the read,
update, and memory overheads, also sets a lower bound for the third."

We measure every registered structure plus a grid of tunings under one
workload, print the resulting frontier, and assert that no configuration
lands near-optimal on all three overheads simultaneously — while each
*pair* of overheads is jointly reachable (so the conjecture's bite is
the three-way combination).
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core.registry import available_methods
from repro.workloads.spec import WorkloadSpec

from benchmarks.harness import emit_report, mark, measure_profile, measure_profiles

SPEC = WorkloadSpec(
    point_queries=0.4,
    inserts=0.3,
    updates=0.2,
    deletes=0.1,
    operations=1500,
    initial_records=4000,
)

#: Near-optimality thresholds.  RO's floor at 16-record blocks is 16x
#: (a point query must read at least one block), so near-R is within 2
#: blocks per probe.  UO's theoretical floor is 1.0 (log appends at
#: block batching reach it); near-U is within 4x of it.  MO floors at
#: 1.0; near-M is within 15%.
NEAR_RO = 2.0 * 16
NEAR_UO = 4.0
NEAR_MO = 1.15

#: Tuning grid entries beyond the default configurations.
TUNINGS = [
    ("lsm", dict(size_ratio=2)),
    ("lsm", dict(size_ratio=10)),
    ("lsm", dict(compaction="tiered")),
    ("lsm", dict(bloom_bits_per_key=0)),
    ("btree", dict(leaf_capacity=8, fanout=8)),
    ("zonemap", dict(partition_records=64)),
    ("zonemap", dict(partition_records=2048)),
    ("tunable", dict(read_optimization=1.0, write_optimization=1.0)),
    ("tunable", dict(read_optimization=0.0, write_optimization=0.0)),
    ("masm", dict(max_runs=2)),
    ("masm", dict(max_runs=16)),
    # The PDT checkpoint knob walks the R-U-M frontier: small deltas
    # are memory-lean but checkpoint often (U pays); large deltas
    # coalesce updates (U wins) but hold more memory (M pays).
    ("pdt", dict(checkpoint_records=128)),
    ("pdt", dict(checkpoint_records=2048)),
    ("tunable", dict(read_optimization=0.0, write_optimization=0.5)),
    ("tunable", dict(read_optimization=0.0, write_optimization=1.0)),
]


def _magic_array_profile():
    """Measure the paper's own R+U exemplar (Prop 1) for the sweep.

    The MagicArray has a set API rather than the key/value contract, so
    it is measured directly: point membership reads, value-change
    writes, and the sparse-domain space footprint.
    """
    import random

    from repro.core.rum import RUMProfile
    from repro.methods.extremes import MagicArray
    from repro.storage.layout import RECORD_BYTES

    magic = MagicArray()
    rng = random.Random(83)
    values = rng.sample(range(40_000), 4000)
    for value in values:
        magic.insert(value)
    before = magic.device.snapshot()
    probes = rng.sample(values, 200)
    for value in probes:
        magic.contains(value)
    ro = magic.device.stats_since(before).read_bytes / (200 * RECORD_BYTES)
    before = magic.device.snapshot()
    live = list(values)
    for index in range(200):
        old = live[index]
        magic.change(old, old + 40_000)
        live[index] = old + 40_000
    uo = magic.device.stats_since(before).write_bytes / (200 * RECORD_BYTES)
    return RUMProfile(ro, uo, magic.memory_overhead(), name="magic-array")


def _measure() -> dict:
    # Default configurations plus the tuning grid, all as independent
    # sweep cells (parallel under REPRO_JOBS, cached under
    # REPRO_BENCH_CACHE).  The MagicArray has its own measurement form
    # and stays in-process.
    entries = [
        (name, name, {})
        for name in sorted(available_methods())
        if name != "bitmap"  # value-predicate query model; measured in E10
    ]
    for index, (name, overrides) in enumerate(TUNINGS):
        label = f"{name}#{index}:" + ",".join(
            f"{k}={v}" for k, v in overrides.items()
        )
        entries.append((label, name, overrides))
    profiles = measure_profiles(SPEC, entries)
    profiles["magic-array (Prop 1)"] = _magic_array_profile()
    return profiles


@pytest.fixture(scope="module")
def profiles():
    return _measure()


@pytest.mark.benchmark(group="conjecture")
def test_conjecture_report(benchmark, profiles):
    mark(benchmark)
    rows = []
    for name, p in sorted(profiles.items()):
        near = (
            ("R" if p.read_overhead <= NEAR_RO else "-")
            + ("U" if p.update_overhead <= NEAR_UO else "-")
            + ("M" if p.memory_overhead <= NEAR_MO else "-")
        )
        rows.append([name, p.read_overhead, p.update_overhead, p.memory_overhead, near])
    report = format_table(
        ["configuration", "RO", "UO", "MO", "near-optimal on"],
        rows,
        title=(
            "RUM Conjecture sweep: no configuration is near-optimal on all "
            f"three axes (RO<={NEAR_RO:.0f}, UO<={NEAR_UO:.0f}, MO<={NEAR_MO})"
        ),
    )
    emit_report("conjecture", report)


class TestConjectureRobustness:
    """The conjecture must hold under other operation mixes too, not
    just the headline workload."""

    @pytest.mark.parametrize(
        "mix",
        [
            dict(point_queries=0.7, range_queries=0.1, inserts=0.1, updates=0.1),
            dict(point_queries=0.1, inserts=0.55, updates=0.25, deletes=0.1),
        ],
        ids=["read-heavy", "write-heavy"],
    )
    def test_conjecture_holds_under_other_mixes(self, benchmark, mix):
        mark(benchmark)
        # Long enough that deferred maintenance (merges, checkpoints)
        # lands inside the measured window: the conjecture is about
        # sustained costs, and a window with a single unspilled buffer
        # would flatter every differential design.
        spec = WorkloadSpec(operations=6000, initial_records=3000, **mix)
        candidates = [
            "btree", "hash-index", "lsm", "masm", "pdt", "zonemap",
            "sparse-index", "sorted-column", "unsorted-column", "silt",
            "indexed-log",
        ]
        violators = []
        for name in candidates:
            p = measure_profile(name, spec)
            if (
                p.read_overhead <= NEAR_RO
                and p.update_overhead <= NEAR_UO
                and p.memory_overhead <= NEAR_MO
            ):
                violators.append((name, p))
        assert not violators, violators


class TestConjecture:
    def test_no_configuration_beats_all_three(self, benchmark, profiles):
        mark(benchmark)
        violators = [
            name
            for name, p in profiles.items()
            if p.read_overhead <= NEAR_RO
            and p.update_overhead <= NEAR_UO
            and p.memory_overhead <= NEAR_MO
        ]
        assert not violators, f"conjecture violated by {violators}"

    def test_every_pair_is_jointly_reachable(self, benchmark, profiles):
        mark(benchmark)
        ru = any(
            p.read_overhead <= NEAR_RO and p.update_overhead <= NEAR_UO
            for p in profiles.values()
        )
        rm = any(
            p.read_overhead <= NEAR_RO and p.memory_overhead <= NEAR_MO
            for p in profiles.values()
        )
        um = any(
            p.update_overhead <= NEAR_UO and p.memory_overhead <= NEAR_MO
            for p in profiles.values()
        )
        assert ru and rm and um, (ru, rm, um)

    def test_pareto_frontier_is_wide(self, benchmark, profiles):
        mark(benchmark)
        from repro.analysis.pareto import frontier_span, pareto_frontier

        # The frontier should hold many structures (no single winner),
        # per the paper's "there is no single winner" reading of Table 1,
        # and it must *stretch*: each axis spans at least a 3x range
        # across frontier members (specialists, not one balanced point).
        frontier = pareto_frontier(profiles)
        assert len(frontier) >= 5, frontier
        span = frontier_span(profiles)
        for axis, (low, high) in span.items():
            assert high >= 3 * low, (axis, low, high)

    def test_bounding_two_overheads_pushes_the_third(self, benchmark, profiles):
        mark(benchmark)
        for name, p in profiles.items():
            bounded = [
                p.read_overhead <= NEAR_RO,
                p.update_overhead <= NEAR_UO,
                p.memory_overhead <= NEAR_MO,
            ]
            if sum(bounded) == 2:
                if not bounded[0]:
                    assert p.read_overhead > NEAR_RO
                elif not bounded[1]:
                    assert p.update_overhead > NEAR_UO
                else:
                    assert p.memory_overhead > NEAR_MO
