"""E19: data clustering and sparse indexing (paper Sections 1 and 4).

"The reason why such an approach would give us good read performance is
the fact that data is clustered on the index attribute" — the paper's
block-based clustered indexing argument.  Zone maps (and every sparse
scheme) bet on clustering: with the base data ordered on the key, each
partition covers a disjoint key range and queries touch one partition;
with the same data randomly permuted across partitions, every zone
spans the whole key space and pruning collapses to a scan.

Dense indexes (the B+-Tree) are clustering-indifferent by construction
— the control group.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.tables import format_table
from repro.core.registry import create_method
from repro.storage.device import SimulatedDevice

from benchmarks.harness import BENCH_BLOCK, attach_tracer, emit_report, mark

N = 8192


def _point_cost(name: str, clustered: bool, **kwargs) -> float:
    method = create_method(
        name, device=attach_tracer(SimulatedDevice(block_bytes=BENCH_BLOCK)), **kwargs
    )
    records = [(2 * i, i) for i in range(N)]
    if not clustered:
        # Destroy clustering: permute arrival order.  (The sorted-input
        # case leaves each partition a disjoint key range.)
        random.Random(83).shuffle(records)
    if name == "zonemap":
        # Bypass the zonemap's internal re-sorting to preserve the
        # arrival order: load through inserts.
        for key, value in records:
            method.insert(key, value)
    else:
        method.bulk_load(records)
    method.flush()
    rng = random.Random(89)
    before = method.device.snapshot()
    for _ in range(40):
        method.get(2 * rng.randrange(N))
    return method.device.stats_since(before).reads / 40


def _measure() -> dict:
    results = {}
    for name in ("zonemap", "btree"):
        for clustered in (True, False):
            kwargs = dict(partition_records=256) if name == "zonemap" else {}
            results[(name, clustered)] = _point_cost(name, clustered, **kwargs)
    return results


@pytest.fixture(scope="module")
def sweep():
    return _measure()


@pytest.mark.benchmark(group="clustering")
def test_clustering_report(benchmark, sweep):
    mark(benchmark)
    rows = []
    for name in ("zonemap", "btree"):
        rows.append([
            name,
            sweep[(name, True)],
            sweep[(name, False)],
            sweep[(name, False)] / max(sweep[(name, True)], 1e-9),
        ])
    report = format_table(
        ["method", "clustered reads/op", "shuffled reads/op", "degradation"],
        rows,
        title="E19: sparse schemes bet on clustering; dense indexes do not",
    )
    emit_report("clustering", report)


class TestClusteringDependence:
    def test_zonemap_collapses_without_clustering(self, benchmark, sweep):
        mark(benchmark)
        assert sweep[("zonemap", False)] > 5 * sweep[("zonemap", True)]

    def test_btree_is_clustering_indifferent(self, benchmark, sweep):
        mark(benchmark)
        ratio = sweep[("btree", False)] / sweep[("btree", True)]
        assert 0.7 <= ratio <= 1.4

    def test_clustered_zonemap_is_competitive(self, benchmark, sweep):
        mark(benchmark)
        # On clustered data the tiny synopsis reads within ~8x of the
        # dense tree (Table 1's best case for zone maps).
        assert sweep[("zonemap", True)] <= 8 * sweep[("btree", True)]
