"""E0: the paper's introductory example, measured.

"When data is stored in a heap file without an index, we have to
perform costly scans to locate any data we are interested in.
Conversely, a tree index on top of the heap file, uses additional space
in order to substitute the scan with a more lightweight index probe."

We measure the bare heap against the same heap with a secondary B+-Tree
index and with a secondary hash index: the indexes must cut point reads
by an order of magnitude, *pay for it in space* (the auxiliary blocks),
and charge index maintenance on every insert/delete — the RUM overheads
of the composition, decomposed exactly as Section 2 defines them.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.tables import format_table
from repro.core.registry import create_method
from repro.storage.device import SimulatedDevice

from benchmarks.harness import BENCH_BLOCK, attach_tracer, emit_report, mark

N = 8192


def _measure() -> dict:
    configurations = [
        ("bare heap", "unsorted-column", {}),
        ("heap + tree index", "indexed-heap", dict(index_kind="tree")),
        ("heap + hash index", "indexed-heap", dict(index_kind="hash")),
    ]
    results = {}
    for label, name, kwargs in configurations:
        method = create_method(
            name, device=attach_tracer(SimulatedDevice(block_bytes=BENCH_BLOCK)), **kwargs
        )
        method.bulk_load([(2 * i, i) for i in range(N)])
        rng = random.Random(41)
        device = method.device
        before = device.snapshot()
        for _ in range(50):
            method.get(2 * rng.randrange(N))
        point_reads = device.stats_since(before).reads / 50
        before = device.snapshot()
        for offset in rng.sample(range(N), 50):
            method.insert(2 * offset + 1, offset)
        insert_io = device.stats_since(before)
        insert_cost = (insert_io.reads + insert_io.writes) / 50
        space = method.space_bytes() / method.base_bytes()
        results[label] = (point_reads, insert_cost, space)
    return results


@pytest.fixture(scope="module")
def intro():
    return _measure()


@pytest.mark.benchmark(group="intro")
def test_intro_report(benchmark, intro):
    mark(benchmark)
    rows = [
        [label, reads, inserts, space]
        for label, (reads, inserts, space) in intro.items()
    ]
    report = format_table(
        ["organization", "point reads/op", "insert I/Os/op", "MO"],
        rows,
        title="E0: the paper's introduction - a heap, with and without an index",
    )
    emit_report("intro", report)


class TestIntroExample:
    def test_indexes_replace_the_scan(self, benchmark, intro):
        mark(benchmark)
        heap_reads = intro["bare heap"][0]
        for label in ("heap + tree index", "heap + hash index"):
            assert intro[label][0] < heap_reads / 10, label

    def test_indexes_cost_space(self, benchmark, intro):
        mark(benchmark)
        heap_space = intro["bare heap"][2]
        for label in ("heap + tree index", "heap + hash index"):
            assert intro[label][2] > heap_space, label

    def test_indexes_cost_update_maintenance(self, benchmark, intro):
        mark(benchmark)
        heap_inserts = intro["bare heap"][1]
        for label in ("heap + tree index", "heap + hash index"):
            assert intro[label][1] > heap_inserts, label

    def test_hash_point_probe_beats_tree(self, benchmark, intro):
        mark(benchmark)
        assert intro["heap + hash index"][0] <= intro["heap + tree index"][0]
