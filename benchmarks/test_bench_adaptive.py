"""E12: adaptive indexing trajectories (Section 4's adaptive middle).

"The index creation overhead is amortized over a period of time, and it
gradually reduces the read overhead, while increasing the update
overhead, and slowly increasing the memory overhead."

We replay a query sequence against database cracking and adaptive
merging and record the per-query read cost: the series must fall
steeply and converge far below the initial full-scan cost, while the
cumulative reorganization writes (the amortized index-creation cost)
flatten out.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.tables import format_table

from benchmarks.harness import emit_report, loaded_method, mark

N = 8192
QUERIES = 120


def _trajectory(name: str) -> list:
    method = loaded_method(name, N, churn=False)
    rng = random.Random(61)
    rows = []
    cumulative_writes = 0
    # Queries concentrate on a hot quarter of the key space — the
    # adaptive-indexing regime ("the incoming queries dictate which part
    # of the index should be fully populated", Section 4).
    hot_span = N // 4
    for query in range(QUERIES):
        start = rng.randrange(hot_span - 64)
        lo, hi = 2 * start, 2 * (start + 63)
        before = method.device.snapshot()
        method.range_query(lo, hi)
        io = method.device.stats_since(before)
        cumulative_writes += io.writes
        rows.append((query, io.reads, cumulative_writes, method.space_bytes()))
    return rows


@pytest.fixture(scope="module", params=["cracking", "adaptive-merging"])
def trajectory(request):
    return request.param, _trajectory(request.param)


@pytest.mark.benchmark(group="adaptive")
def test_adaptive_trajectory_report(benchmark, trajectory):
    mark(benchmark)
    name, rows = trajectory
    sampled = rows[:5] + rows[5:20:5] + rows[20::20]
    report = format_table(
        ["query #", "reads", "cumulative reorg writes", "space bytes"],
        [list(row) for row in sampled],
        title=f"E12: {name} - read cost falls as queries crack/merge the data",
    )
    emit_report(f"adaptive_{name}", report)


class TestAdaptiveConvergence:
    def test_read_cost_converges(self, benchmark, trajectory):
        mark(benchmark)
        name, rows = trajectory
        early = sum(row[1] for row in rows[:5]) / 5
        late = sum(row[1] for row in rows[-20:]) / 20
        assert late < early / 5, (name, early, late)

    def test_reorganization_flattens(self, benchmark, trajectory):
        mark(benchmark)
        name, rows = trajectory
        first_half_writes = rows[QUERIES // 2][2]
        total_writes = rows[-1][2]
        # Most reorganization happens early: the second half adds less
        # than the first half did.
        assert total_writes - first_half_writes < first_half_writes, name

    def test_space_grows_slowly(self, benchmark, trajectory):
        mark(benchmark)
        name, rows = trajectory
        initial_space = rows[0][3]
        final_space = rows[-1][3]
        # "slowly increasing the memory overhead": bounded growth.
        assert final_space < initial_space * 2.2, name


class TestAdaptiveVsStatic:
    def test_cracking_beats_full_scans_after_warmup(self, benchmark):
        mark(benchmark)
        cracked = loaded_method("cracking", N, churn=False)
        heap = loaded_method("unsorted-column", N, churn=False)
        rng = random.Random(67)
        queries = []
        for _ in range(60):
            start = rng.randrange(N - 64)
            queries.append((2 * start, 2 * (start + 63)))
        # Warm-up cracks the column.
        for lo, hi in queries[:40]:
            cracked.range_query(lo, hi)
        for method in (cracked, heap):
            method.device.reset_counters()
        for lo, hi in queries[40:]:
            cracked.range_query(lo, hi)
            heap.range_query(lo, hi)
        assert (
            cracked.device.counters.reads < heap.device.counters.reads / 10
        )
