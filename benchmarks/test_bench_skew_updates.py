"""E17: update skew and write coalescing.

Differential structures buffer updates before writing; when the update
stream is skewed, repeated updates to hot keys *coalesce* in the buffer
and never reach the device individually.  In-place structures gain
nothing: every update writes its block regardless.  This bench measures
write amplification for zipfian vs uniform update streams — the
coalescing dividend is a RUM effect the workload distribution controls,
orthogonal to any tuning knob.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.tables import format_table
from repro.core.registry import create_method
from repro.storage.device import SimulatedDevice
from repro.storage.layout import RECORD_BYTES
from repro.workloads.distributions import UniformKeys, ZipfianKeys

from benchmarks.harness import BENCH_BLOCK, BENCH_KWARGS, attach_tracer, emit_report, mark

N = 4000
UPDATES = 3000


def _write_amplification(name: str, zipfian: bool) -> float:
    method = create_method(
        name, device=attach_tracer(SimulatedDevice(block_bytes=BENCH_BLOCK)), **BENCH_KWARGS.get(name, {})
    )
    method.bulk_load([(2 * i, i) for i in range(N)])
    method.flush()
    rng = random.Random(73)
    distribution = ZipfianKeys(rng, theta=0.99) if zipfian else UniformKeys(rng)
    before = method.device.snapshot()
    for i in range(UPDATES):
        key = 2 * distribution.pick_index(N)
        method.update(key, i)
    method.flush()
    io = method.device.stats_since(before)
    return io.write_bytes / (UPDATES * RECORD_BYTES)


def _measure() -> dict:
    results = {}
    for name in ("lsm", "masm", "btree", "hash-index"):
        for zipfian in (False, True):
            results[(name, zipfian)] = _write_amplification(name, zipfian)
    return results


@pytest.fixture(scope="module")
def sweep():
    return _measure()


@pytest.mark.benchmark(group="skew-updates")
def test_update_skew_report(benchmark, sweep):
    mark(benchmark)
    rows = []
    for name in ("lsm", "masm", "btree", "hash-index"):
        uniform = sweep[(name, False)]
        zipf = sweep[(name, True)]
        rows.append([name, uniform, zipf, uniform / max(zipf, 1e-9)])
    report = format_table(
        ["method", "UO uniform", "UO zipfian", "coalescing gain"],
        rows,
        title="E17: zipfian updates coalesce in differential buffers",
    )
    emit_report("skew_updates", report)


class TestCoalescing:
    @pytest.mark.parametrize("name", ["lsm", "masm"])
    def test_differential_structures_coalesce_hot_updates(self, benchmark, sweep, name):
        mark(benchmark)
        assert sweep[(name, True)] < sweep[(name, False)] * 0.75, name

    @pytest.mark.parametrize("name", ["btree", "hash-index"])
    def test_in_place_structures_gain_little(self, benchmark, sweep, name):
        mark(benchmark)
        uniform = sweep[(name, False)]
        zipf = sweep[(name, True)]
        assert 0.6 <= zipf / uniform <= 1.4, (name, uniform, zipf)
