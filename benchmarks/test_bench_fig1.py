"""E5: Figure 1 — popular data structures placed in the RUM space.

Every structure is measured under one common mixed workload (point
reads + writes — the regime the paper's figure classifies in); its
(RO, UO, MO) profile is projected onto the RUM triangle with
field-relative normalization and rendered as ASCII art mirroring the
paper's Figure 1.  The assertions check the grouping the paper draws:

* read-optimized: B+-Tree, trie, skiplist, hash index — beat the
  differential structures on reads and pay with space or update cost;
* write-optimized: LSM, PBT, MaSM, PDT — beat the read group on writes;
* space-optimized: zonemap, sparse index, approximate index — smallest
  footprints;
* adaptive structures (cracking, adaptive merging) between corners.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.analysis.triangle import render_triangle
from repro.core.space import CORNER_READ, CORNER_SPACE, CORNER_WRITE, project_field
from repro.workloads.spec import WorkloadSpec

from benchmarks.harness import emit_report, mark, measure_profiles

#: One common workload for every structure.  Reads are point queries —
#: the regime under which the paper groups hash/trie/skiplist with the
#: B-Tree as "read-optimized" (range behaviour is Table 1's subject).
SPEC = WorkloadSpec(
    point_queries=0.4,
    inserts=0.3,
    updates=0.2,
    deletes=0.1,
    operations=2000,
    initial_records=4000,
)

READ_GROUP = ["btree", "trie", "skiplist", "hash-index", "cache-oblivious",
              "fractured-mirrors"]
WRITE_GROUP = ["lsm", "pbt", "masm", "pdt", "indexed-log", "silt"]
SPACE_GROUP = ["zonemap", "sparse-index", "approximate-index"]
ADAPTIVE_GROUP = ["cracking", "adaptive-merging", "morphing"]
COLUMNS = ["sorted-column", "unsorted-column"]

FIGURE_METHODS = READ_GROUP + WRITE_GROUP + SPACE_GROUP + ADAPTIVE_GROUP + COLUMNS


def _measure_profiles() -> dict:
    # Routed through the sweep engine: REPRO_JOBS parallelizes the grid,
    # REPRO_BENCH_CACHE reuses unchanged cells across runs.
    return measure_profiles(SPEC, [(name, name, {}) for name in FIGURE_METHODS])


@pytest.fixture(scope="module")
def profiles():
    return _measure_profiles()


@pytest.mark.benchmark(group="fig1")
def test_fig1_report(benchmark, profiles):
    mark(benchmark)
    points = project_field(profiles)
    art = render_triangle([points[name] for name in sorted(points)])
    rows = [
        [
            name,
            profile.read_overhead,
            profile.update_overhead,
            profile.memory_overhead,
        ]
        for name, profile in sorted(profiles.items())
    ]
    table = format_table(
        ["method", "RO", "UO", "MO"],
        rows,
        title="Figure 1 (measured): RUM profiles under the common workload",
    )
    emit_report("fig1", table + "\n\n" + art)


class TestCornerPlacements:
    """Relative placement must reproduce the paper's grouping."""

    @pytest.mark.parametrize("name", READ_GROUP)
    def test_read_group_beats_the_heap(self, benchmark, profiles, name):
        mark(benchmark)
        # Every read-optimized structure reads far cheaper than the
        # unindexed heap under the common workload.
        assert profiles[name].read_overhead < profiles["unsorted-column"].read_overhead / 3

    @pytest.mark.parametrize("name", ["btree", "trie", "hash-index"])
    def test_tree_like_readers_beat_partitioned_writers(
        self, benchmark, profiles, name
    ):
        mark(benchmark)
        # Single-copy read structures beat the multi-partition PBT on
        # reads.  (The skiplist is excluded: at block granularity its
        # pointer chasing is read-expensive — in real systems it is a
        # memory-resident structure.)
        assert profiles[name].read_overhead < profiles["pbt"].read_overhead

    @pytest.mark.parametrize("name", WRITE_GROUP)
    def test_write_group_writes_beat_read_structures(self, benchmark, profiles, name):
        mark(benchmark)
        assert profiles[name].update_overhead < profiles["btree"].update_overhead, name
        assert profiles[name].update_overhead < profiles["trie"].update_overhead, name

    @pytest.mark.parametrize("name", SPACE_GROUP)
    def test_space_group_is_leanest(self, benchmark, profiles, name):
        mark(benchmark)
        assert profiles[name].memory_overhead < profiles["hash-index"].memory_overhead
        assert profiles[name].memory_overhead < profiles["trie"].memory_overhead
        assert profiles[name].memory_overhead < profiles["skiplist"].memory_overhead

    def test_btree_vs_lsm_tradeoff(self, benchmark, profiles):
        mark(benchmark)
        # The classic R-U trade: B-Tree reads cheaper, LSM writes cheaper.
        assert profiles["btree"].read_overhead < profiles["lsm"].read_overhead
        assert profiles["lsm"].update_overhead < profiles["btree"].update_overhead

    def test_read_structures_pay_space(self, benchmark, profiles):
        mark(benchmark)
        # Hash (sized directory + slack), trie and skiplist (pointer
        # arenas) are space-heavier than the plain columns.
        for name in ("hash-index", "trie", "skiplist"):
            assert (
                profiles[name].memory_overhead
                > profiles["sorted-column"].memory_overhead
            ), name

    def test_no_method_dominates_the_field(self, benchmark, profiles):
        mark(benchmark)
        for name, profile in profiles.items():
            dominates_all = all(
                other == name or profile.dominates(profiles[other])
                for other in profiles
            )
            assert not dominates_all, name

    def test_relative_placement_corners(self, benchmark, profiles):
        mark(benchmark)
        points = project_field(profiles)
        # In the relative picture the exemplar of each family leans
        # toward its corner more than the opposite family's exemplar.
        assert points["hash-index"].weights[0] > points["lsm"].weights[0]
        assert points["lsm"].weights[1] > points["btree"].weights[1]
        assert points["zonemap"].weights[2] > points["trie"].weights[2]

    def test_adaptive_methods_sit_between_extremes(self, benchmark, profiles):
        mark(benchmark)
        points = project_field(profiles)
        for name in ADAPTIVE_GROUP:
            assert max(points[name].weights) < 0.95, (name, points[name].weights)
