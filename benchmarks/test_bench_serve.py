"""Serving-tier benchmark: N concurrent zipfian clients over one method.

The RUM triangle is usually measured with a single-threaded workload
stream; the serving tier adds the machinery a real system carries —
snapshot reads, OCC validation, WAL durability — and this bench shows
what that machinery costs in the same RUM vocabulary.  Logging rides on
the same simulated device as the structure, so the WAL's writes inflate
UO and its live blocks inflate MO honestly.

Checks pinned here:

* the bench is bit-deterministic under a fixed seed (scheduler and
  client scripts are all seeded);
* it sustains >= 8 concurrent clients with a clean oracle + audit;
* durability has a visible price: the served run's update overhead
  strictly exceeds the same write stream applied without the server;
* commit latency is contention-sensitive (p99 >= p50, conflicts > 0 at
  8 zipfian clients).
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core.registry import create_method
from repro.serve import run_bench
from repro.storage.device import SimulatedDevice

from benchmarks.harness import BENCH_BLOCK, attach_tracer, emit_report, mark

CLIENTS = 8
TXNS = 30
RECORDS = 512
SEED = 1234


def _run(seed=SEED, clients=CLIENTS):
    device = attach_tracer(SimulatedDevice(block_bytes=BENCH_BLOCK))
    method = create_method("btree", device=device)
    return run_bench(
        method,
        clients=clients,
        txns_per_client=TXNS,
        ops_per_txn=4,
        records=RECORDS,
        seed=seed,
    )


@pytest.fixture(scope="module")
def report():
    return _run()


@pytest.mark.benchmark(group="serve")
def test_serve_report(benchmark, report):
    mark(benchmark)
    rows = [
        [
            stats.client_id,
            stats.committed,
            stats.conflicts,
            stats.abandoned,
            f"{stats.p50:.1f}",
            f"{stats.p99:.1f}",
        ]
        for stats in report.clients
    ]
    rows.append([
        "all",
        report.total_commits,
        report.total_conflicts,
        sum(s.abandoned for s in report.clients),
        f"{report.overall_p50:.1f}",
        f"{report.overall_p99:.1f}",
    ])
    table = format_table(
        ["client", "commits", "conflicts", "abandoned", "p50", "p99"],
        rows,
        title=(
            f"serving tier: {CLIENTS} zipfian clients x {TXNS} txns on "
            f"btree (seed {SEED})"
        ),
    )
    profile = report.profile
    footer = (
        f"RO={profile.read_overhead:.2f} UO={profile.update_overhead:.2f} "
        f"MO={profile.memory_overhead:.2f} wal_syncs={report.wal_syncs} "
        f"checkpoints={report.checkpoints}"
    )
    emit_report("serve", f"{table}\n{footer}")


class TestServeBench:
    def test_clean_at_eight_concurrent_clients(self, benchmark, report):
        mark(benchmark)
        assert len(report.clients) >= 8
        assert report.clean, (
            f"divergences={report.oracle_divergences}, "
            f"violations={report.audit_violations}"
        )
        assert report.total_commits > 0

    def test_deterministic_under_fixed_seed(self, benchmark, report):
        mark(benchmark)
        again = _run()
        assert [s.latencies for s in again.clients] == [
            s.latencies for s in report.clients
        ]
        assert again.total_conflicts == report.total_conflicts
        assert again.simulated_time == report.simulated_time
        assert (
            again.profile.update_overhead == report.profile.update_overhead
        )

    def test_seed_actually_steers_the_run(self, benchmark, report):
        mark(benchmark)
        other = _run(seed=SEED + 1)
        assert [s.latencies for s in other.clients] != [
            s.latencies for s in report.clients
        ]

    def test_zipfian_contention_shows_up(self, benchmark, report):
        mark(benchmark)
        # Skewed keys + 8 writers: validation must be doing real work.
        assert report.total_conflicts > 0
        assert report.overall_p99 >= report.overall_p50 > 0

    def test_durability_inflates_update_overhead(self, benchmark, report):
        mark(benchmark)
        # The same committed write stream applied straight to a method
        # (no WAL, no versioning) prices each update cheaper than the
        # served run, which pays a log sync per commit.
        from repro.core.rum import RUMAccumulator

        device = SimulatedDevice(block_bytes=BENCH_BLOCK)
        method = create_method("btree", device=device)
        method.bulk_load([(key, key * 1_000 + 1) for key in range(RECORDS)])
        accumulator = RUMAccumulator()
        accumulator.sample_space(method)
        writes = 0
        before = device.snapshot()
        for key in range(0, RECORDS, 2):
            if method.get(key) is None:
                method.insert(key, key)
            else:
                method.update(key, key)
            writes += 1
        accumulator.record_update(device.stats_since(before), records_updated=writes)
        accumulator.sample_space(method)
        bare = accumulator.finish(method)
        assert report.profile.update_overhead > bare.update_overhead
