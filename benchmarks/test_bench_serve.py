"""Serving-tier benchmark: N concurrent zipfian clients over one method.

The RUM triangle is usually measured with a single-threaded workload
stream; the serving tier adds the machinery a real system carries —
snapshot reads, OCC validation, WAL durability — and this bench shows
what that machinery costs in the same RUM vocabulary.  Logging rides on
the same simulated device as the structure, so the WAL's writes inflate
UO and its live blocks inflate MO honestly.

Checks pinned here:

* the bench is bit-deterministic under a fixed seed (scheduler and
  client scripts are all seeded);
* it sustains >= 8 concurrent clients with a clean oracle + audit;
* durability has a visible price: the served run's update overhead
  strictly exceeds the same write stream applied without the server;
* commit latency is contention-sensitive (p99 >= p50, conflicts > 0 at
  8 zipfian clients);
* group commit amortizes durability: ``SyncPolicy.every_n(8)`` writes
  at most half the WAL blocks of per-commit sync on the same workload,
  and a deadline policy's parked commits absorb the wait in p99;
* the whole serving stack (method + WAL) runs behind the chained
  write-back hierarchy with a clean conservation audit.
"""

from __future__ import annotations

import pytest

from repro.analysis.tables import format_table
from repro.core.registry import create_method
from repro.serve import SyncPolicy, run_bench
from repro.storage.device import SimulatedDevice
from repro.storage.hierarchy import (
    HierarchicalDevice,
    LevelSpec,
    MemoryHierarchy,
)

from benchmarks.harness import BENCH_BLOCK, attach_tracer, emit_report, mark

CLIENTS = 8
TXNS = 30
RECORDS = 512
SEED = 1234

#: Simulated-time budget for the deadline-policy run; chosen large
#: enough that parked commits visibly wait (it dominates p99).
DEADLINE = 50.0


def _serve_device(hierarchy=False):
    backing = SimulatedDevice(block_bytes=BENCH_BLOCK)
    if not hierarchy:
        return attach_tracer(backing)
    specs = [
        LevelSpec("L0", capacity_blocks=16, access_cost=0.0001),
        LevelSpec("L1", capacity_blocks=128, access_cost=0.01),
    ]
    return attach_tracer(HierarchicalDevice(MemoryHierarchy(backing, specs)))


def _run(seed=SEED, clients=CLIENTS, sync_policy=None, hierarchy=False):
    method = create_method("btree", device=_serve_device(hierarchy))
    return run_bench(
        method,
        clients=clients,
        txns_per_client=TXNS,
        ops_per_txn=4,
        records=RECORDS,
        seed=seed,
        sync_policy=sync_policy,
    )


@pytest.fixture(scope="module")
def report():
    return _run()


@pytest.fixture(scope="module")
def grouped_report():
    return _run(sync_policy=SyncPolicy.every_n(8))


@pytest.mark.benchmark(group="serve")
def test_serve_report(benchmark, report):
    mark(benchmark)
    rows = [
        [
            stats.client_id,
            stats.committed,
            stats.conflicts,
            stats.abandoned,
            f"{stats.p50:.1f}",
            f"{stats.p99:.1f}",
        ]
        for stats in report.clients
    ]
    rows.append([
        "all",
        report.total_commits,
        report.total_conflicts,
        sum(s.abandoned for s in report.clients),
        f"{report.overall_p50:.1f}",
        f"{report.overall_p99:.1f}",
    ])
    table = format_table(
        ["client", "commits", "conflicts", "abandoned", "p50", "p99"],
        rows,
        title=(
            f"serving tier: {CLIENTS} zipfian clients x {TXNS} txns on "
            f"btree (seed {SEED})"
        ),
    )
    profile = report.profile
    footer = (
        f"RO={profile.read_overhead:.2f} UO={profile.update_overhead:.2f} "
        f"MO={profile.memory_overhead:.2f} wal_syncs={report.wal_syncs} "
        f"checkpoints={report.checkpoints}"
    )
    emit_report("serve", f"{table}\n{footer}")


@pytest.mark.benchmark(group="serve")
def test_group_commit_report(benchmark, report, grouped_report):
    """UO vs p99 across group sizes — the EXPERIMENTS.md table."""
    mark(benchmark)
    rows = []
    for size in (1, 2, 4, 8):
        if size == 1:
            run = report
        elif size == 8:
            run = grouped_report
        else:
            run = _run(sync_policy=SyncPolicy.every_n(size))
        rows.append([
            run.sync_policy,
            run.total_commits,
            run.wal_blocks_written,
            run.group_syncs,
            f"{run.profile.update_overhead:.2f}",
            f"{run.overall_p50:.1f}",
            f"{run.overall_p99:.1f}",
        ])
    table = format_table(
        ["policy", "commits", "wal blocks", "syncs", "UO", "p50", "p99"],
        rows,
        title=(
            f"group commit: {CLIENTS} zipfian clients x {TXNS} txns on "
            f"btree (seed {SEED})"
        ),
    )
    emit_report("serve-group-commit", table)


class TestServeBench:
    def test_clean_at_eight_concurrent_clients(self, benchmark, report):
        mark(benchmark)
        assert len(report.clients) >= 8
        assert report.clean, (
            f"divergences={report.oracle_divergences}, "
            f"violations={report.audit_violations}"
        )
        assert report.total_commits > 0

    def test_deterministic_under_fixed_seed(self, benchmark, report):
        mark(benchmark)
        again = _run()
        assert [s.latencies for s in again.clients] == [
            s.latencies for s in report.clients
        ]
        assert again.total_conflicts == report.total_conflicts
        assert again.simulated_time == report.simulated_time
        assert (
            again.profile.update_overhead == report.profile.update_overhead
        )

    def test_seed_actually_steers_the_run(self, benchmark, report):
        mark(benchmark)
        other = _run(seed=SEED + 1)
        assert [s.latencies for s in other.clients] != [
            s.latencies for s in report.clients
        ]

    def test_zipfian_contention_shows_up(self, benchmark, report):
        mark(benchmark)
        # Skewed keys + 8 writers: validation must be doing real work.
        assert report.total_conflicts > 0
        assert report.overall_p99 >= report.overall_p50 > 0

    def test_durability_inflates_update_overhead(self, benchmark, report):
        mark(benchmark)
        # The same committed write stream applied straight to a method
        # (no WAL, no versioning) prices each update cheaper than the
        # served run, which pays a log sync per commit.
        from repro.core.rum import RUMAccumulator

        device = SimulatedDevice(block_bytes=BENCH_BLOCK)
        method = create_method("btree", device=device)
        method.bulk_load([(key, key * 1_000 + 1) for key in range(RECORDS)])
        accumulator = RUMAccumulator()
        accumulator.sample_space(method)
        writes = 0
        before = device.snapshot()
        for key in range(0, RECORDS, 2):
            if method.get(key) is None:
                method.insert(key, key)
            else:
                method.update(key, key)
            writes += 1
        accumulator.record_update(device.stats_since(before), records_updated=writes)
        accumulator.sample_space(method)
        bare = accumulator.finish(method)
        assert report.profile.update_overhead > bare.update_overhead


class TestGroupCommitBench:
    def test_grouping_halves_wal_block_writes(self, benchmark, report, grouped_report):
        mark(benchmark)
        # The headline number: batching ~8 commits per modeled fsync
        # must cut the WAL's share of the write stream at least 2x on
        # the identical workload (acceptance criterion).
        assert grouped_report.clean
        assert grouped_report.sync_policy == "group=8"
        assert report.sync_policy == "every-commit"
        assert report.wal_blocks_written >= 2 * grouped_report.wal_blocks_written
        assert grouped_report.group_syncs < report.group_syncs

    def test_grouping_lowers_update_overhead(self, benchmark, report, grouped_report):
        mark(benchmark)
        # Fewer durability writes over the same committed record stream
        # is exactly a UO drop in RUM terms.
        assert (
            grouped_report.profile.update_overhead
            < report.profile.update_overhead
        )

    def test_grouped_run_is_deterministic(self, benchmark, grouped_report):
        mark(benchmark)
        again = _run(sync_policy=SyncPolicy.every_n(8))
        assert [s.latencies for s in again.clients] == [
            s.latencies for s in grouped_report.clients
        ]
        assert again.wal_blocks_written == grouped_report.wal_blocks_written
        assert again.group_syncs == grouped_report.group_syncs

    def test_deadline_policy_absorbs_the_wait_in_p99(self, benchmark, report):
        mark(benchmark)
        # A large group size with a deadline: commits park until the
        # oldest has waited DEADLINE simulated-time units, so commit
        # latency carries the wait that bought the batching — the tail
        # covers the full deadline and the median sits above the
        # per-commit run's, while the WAL writes fewer blocks.
        run = _run(
            sync_policy=SyncPolicy.after_deadline(DEADLINE, group_size=64)
        )
        assert run.clean
        assert run.overall_p99 >= DEADLINE
        assert run.overall_p50 > report.overall_p50
        assert run.wal_blocks_written < report.wal_blocks_written

    def test_hierarchy_mounted_serve_stays_clean(self, benchmark):
        mark(benchmark)
        # Method + WAL behind the chained write-back hierarchy: the
        # report's audit includes the hierarchy's conservation check,
        # so `clean` certifies WAL traffic obeyed the same bookkeeping.
        run = _run(sync_policy=SyncPolicy.every_n(4), hierarchy=True)
        assert run.clean, (
            f"divergences={run.oracle_divergences}, "
            f"violations={run.audit_violations}"
        )
        assert run.total_commits > 0
        assert run.wal_blocks_written > 0
