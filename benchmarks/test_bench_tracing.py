"""Tracing overhead: disabled tracing is zero-cost, enabled is faithful.

The observability layer's contract (ISSUE 1) is that the trace hooks in
:class:`~repro.storage.device.SimulatedDevice`,
:class:`~repro.storage.pager.BufferPool` and
:class:`~repro.storage.cached.CachedDevice` may not perturb the numbers
the paper reproduction rests on:

* with tracing disabled the hot path performs *no tracer work at all* —
  proven with a tracer whose ``emit`` raises but whose ``enabled`` flag
  is off: a single emission-site call would fail the run;
* enabling tracing changes no measured quantity — the RUM profile of a
  traced run equals the untraced run bit for bit;
* the wall-clock cost of the disabled guard is below measurement noise —
  the disabled read loop must not be slower than the enabled one.
"""

from __future__ import annotations

import os
import sys
import time

import pytest

from repro.analysis.tables import format_table
from repro.obs.sinks import ListSink
from repro.obs.tracer import NULL_TRACER, RecordingTracer, Tracer
from repro.storage.cached import CachedDevice
from repro.storage.device import SimulatedDevice
from repro.workloads.spec import WorkloadSpec

from benchmarks.harness import BENCH_BLOCK, build_method, emit_report, mark
from repro.workloads.runner import run_workload

SPEC = WorkloadSpec(
    point_queries=0.4,
    range_queries=0.1,
    inserts=0.3,
    updates=0.15,
    deletes=0.05,
    operations=400,
    initial_records=1200,
)

READS = 100_000


class _ExplodingTracer(Tracer):
    """Disabled tracer that fails the test if any site calls emit."""

    enabled = False

    def emit(self, *args, **kwargs) -> None:
        raise AssertionError("emit() called with tracing disabled")


def _timed_reads(device: SimulatedDevice, block, n: int) -> float:
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(n):
            device.read(block)
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_tracing_never_touches_the_tracer(benchmark):
    device = SimulatedDevice(block_bytes=BENCH_BLOCK)
    device.set_tracer(_ExplodingTracer())
    cached = CachedDevice(SimulatedDevice(block_bytes=BENCH_BLOCK), capacity_blocks=2)
    cached.set_tracer(_ExplodingTracer())
    for target in (device, cached):
        blocks = [target.allocate() for _ in range(4)]
        for i, block in enumerate(blocks):
            target.write(block, i, used_bytes=8)
        for block in blocks:
            target.read(block)
        target.free(blocks[0])
    cached.flush()
    mark(benchmark)


def test_tracing_does_not_perturb_measurements(benchmark):
    baseline = run_workload(build_method("btree"), SPEC).profile
    traced_method = build_method("btree")
    traced_method.device.set_tracer(RecordingTracer(ListSink()))
    traced = run_workload(traced_method, SPEC).profile
    assert traced == baseline
    mark(benchmark)


def test_disabled_guard_costs_nothing(benchmark):
    disabled = SimulatedDevice(block_bytes=BENCH_BLOCK)
    block = disabled.allocate()
    disabled.write(block, "x", used_bytes=8)

    enabled = SimulatedDevice(block_bytes=BENCH_BLOCK)
    enabled.set_tracer(RecordingTracer(ListSink()))
    traced_block = enabled.allocate()
    enabled.write(traced_block, "x", used_bytes=8)

    disabled_s = _timed_reads(disabled, block, READS)
    enabled_s = _timed_reads(enabled, traced_block, READS)

    emit_report(
        "tracing_overhead",
        format_table(
            ["tracer", f"seconds / {READS} reads", "ns / read"],
            [
                ["null (default)", disabled_s, disabled_s / READS * 1e9],
                ["recording", enabled_s, enabled_s / READS * 1e9],
            ],
            title="hot-path read cost with tracing off vs on",
        ),
    )
    # The disabled guard is one attribute check; it cannot cost more
    # than event construction + sink append.  Generous margin for noise.
    assert disabled_s <= enabled_s * 1.5, (
        f"disabled tracing ({disabled_s:.4f}s) slower than enabled "
        f"({enabled_s:.4f}s) — the null-tracer hot path has gained work"
    )
    mark(benchmark)


#: Methods the span-profile regression gate watches.
GATE_METHODS = ("btree", "lsm")
#: Workload parameters pinned so baseline and candidate are comparable.
GATE_ARGS = ["--workload", "balanced", "--records", "2000", "--ops", "800"]


def test_span_profile_regression_gate(benchmark):
    """Run ``tools/bench_gate.py`` against committed span baselines.

    Opt-in: set ``REPRO_BENCH_GATE`` to a baseline directory.  A missing
    baseline is (re)seeded from the current build and the gate passes —
    commit the directory to arm it; subsequent runs fail on any span
    byte-attribution drift or a large throughput drop.
    """
    baseline_dir = os.environ.get("REPRO_BENCH_GATE")
    if not baseline_dir:
        pytest.skip("set REPRO_BENCH_GATE=<baseline dir> to run the gate")
    os.makedirs(baseline_dir, exist_ok=True)

    from repro.cli import main as repro_main

    tools_path = os.path.join(os.path.dirname(__file__), "..", "tools")
    sys.path.insert(0, tools_path)
    try:
        import bench_gate
    finally:
        sys.path.remove(tools_path)

    failures = []
    for method in GATE_METHODS:
        baseline_path = os.path.join(baseline_dir, f"{method}.json")
        candidate_path = os.path.join(baseline_dir, f"{method}.candidate.json")
        explain = ["explain", method, "--json"] + GATE_ARGS
        if not os.path.exists(baseline_path):
            assert repro_main(explain + ["--output", baseline_path]) == 0
            continue  # freshly seeded: nothing to compare yet
        assert repro_main(explain + ["--output", candidate_path]) == 0
        code = bench_gate.main([baseline_path, candidate_path, "--quiet"])
        if code != 0:
            failures.append(method)
    assert failures == [], (
        f"span-profile regression vs {baseline_dir}: {', '.join(failures)}"
    )
    mark(benchmark)


def test_trace_stream_includes_pool_events(benchmark):
    sink = ListSink()
    backing = SimulatedDevice(block_bytes=BENCH_BLOCK, name="flash")
    cached = CachedDevice(backing, capacity_blocks=2)
    cached.set_tracer(RecordingTracer(sink))
    blocks = [cached.allocate() for _ in range(4)]
    for i, block in enumerate(blocks):
        cached.write(block, i, used_bytes=8)  # overflows the 2-frame pool
    cached.flush()
    ops = {event.op for event in sink.events}
    assert {"alloc", "write", "evict", "write_back"} <= ops
    sources = {event.source for event in sink.events}
    assert {"cached(flash)", "pool(flash)", "flash"} <= sources
    seqs = [event.seq for event in sink.events]
    assert seqs == sorted(seqs) == list(range(len(seqs)))
    mark(benchmark)
